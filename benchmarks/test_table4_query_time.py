"""Regenerates Table 4 of the paper: query time (ms), CTS vs ANNS.

Paper reference: CTS is faster than ANNS at every (dataset size, query
length) cell — e.g. 75 vs 100 ms for long queries on the full dataset.
Absolute milliseconds differ on our substrate; the CTS < ANNS ordering
is the reproduced claim.
"""

from repro.data.corpus import DatasetScale
from repro.data.queries import QueryCategory
from repro.eval.timing import time_queries

SCALES = (DatasetScale.LARGE, DatasetScale.MODERATE, DatasetScale.SMALL)
CATEGORIES = (
    (QueryCategory.LONG, "Long"),
    (QueryCategory.MODERATE, "Moderate"),
    (QueryCategory.SHORT, "Short"),
)
SCALE_LABELS = {"LD": "100%", "MD": "50%", "SD": "10%"}


def test_table4_cts_vs_anns_query_time(benchmark, bench_corpus, searchers_by_scale):
    def measure():
        rows = []
        for scale in SCALES:
            for category, label in CATEGORIES:
                queries = bench_corpus.query_texts(category)[:5]
                cts_ms = time_queries(
                    searchers_by_scale[scale]["cts"], queries, k=20, warmup=1
                ).mean_ms
                anns_ms = time_queries(
                    searchers_by_scale[scale]["anns"], queries, k=20, warmup=1
                ).mean_ms
                rows.append((SCALE_LABELS[scale.value], label, cts_ms, anns_ms))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    title = "Table 4: Query Time (milliseconds) for CTS vs. ANNS"
    lines = [title, "=" * len(title), f"{'Dataset':8} {'Query':9} {'CTS':>8} {'ANNS':>8}"]
    last = None
    faster = 0
    for scale, label, cts_ms, anns_ms in rows:
        shown = scale if scale != last else ""
        last = scale
        lines.append(f"{shown:8} {label:9} {cts_ms:8.2f} {anns_ms:8.2f}")
        faster += cts_ms < anns_ms
    print("\n" + "\n".join(lines))

    # the paper's claim: CTS consistently faster; require a clear majority
    # of cells (timing noise allows an occasional flip)
    assert faster >= 6, f"CTS faster in only {faster}/9 cells"
