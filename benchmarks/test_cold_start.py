"""Micro-benchmark: time-to-first-query from a persisted index.

Not a paper artifact — this measures what the segment storage layer
buys on warm restarts: the time from "process starts with a snapshot
on disk" to "first query answered".  Three variants over the same 600
relations:

* **npz-eager** — the legacy single-file compressed archive: inflate
  every byte, rebuild the store, stack the scan matrix.
* **segment-eager** — the segment snapshot read eagerly: raw bytes,
  digest-verified, but still fully materialized.
* **segment-mmap** — ``load_index(..., mmap=True)``: map the vector
  segment read-only and let the first scan fault pages in lazily; the
  scan matrix is *adopted* zero-copy, never re-stacked.

The guard asserts the mmap path's time-to-first-query is >= 5x faster
than npz-eager at this size; ``BENCH_cold_start.json`` records the
trajectory.  Run with ``pytest benchmarks/test_cold_start.py -q -s``
for the measured numbers.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.engine import DiscoveryEngine
from repro.core.semimg import save_federation_embeddings_npz
from repro.datamodel.relation import Federation, Relation
from repro.embedding.cache import CachingEncoder
from repro.embedding.semantic import SemanticHashEncoder

from _trajectory import record

N_RELATIONS = 600
DIM = 64

WORDS = [
    "vaccine", "league", "gdp", "galaxy", "sonata", "glacier",
    "enzyme", "harbor", "tariff", "nebula", "tempo", "monsoon",
]


def tiny_relation(slot: int) -> Relation:
    words = [WORDS[(slot + j) % len(WORDS)] for j in range(3)]
    return Relation(
        f"rel{slot}",
        ["Topic", "Measure"],
        [[f"{words[r % 3]} {slot}", str(100 * slot + r)] for r in range(3)],
        caption=f"{words[0]} {words[1]} table {slot}",
    )


@pytest.fixture(scope="module")
def snapshots(tmp_path_factory):
    """One indexed federation persisted both ways, plus its encoder.

    The encoder cache is shared with every reloading engine so the
    timings measure *load* work, not first-touch query hashing."""
    root = tmp_path_factory.mktemp("cold_start")
    encoder = CachingEncoder(SemanticHashEncoder(dim=DIM))
    fed = Federation.from_relations([tiny_relation(s) for s in range(N_RELATIONS)])
    engine = DiscoveryEngine(encoder=encoder, executor="inline")
    engine.index(fed)
    engine.save_index(root / "segments")
    save_federation_embeddings_npz(engine.embeddings, root / "legacy.npz")
    engine.close()
    return root, encoder


def time_to_first_query(path, encoder, mmap: bool) -> float:
    """Seconds from "snapshot on disk" to "first ExS answer in hand"."""
    start = time.perf_counter()
    engine = DiscoveryEngine(encoder=encoder, executor="inline")
    engine.load_index(path, mmap=mmap)
    engine.search("vaccine league", method="exs", k=10)
    elapsed = time.perf_counter() - start
    engine.close()
    return elapsed


def best_of(fn, repeats: int = 3) -> float:
    return min(fn() for _ in range(repeats))


def test_cold_start_trajectory(snapshots):
    root, encoder = snapshots
    npz_eager = best_of(lambda: time_to_first_query(root / "legacy.npz", encoder, False))
    seg_eager = best_of(lambda: time_to_first_query(root / "segments", encoder, False))
    seg_mmap = best_of(lambda: time_to_first_query(root / "segments", encoder, True))

    print(
        f"\ncold start, {N_RELATIONS} relations x dim {DIM} (time to first query):"
        f"\n  npz-eager      {npz_eager * 1e3:8.2f} ms"
        f"\n  segment-eager  {seg_eager * 1e3:8.2f} ms"
        f"\n  segment-mmap   {seg_mmap * 1e3:8.2f} ms"
        f"\n  mmap speedup over npz: {npz_eager / seg_mmap:.1f}x"
    )
    record(
        "cold_start",
        {
            "n_relations": N_RELATIONS,
            "dim": DIM,
            "npz_eager_ms": round(npz_eager * 1e3, 3),
            "segment_eager_ms": round(seg_eager * 1e3, 3),
            "segment_mmap_ms": round(seg_mmap * 1e3, 3),
            "mmap_speedup_vs_npz": round(npz_eager / seg_mmap, 2),
        },
    )
    # The guard the ISSUE sets: mapping raw committed bytes must beat
    # inflating a compressed archive and re-stacking by a wide margin.
    assert seg_mmap * 5 <= npz_eager, (
        f"segment-mmap ({seg_mmap * 1e3:.1f} ms) is not >= 5x faster than "
        f"npz-eager ({npz_eager * 1e3:.1f} ms)"
    )


def test_mapped_load_is_lazy(snapshots):
    """The mmap load itself (before any query) touches no vector data.

    At this deliberately small size (~1 MB of vectors) the mmap setup
    cost and the eager read are both a few milliseconds, so the guard
    is a loose same-order bound — the data-size-proportional win is
    what :func:`test_cold_start_trajectory` measures against npz."""
    root, encoder = snapshots

    def load_only(mmap: bool) -> float:
        start = time.perf_counter()
        engine = DiscoveryEngine(encoder=encoder, executor="inline")
        engine.load_index(root / "segments", mmap=mmap)
        elapsed = time.perf_counter() - start
        engine.close()
        return elapsed

    eager = best_of(lambda: load_only(False))
    mapped = best_of(lambda: load_only(True))
    print(
        f"\nload only: eager {eager * 1e3:.2f} ms, mapped {mapped * 1e3:.2f} ms"
    )
    record(
        "cold_start",
        {"load_only_eager_ms": round(eager * 1e3, 3), "load_only_mmap_ms": round(mapped * 1e3, 3)},
    )
    assert mapped <= eager * 3 + 0.05, (
        "mapped load should not materialize data: expected the same order "
        f"as eager ({eager * 1e3:.1f} ms), got {mapped * 1e3:.1f} ms"
    )
