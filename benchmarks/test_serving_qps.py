"""Serving bench: sustained QPS and p99 under concurrent traffic.

Two synthetic load shapes drive the async front end over the same
engine and publish the repo's first CI-tracked perf trajectory
(``BENCH_serving.json``, via ``_trajectory.record``):

* **closed loop** — N clients, each submitting its next query only
  after its previous answer arrives: sustained throughput at bounded
  concurrency, the shape capacity planning quotes;
* **open loop** — the whole offered load arrives up front, arrivals
  independent of completions: the overload shape where coordinated
  omission hides nothing.

The open-loop run compares two front ends at *equal offered load* and
equal executor width over the same indexed engine:

* micro-batched (:class:`ServingEngine`): concurrent submits coalesce
  into ``search_batch`` windows — one read-lock acquisition, one
  encode, one fused GEMM per window;
* one-query-at-a-time (:class:`OneAtATimeFrontEnd` below): the
  counterfactual server without a batcher, dispatching every request
  the moment it arrives as one ``engine.search`` call.

The acceptance guard asserts micro-batching sustains >= 2x the
one-at-a-time QPS (skipped below 4 cores, like the sharding bench's
guard: fewer cores starve the baseline's dispatch pool and the
comparison stops being about coalescing).  Typical margins are 10-40x
— the coalesced window amortizes the whole scan, while the baseline
pays a per-relation scoring loop per request — so CI noise cannot
flip the bound.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.engine import DiscoveryEngine
from repro.core.results import SearchResult
from repro.datamodel.relation import Federation, Relation
from repro.embedding.cache import CachingEncoder
from repro.embedding.semantic import SemanticHashEncoder

from _trajectory import record

#: Few-but-large relations: the paper's workload shape (relations carry
#: many cell values), where the scan dominates and coalescing pays.
N_RELATIONS = 60
ROWS_PER_RELATION = 150
DIM = 96
K = 10
N_REQUESTS = 256
DISPATCH_WORKERS = 4

WORDS = [
    "vaccine", "league", "gdp", "galaxy", "sonata", "glacier",
    "enzyme", "harbor", "tariff", "nebula", "tempo", "monsoon",
]

#: 24 distinct query texts cycled by the load generators; repeats are
#: realistic serving traffic and keep the encoder cache honest.
QUERIES = [f"{WORDS[i % len(WORDS)]} {WORDS[(i + 5) % len(WORDS)]}" for i in range(24)]

#: One encoder cache across every engine below, so each variant times
#: serving dispatch + scan work rather than first-touch hashing.
_ENCODER = CachingEncoder(SemanticHashEncoder(dim=DIM), max_size=2_000_000)


def serving_relation(slot: int) -> Relation:
    return Relation(
        f"rel{slot}",
        ["Topic", "Measure"],
        [
            [f"{WORDS[(slot + r) % len(WORDS)]} item {slot} {r}", str(100 * slot + r)]
            for r in range(ROWS_PER_RELATION)
        ],
        caption=f"{WORDS[slot % len(WORDS)]} {WORDS[(slot + 5) % len(WORDS)]} table {slot}",
    )


@pytest.fixture(scope="module")
def serving_fed() -> Federation:
    return Federation.from_relations([serving_relation(s) for s in range(N_RELATIONS)])


def make_engine(federation: Federation) -> DiscoveryEngine:
    """A fresh engine per variant: isolated metrics, shared embeddings."""
    engine = DiscoveryEngine(encoder=_ENCODER)
    engine.index(federation)
    engine.method("exs")
    engine.search_batch(QUERIES, method="exs", k=K)  # warm cache + BLAS pools
    engine.search(QUERIES[0], method="exs", k=K)
    return engine


class OneAtATimeFrontEnd:
    """The no-batching counterfactual: every request dispatches alone.

    Same asyncio intake and executor width as :class:`ServingEngine`,
    no coalescing — each submit runs one ``engine.search`` (which takes
    the reader lock itself), exactly what a server without a
    micro-batcher would do.
    """

    def __init__(self, engine: DiscoveryEngine, dispatch_workers: int) -> None:
        self.engine = engine
        # repro-lint: disable=RL005 -- the raw pool IS the counterfactual: this baseline models a server without the repro.exec backend
        self._executor = ThreadPoolExecutor(
            max_workers=dispatch_workers, thread_name_prefix="one-at-a-time"
        )

    async def submit(self, query: str, method: str = "exs", k: int = K) -> SearchResult:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, lambda: self.engine.search(query, method=method, k=k)
        )

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)


async def timed_submit(front, query: str, latencies: "list[float]") -> None:
    start = time.perf_counter()
    await front.submit(query, method="exs", k=K)
    latencies.append((time.perf_counter() - start) * 1000.0)


async def closed_loop(front, n_clients: int, per_client: int, latencies: "list[float]") -> float:
    """N sequential clients in parallel; returns the makespan (s)."""

    async def client(cid: int) -> None:
        for i in range(per_client):
            await timed_submit(front, QUERIES[(cid + i) % len(QUERIES)], latencies)

    start = time.perf_counter()
    await asyncio.gather(*(client(c) for c in range(n_clients)))
    return time.perf_counter() - start


async def open_loop(front, n_requests: int, latencies: "list[float]") -> float:
    """The whole offered load arrives up front; returns the makespan (s)."""
    start = time.perf_counter()
    tasks = [
        asyncio.create_task(timed_submit(front, QUERIES[i % len(QUERIES)], latencies))
        for i in range(n_requests)
    ]
    await asyncio.gather(*tasks)
    return time.perf_counter() - start


def pctile(latencies: "list[float]", p: float) -> float:
    ordered = sorted(latencies)
    rank = max(1, round(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def test_closed_loop_sustained_qps(serving_fed):
    """16 sequential clients; publishes sustained QPS + p50/p99."""
    engine = make_engine(serving_fed)
    latencies: "list[float]" = []

    async def run() -> float:
        async with engine.serving(window_ms=2.0, max_batch=32, max_queue=4096) as serving:
            return await closed_loop(serving, 16, 16, latencies)

    elapsed = asyncio.run(run())
    snap = engine.metrics.snapshot()
    assert snap["counters"]["serving.completed"] == 16 * 16
    fill_mean = snap["stages"]["serving.batch_fill"]["mean_ms"]
    assert fill_mean > 1.0, "closed-loop windows never coalesced"
    qps = len(latencies) / max(elapsed, 1e-9)
    p50, p99 = pctile(latencies, 50), pctile(latencies, 99)
    record(
        "serving",
        {
            "closed_clients": 16,
            "closed_qps": qps,
            "closed_p50_ms": p50,
            "closed_p99_ms": p99,
            "closed_batch_fill_mean": fill_mean,
        },
    )
    print(
        f"\nserving closed loop: 16 clients x 16 reqs -> {qps:.0f} q/s, "
        f"p50 {p50:.2f} ms, p99 {p99:.2f} ms, mean fill {fill_mean:.1f}"
    )


def test_open_loop_microbatching_speedup(serving_fed):
    """The acceptance guard: >= 2x QPS over one-at-a-time dispatch."""
    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 cores for the one-at-a-time dispatch pool to be fair")

    results = {}

    engine = make_engine(serving_fed)
    batched_lat: "list[float]" = []

    async def run_batched() -> float:
        async with engine.serving(
            window_ms=2.0, max_batch=32, max_queue=4096, dispatch_workers=DISPATCH_WORKERS
        ) as serving:
            return await open_loop(serving, N_REQUESTS, batched_lat)

    elapsed = asyncio.run(run_batched())
    snap = engine.metrics.snapshot()
    fill_mean = snap["stages"]["serving.batch_fill"]["mean_ms"]
    results["batched"] = {
        "qps": N_REQUESTS / max(elapsed, 1e-9),
        "p99_ms": pctile(batched_lat, 99),
        "fill": fill_mean,
        "windows": snap["counters"]["serving.batches"],
    }

    baseline_engine = make_engine(serving_fed)
    front = OneAtATimeFrontEnd(baseline_engine, dispatch_workers=DISPATCH_WORKERS)
    singleton_lat: "list[float]" = []
    try:
        elapsed = asyncio.run(open_loop(front, N_REQUESTS, singleton_lat))
    finally:
        front.shutdown()
    results["singleton"] = {
        "qps": N_REQUESTS / max(elapsed, 1e-9),
        "p99_ms": pctile(singleton_lat, 99),
    }

    speedup = results["batched"]["qps"] / max(results["singleton"]["qps"], 1e-9)
    record(
        "serving",
        {
            "open_offered": N_REQUESTS,
            "open_qps": results["batched"]["qps"],
            "open_p99_ms": results["batched"]["p99_ms"],
            "open_batch_fill_mean": results["batched"]["fill"],
            "open_singleton_qps": results["singleton"]["qps"],
            "open_singleton_p99_ms": results["singleton"]["p99_ms"],
            "open_speedup": speedup,
        },
    )
    print(
        f"\nserving open loop ({N_REQUESTS} offered): "
        f"batched {results['batched']['qps']:.0f} q/s "
        f"(p99 {results['batched']['p99_ms']:.1f} ms, {results['batched']['windows']} windows, "
        f"mean fill {results['batched']['fill']:.1f}), "
        f"one-at-a-time {results['singleton']['qps']:.0f} q/s "
        f"(p99 {results['singleton']['p99_ms']:.1f} ms), speedup {speedup:.1f}x"
    )
    assert results["batched"]["fill"] > 4.0, "open-loop windows never coalesced"
    assert speedup >= 2.0, f"micro-batching only {speedup:.2f}x one-at-a-time dispatch"
