"""Query-cache bench: Zipfian serving traffic against a warm cache.

Discovery traffic is head-heavy — a handful of popular queries (and
near-duplicate paraphrases of them) dominate arrivals.  This bench
drives the async serving front end with a Zipf(s=1.1) workload over the
same engine twice — once uncached, once behind a warm
:class:`~repro.cache.SemanticResultCache` — and publishes the headline
numbers to ``BENCH_query_cache.json`` via ``_trajectory.record``:

* **warm-cache speedup** — sustained QPS at equal offered load, equal
  window shape.  The acceptance guard asserts the warm cache carries
  >= 5x the uncached QPS (skipped below 4 cores, where the uncached
  baseline's dispatch pool starves and the ratio stops measuring the
  cache).  A hit resolves at ``submit`` with one dict probe — no queue
  slot, no window, no GEMM — so typical margins are far larger.
* **hit-rate sweep** — exact/near/miss rates for the same workload at
  ``tau`` in {0.95, 0.98, 1.0}: how much traffic the cosine probe
  recovers that exact text matching alone would recompute, and that
  ``tau=1.0`` (exact-only) forfeits.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
import pytest

from repro.core.engine import DiscoveryEngine
from repro.datamodel.relation import Federation, Relation
from repro.embedding.cache import CachingEncoder
from repro.embedding.semantic import SemanticHashEncoder

from _trajectory import record

N_RELATIONS = 60
ROWS_PER_RELATION = 150
DIM = 96
K = 10
N_REQUESTS = 384
ZIPF_S = 1.1

WORDS = [
    "vaccine", "league", "gdp", "galaxy", "sonata", "glacier",
    "enzyme", "harbor", "tariff", "nebula", "tempo", "monsoon",
]

#: 24 distinct base queries; the Zipf sampler concentrates arrivals on
#: the head, and every 4th arrival is a doubled-text paraphrase whose
#: mean-pooled embedding points the same way — near-duplicate traffic
#: only the cosine probe can recover.
QUERIES = [f"{WORDS[i % len(WORDS)]} {WORDS[(i + 5) % len(WORDS)]}" for i in range(24)]

_ENCODER = CachingEncoder(SemanticHashEncoder(dim=DIM), max_size=2_000_000)


def bench_relation(slot: int) -> Relation:
    return Relation(
        f"rel{slot}",
        ["Topic", "Measure"],
        [
            [f"{WORDS[(slot + r) % len(WORDS)]} item {slot} {r}", str(100 * slot + r)]
            for r in range(ROWS_PER_RELATION)
        ],
        caption=f"{WORDS[slot % len(WORDS)]} {WORDS[(slot + 5) % len(WORDS)]} table {slot}",
    )


@pytest.fixture(scope="module")
def cache_fed() -> Federation:
    return Federation.from_relations([bench_relation(s) for s in range(N_RELATIONS)])


def zipf_workload(n_requests: int, seed: int = 0) -> "list[str]":
    """Zipf(s)-ranked arrivals over QUERIES, 1 in 4 a near-duplicate."""
    ranks = np.arange(1, len(QUERIES) + 1, dtype=np.float64)
    probs = ranks**-ZIPF_S
    probs /= probs.sum()
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(QUERIES), size=n_requests, p=probs)
    return [
        f"{QUERIES[q]} {QUERIES[q]}" if i % 4 == 3 else QUERIES[q]
        for i, q in enumerate(picks)
    ]


def make_engine(federation: Federation, query_cache) -> DiscoveryEngine:
    engine = DiscoveryEngine(encoder=_ENCODER, query_cache=query_cache)
    engine.index(federation)
    engine.method("exs")
    engine.search_batch(QUERIES, method="exs", k=K)  # warm encoder + BLAS pools
    return engine


async def open_loop(serving, workload: "list[str]") -> float:
    start = time.perf_counter()
    await asyncio.gather(
        *(serving.submit(query, method="exs", k=K) for query in workload)
    )
    return time.perf_counter() - start


def serve_workload(engine: DiscoveryEngine, workload: "list[str]") -> float:
    async def run() -> float:
        async with engine.serving(
            window_ms=2.0, max_batch=32, max_queue=4096, dispatch_workers=4
        ) as serving:
            return await open_loop(serving, workload)

    return asyncio.run(run())


def test_warm_cache_zipfian_speedup(cache_fed):
    """The acceptance guard: >= 5x QPS over uncached serving."""
    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 cores for the uncached dispatch pool to be fair")

    workload = zipf_workload(N_REQUESTS)

    uncached = make_engine(cache_fed, query_cache=None)
    elapsed = serve_workload(uncached, workload)
    uncached_qps = N_REQUESTS / max(elapsed, 1e-9)

    cached = make_engine(cache_fed, query_cache=True)
    serve_workload(cached, workload)  # warming pass: fills the cache
    elapsed = serve_workload(cached, workload)
    cached_qps = N_REQUESTS / max(elapsed, 1e-9)

    snap = cached.metrics.snapshot()["counters"]
    hits = snap.get("serving.cache_hits", 0)
    speedup = cached_qps / max(uncached_qps, 1e-9)
    record(
        "query_cache",
        {
            "zipf_s": ZIPF_S,
            "offered": N_REQUESTS,
            "uncached_qps": uncached_qps,
            "warm_qps": cached_qps,
            "warm_speedup": speedup,
            "warm_serving_cache_hits": hits,
        },
    )
    print(
        f"\nquery cache zipf(s={ZIPF_S}) x {N_REQUESTS}: "
        f"uncached {uncached_qps:.0f} q/s, warm {cached_qps:.0f} q/s "
        f"({speedup:.1f}x, {hits} submit-time hits)"
    )
    # The warm pass must actually be serving from the cache, and the
    # measured pass must clear the headline bound.
    assert hits >= N_REQUESTS // 2, "warm pass barely hit the cache"
    assert speedup >= 5.0, f"warm cache only {speedup:.2f}x uncached serving"


def test_hit_rates_across_tau(cache_fed):
    """Exact/near/miss split for the same Zipfian workload as tau moves:
    tau=1.0 is exact-only (the probe is disabled), lower tau recovers
    the near-duplicate quarter of the traffic."""
    workload = zipf_workload(N_REQUESTS)
    sweep = {}
    for tau in (0.95, 0.98, 1.0):
        engine = make_engine(cache_fed, query_cache=f"tau={tau}")
        base = dict(engine.metrics.snapshot()["counters"])  # warm-up traffic
        for query in workload:
            engine.search(query, method="exs", k=K)
        counters = engine.metrics.snapshot()["counters"]
        hits = counters.get("cache.hits", 0) - base.get("cache.hits", 0)
        near = counters.get("cache.near_hits", 0) - base.get("cache.near_hits", 0)
        misses = counters.get("cache.misses", 0) - base.get("cache.misses", 0)
        total = hits + near + misses
        assert total == len(workload)
        sweep[tau] = {
            "hit_rate": hits / total,
            "near_rate": near / total,
            "miss_rate": misses / total,
        }
        print(
            f"\ntau={tau}: exact {hits / total:.1%}, near {near / total:.1%}, "
            f"miss {misses / total:.1%}"
        )

    record(
        "query_cache",
        {
            f"tau_{tau}_{kind}": value
            for tau, rates in sweep.items()
            for kind, value in rates.items()
        },
    )
    # The probe only adds recall: served traffic (exact + near) grows
    # monotonically as tau loosens.  (Exact rates alone shift with tau:
    # a near hit is served, not re-inserted, so at tau < 1 paraphrase
    # repeats stay near hits instead of becoming exact ones.)
    served = {tau: rates["hit_rate"] + rates["near_rate"] for tau, rates in sweep.items()}
    assert served[0.95] >= served[0.98] >= served[1.0]
    # tau=1.0 never near-hits; permissive tau recovers paraphrases.
    assert sweep[1.0]["near_rate"] == 0.0
    assert sweep[0.95]["near_rate"] > 0.0
    assert sweep[0.95]["miss_rate"] <= sweep[0.98]["miss_rate"] <= sweep[1.0]["miss_rate"]
