"""Micro-benchmark: process-backend shard scans vs the thread pool.

Not a paper artifact — this measures PR 7's execution layer.  With
``DiscoveryEngine(executor="process")`` each shard's stacked ExS matrix
lives in a shared-memory segment and is scanned inside a resident
worker process, so the segment reduction and match emission (the
GIL-bound tail of the fused scan) run truly in parallel; the thread
backend runs the identical kernels on one interpreter's pool.

Every run records its headline numbers into ``BENCH_process_shards.json``
(via ``_trajectory.record``), including under ``--benchmark-disable``,
so CI's bench-smoke artifact tracks the thread-vs-process trajectory.
The ``>= 1.5x`` acceptance guard is a separate test that skips on boxes
with fewer than 4 cores, where the process fleet has nothing to
schedule onto.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.engine import DiscoveryEngine
from repro.data.wikitables import generate_wikitables_corpus
from repro.embedding.cache import CachingEncoder
from repro.embedding.semantic import SemanticHashEncoder
from repro.linalg import shared_memory_available

from _trajectory import record

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this platform"
)

N_TABLES = 64
DIM = 256
N_QUERIES = 24
K = 20
SHARD_COUNTS = (4, 8)
ROUNDS = 5

#: One encoder shared by every engine below: each (backend, shards)
#: variant re-indexes the same federation, and the cache makes every
#: re-embed a hit, so the benchmarks time scan work rather than hashing.
_ENCODER = CachingEncoder(SemanticHashEncoder(dim=DIM), max_size=2_000_000)


@pytest.fixture(scope="module")
def proc_corpus():
    return generate_wikitables_corpus(n_tables=N_TABLES)


@pytest.fixture(scope="module")
def proc_engines(proc_corpus):
    federation = proc_corpus.federation()
    engines = {}
    for backend in ("thread", "process"):
        for shards in SHARD_COUNTS:
            engine = DiscoveryEngine(
                encoder=_ENCODER, shards=shards, executor=backend
            )
            engine.index(federation)
            engine.method("exs")
            engines[backend, shards] = engine
    yield engines
    # Process engines own shared-memory segments and worker fleets;
    # close() is what releases them (asserted leak-free in tests/).
    for engine in engines.values():
        engine.close()


@pytest.fixture(scope="module")
def proc_queries(proc_corpus, proc_engines):
    queries = proc_corpus.query_texts()[:N_QUERIES]
    assert len(queries) >= 8, "bench corpus produced too few queries"
    # Warm every variant out-of-band: encoder cache, pool spin-up, and
    # (for the process engines) the publish of each shard's scan state.
    for engine in proc_engines.values():
        engine.search_batch(queries, method="exs", k=K, workers=4)
    return queries


def timed_batch(engine, queries, workers):
    """Mean seconds per batch over ROUNDS, plus the last results."""
    start = time.perf_counter()
    for _ in range(ROUNDS):
        results = engine.search_batch(queries, method="exs", k=K, workers=workers)
    return (time.perf_counter() - start) / ROUNDS, results


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_thread_vs_process_trajectory(proc_engines, proc_queries, shards):
    """Time both backends at this shard count and record the trajectory.

    This test never skips (beyond the module's shared-memory gate) so
    ``BENCH_process_shards.json`` exists on every box; the speedup
    *assertion* lives in the core-count-gated guard below.
    """
    thread_s, base = timed_batch(proc_engines["thread", shards], proc_queries, shards)
    process_s, scattered = timed_batch(
        proc_engines["process", shards], proc_queries, shards
    )
    # Backend equivalence before any timing claim.
    for a, b in zip(base, scattered):
        assert a.relation_ids() == b.relation_ids()

    speedup = thread_s / max(process_s, 1e-9)
    record(
        "process_shards",
        {
            f"thread_{shards}sh_ms": thread_s * 1e3,
            f"process_{shards}sh_ms": process_s * 1e3,
            f"process_{shards}sh_qps": len(proc_queries) / max(process_s, 1e-9),
            f"process_speedup_{shards}sh": speedup,
        },
    )
    print(
        f"\nExS batch scan, {shards} shards x {len(proc_queries)} queries: "
        f"thread {thread_s * 1e3:.1f} ms, process {process_s * 1e3:.1f} ms, "
        f"speedup {speedup:.2f}x"
    )


def test_process_beats_thread_at_four_shards(proc_engines, proc_queries):
    """The acceptance guard: 4 process shards >= 1.5x the thread pool.

    The thread backend's per-shard GEMMs release the GIL, but the
    segment reduction, top-k rank and match emission reacquire it, so
    the scatter phase serialises on its Python tail; resident worker
    processes run that tail 4-wide over the shared-memory matrices.
    Below 4 cores both fleets are oversubscribed and the margin is
    scheduler noise, hence the skip.
    """
    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 cores for the 4-shard fleet to scale")

    thread_s, _ = timed_batch(proc_engines["thread", 4], proc_queries, workers=4)
    process_s, _ = timed_batch(proc_engines["process", 4], proc_queries, workers=4)
    speedup = thread_s / max(process_s, 1e-9)
    record("process_shards", {"guard_speedup_4sh": speedup})
    print(
        f"\nExS guard, 4 shards: thread {thread_s * 1e3:.1f} ms, "
        f"process {process_s * 1e3:.1f} ms, speedup {speedup:.2f}x"
    )
    assert speedup >= 1.5, f"process shards only {speedup:.2f}x over threads"
