"""Regenerates the Sec 5.3 case study: "Climate Change Effects Europe 2020".

Paper reference: ExS's all-attribute averaging dilutes the region/year
focus and surfaces global or differently-dated climate tables; CTS's
cluster routing isolates the tables specifically about Europe in 2020.
"""

from repro.experiments.casestudy import CASE_STUDY_QUERY, run_case_study


def test_casestudy_targeting(benchmark):
    reports = benchmark.pedantic(
        run_case_study,
        kwargs={"dim": 128, "n_per_group": 5, "k": 5},
        rounds=1,
        iterations=1,
    )
    print(f'\nCase study query: "{CASE_STUDY_QUERY}"')
    for method in ("exs", "anns", "cts"):
        print(reports[method].summary())

    cts = reports["cts"]
    # CTS must actually retrieve targets near the top (the paper's
    # qualitative claim, made quantitative):
    assert cts.target_precision_at_k > 0
    # and confine its answer to the climate clusters — unrelated tables
    # must not outrank every target
    first_target = cts.ranking_groups.index("targets")
    first_unrelated = (
        cts.ranking_groups.index("unrelated")
        if "unrelated" in cts.ranking_groups
        else len(cts.ranking_groups)
    )
    assert first_target < first_unrelated
