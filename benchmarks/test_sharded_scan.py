"""Micro-benchmark: sharded scatter-gather ExS vs the single shard.

Not a paper artifact — this measures the scale-out layer: with
``DiscoveryEngine(shards=N)`` each shard scans its slice of the
federation on its own pool thread (``workers=N``), and the gather is an
exact merge, so throughput should scale with cores while rankings stay
identical to the monolithic engine.

Run with ``pytest benchmarks/test_sharded_scan.py --benchmark-only``
for queries/sec per shard count; the plain assertion test guards the
4-shard speedup (and skips on boxes with fewer than 4 cores, where the
pool has nothing to scale onto).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.engine import DiscoveryEngine
from repro.data.wikitables import generate_wikitables_corpus
from repro.embedding.cache import CachingEncoder
from repro.embedding.semantic import SemanticHashEncoder

N_TABLES = 64
DIM = 256
N_QUERIES = 24
K = 20
SHARD_COUNTS = (1, 2, 4, 8)

#: One encoder shared by every engine below: each shard count re-indexes
#: the same federation, and the cache makes every re-embed a hit, so the
#: benchmarks time scan work rather than hashing.
_ENCODER = CachingEncoder(SemanticHashEncoder(dim=DIM), max_size=2_000_000)


@pytest.fixture(scope="module")
def shard_corpus():
    return generate_wikitables_corpus(n_tables=N_TABLES)


@pytest.fixture(scope="module")
def shard_engines(shard_corpus):
    federation = shard_corpus.federation()
    engines = {}
    for shards in SHARD_COUNTS:
        engine = DiscoveryEngine(encoder=_ENCODER, shards=shards)
        engine.index(federation)
        engine.method("exs")
        engines[shards] = engine
    return engines


@pytest.fixture(scope="module")
def shard_queries(shard_corpus, shard_engines):
    queries = shard_corpus.query_texts()[:N_QUERIES]
    assert len(queries) >= 8, "bench corpus produced too few queries"
    # Warm the shared encoder cache so every variant measures scan work.
    shard_engines[1].search_batch(queries, method="exs", k=K)
    return queries


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_exs_throughput(benchmark, shard_engines, shard_queries, shards):
    engine = shard_engines[shards]
    results = benchmark(
        lambda: engine.search_batch(
            shard_queries, method="exs", k=K, workers=max(shards, 1)
        )
    )
    assert len(results) == len(shard_queries)


def test_sharded_scan_beats_single_shard(shard_engines, shard_queries):
    """The acceptance guard: 4 shards on 4 workers >= 2x one shard.

    Each shard's block scan is an independent GEMM on its own pool
    thread (NumPy releases the GIL), so with >= 4 cores the scatter
    phase runs 4-wide and the exact merge adds microseconds.  On
    smaller boxes the pool is oversubscribed and the margin is noise,
    hence the skip.
    """
    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 cores for the 4-shard pool to scale")

    single, sharded = shard_engines[1], shard_engines[4]
    # Warm both paths (thread-pool spin-up, lazy builds) out-of-band.
    single.search_batch(shard_queries, method="exs", k=K)
    sharded.search_batch(shard_queries, method="exs", k=K, workers=4)

    rounds = 5
    start = time.perf_counter()
    for _ in range(rounds):
        base = single.search_batch(shard_queries, method="exs", k=K)
    single_s = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(rounds):
        scattered = sharded.search_batch(shard_queries, method="exs", k=K, workers=4)
    sharded_s = time.perf_counter() - start

    for a, b in zip(base, scattered):
        assert a.relation_ids() == b.relation_ids()

    speedup = single_s / max(sharded_s, 1e-9)
    print(
        f"\nExS scan: 1 shard {single_s * 1e3:.1f} ms, "
        f"4 shards x 4 workers {sharded_s * 1e3:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 2.0, f"4-shard scatter only {speedup:.2f}x faster"


def test_sharded_metrics_after_bench(shard_engines, shard_queries):
    """Per-shard stage timers and the merge stage are populated."""
    engine = shard_engines[4]
    engine.search_batch(shard_queries, method="exs", k=K, workers=4)
    snap = engine.metrics.snapshot()
    shard_scans = [
        name
        for name in snap["stages"]
        if name.startswith("exs.shard") and name.endswith(".scan")
    ]
    assert shard_scans, "sharded engine recorded no per-shard scan timers"
    assert "exs.merge" in snap["stages"]
    sizes = [
        value
        for name, value in snap["gauges"].items()
        if name.startswith("engine.shard_sizes.")
    ]
    assert sum(sizes) == N_TABLES
