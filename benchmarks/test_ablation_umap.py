"""Ablation: UMAP target dimensionality and the PCA pre-reduction in CTS.

DESIGN.md design choices: CTS reduces value vectors with (PCA ->) UMAP
before clustering.  This bench sweeps the UMAP output dimensionality
and toggles the PCA stage, reporting retrieval quality and the cluster
structure each configuration produces.
"""

from repro.core.cts import ClusteredTargetedSearch
from repro.data.corpus import DatasetScale
from repro.data.queries import QueryCategory
from repro.eval.runner import evaluate_method

from conftest import BENCH_K, qrels_cell

CONFIGS = (
    ("umap4", {"umap_components": 4}),
    ("umap16", {"umap_components": 16}),
    ("umap32", {"umap_components": 32}),
    ("no-pca", {"umap_components": 16, "pca_components": 0}),
)


def test_ablation_umap_configuration(benchmark, bench_corpus, bench_splits, searchers_by_scale):
    embeddings = searchers_by_scale[DatasetScale.LARGE]["exs"].embeddings
    qrels = qrels_cell(
        bench_corpus, bench_splits, QueryCategory.SHORT, DatasetScale.LARGE
    )

    def measure():
        rows = []
        for label, params in CONFIGS:
            cts = ClusteredTargetedSearch(**params)
            cts.index(embeddings)
            quality = evaluate_method(cts, qrels, k=BENCH_K).map
            rows.append((label, quality, cts.n_clusters, cts.n_noise_points))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nAblation: CTS reduction configuration (SQ, LD)")
    print(f"{'config':8} {'MAP':>6} {'clusters':>9} {'noise pts':>10}")
    for label, quality, clusters, noise in rows:
        print(f"{label:8} {quality:6.3f} {clusters:9d} {noise:10d}")
    assert all(r[2] >= 1 for r in rows)
