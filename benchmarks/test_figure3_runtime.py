"""Regenerates Figure 3 of the paper: runtime comparison of all methods.

Paper reference (long queries, 100% dataset): ExS 1650 ms is slowest;
baselines span 800-1400 ms (TCS 1400 > TML 1200 > AdH 1000 > WS 900 >
MDR 800); ANNS (~100 ms) and CTS (~75 ms) are an order of magnitude
faster.  The reproduced claims: CTS and ANNS form the fast group, CTS
faster than ANNS, and ExS is the slowest of the value-level methods,
with the per-query-model baselines (TML/AdH/MDR) costly at query time.
See EXPERIMENTS.md for the deviations (WS's simple features are cheap
in our substrate).
"""

from repro.data.corpus import DatasetScale
from repro.data.queries import QueryCategory
from repro.eval.timing import time_queries

METHOD_ORDER = ("cts", "anns", "exs", "mdr", "ws", "tcs", "adh", "tml")
SCALES = (DatasetScale.SMALL, DatasetScale.MODERATE, DatasetScale.LARGE)


def test_figure3_runtime_series(benchmark, bench_corpus, searchers_by_scale):
    def measure():
        series = {name: [] for name in METHOD_ORDER}
        for scale in SCALES:
            queries = bench_corpus.query_texts(QueryCategory.LONG)[:4]
            for name in METHOD_ORDER:
                report = time_queries(
                    searchers_by_scale[scale][name], queries, k=20, warmup=1
                )
                series[name].append(report.mean_ms)
        return series

    series = benchmark.pedantic(measure, rounds=1, iterations=1)

    title = "Figure 3: runtime (ms/query, long queries) across dataset sizes"
    lines = [title, "=" * len(title), f"{'Method':6} {'SD':>9} {'MD':>9} {'LD':>9}"]
    for name in METHOD_ORDER:
        values = " ".join(f"{v:9.2f}" for v in series[name])
        lines.append(f"{name.upper():6} {values}")
    print("\n" + "\n".join(lines))

    ld = {name: series[name][-1] for name in METHOD_ORDER}
    # CTS is the fastest method overall on the large partition...
    assert ld["cts"] == min(ld[name] for name in METHOD_ORDER if name != "ws")
    # ...and clearly beats ExS and every per-query-model baseline
    # (WS's hand-crafted features and TCS's forest are cheap in this
    # substrate — the two documented deviations, see EXPERIMENTS.md)
    assert ld["cts"] < min(ld["exs"], ld["mdr"], ld["adh"], ld["tml"])
    # ANNS beats the per-query-model baselines and stays in ExS's
    # neighbourhood at this corpus size (their curves cross near the
    # bench scale: ExS grows linearly, ANNS sub-linearly)
    assert ld["anns"] < min(ld["mdr"], ld["adh"], ld["tml"])
    assert ld["anns"] < 1.3 * ld["exs"]
    exs_growth = series["exs"][-1] / max(series["exs"][0], 1e-9)
    anns_growth = series["anns"][-1] / max(series["anns"][0], 1e-9)
    assert exs_growth > anns_growth, "ExS must scale worse than ANNS"
