"""Regenerates Table 3 of the paper: quality of SHORT query results.

Paper reference (WikiTables, LD row): CTS MAP 0.810 > ANNS 0.790 >
ExS 0.770 > TML 0.755 > MDR 0.740 > WS 0.725 > TCS 0.710 > AdH 0.650.
TML should improve as the corpus shrinks (SD row) — its context-window
share per table grows.
"""

from repro.data.corpus import DatasetScale
from repro.data.queries import QueryCategory

from _quality import assert_table_sanity, regenerate_quality_table
from conftest import BENCH_K, qrels_cell


def test_table3_short_queries(benchmark, bench_corpus, bench_splits, searchers_by_scale):
    table = benchmark.pedantic(
        regenerate_quality_table,
        args=(
            bench_corpus,
            bench_splits,
            searchers_by_scale,
            QueryCategory.SHORT,
            "Table 3: Quality of short query results",
        ),
        rounds=1,
        iterations=1,
    )
    assert_table_sanity(table)
    print("\n" + table)


def test_tml_improves_on_smaller_corpora(benchmark, bench_corpus, bench_splits, searchers_by_scale):
    """The paper's TML-specific finding: token-limited LLM matching is
    competitive on small corpora and degrades as the corpus grows
    (its per-table context share shrinks)."""

    def measure():
        from repro.eval.runner import evaluate_method

        budgets = {}
        maps = {}
        for scale in (DatasetScale.LARGE, DatasetScale.SMALL):
            tml = searchers_by_scale[scale]["tml"]
            budgets[scale.value] = tml.table_token_budget
            qrels = qrels_cell(bench_corpus, bench_splits, QueryCategory.SHORT, scale)
            maps[scale.value] = evaluate_method(tml, qrels, k=BENCH_K).map
        return budgets, maps

    budgets, maps = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nTML per-table token budget: LD={budgets['LD']} SD={budgets['SD']}")
    print(f"TML short-query MAP:        LD={maps['LD']:.3f} SD={maps['SD']:.3f}")
    # the mechanism: smaller corpus => larger per-table share
    assert budgets["SD"] > budgets["LD"]
