"""Micro-benchmark: sequential vs batched vs multi-worker serving.

Not a paper artifact — this measures the serving layer the reproduction
adds on top of the paper's algorithms: ``search_batch`` amortizes query
encoding and turns ExS's per-query matrix-vector scans into one
matrix-matrix scan per relation, and ``workers=4`` spreads the scan
over a thread pool (NumPy kernels release the GIL).

Run with ``pytest benchmarks/test_batch_throughput.py --benchmark-only``
for queries/sec numbers; the plain assertion test guards the speedup.
"""

from __future__ import annotations

import time

import pytest

from repro.core.engine import DiscoveryEngine
from repro.data.wikitables import generate_wikitables_corpus

N_TABLES = 80
DIM = 128
N_QUERIES = 32
K = 20


@pytest.fixture(scope="module")
def batch_corpus():
    return generate_wikitables_corpus(n_tables=N_TABLES)


@pytest.fixture(scope="module")
def batch_engine(batch_corpus):
    engine = DiscoveryEngine(dim=DIM)
    engine.index(batch_corpus.federation())
    return engine


@pytest.fixture(scope="module")
def batch_queries(batch_corpus, batch_engine):
    queries = batch_corpus.query_texts()[:N_QUERIES]
    assert len(queries) >= 8, "bench corpus produced too few queries"
    # Warm the encoder cache out-of-band so every variant below measures
    # scan work, not first-touch hashing.
    batch_engine.search_batch(queries, method="exs", k=K)
    return queries


def _sequential(engine, queries):
    return [engine.search(q, method="exs", k=K) for q in queries]


def test_throughput_sequential(benchmark, batch_engine, batch_queries):
    results = benchmark(lambda: _sequential(batch_engine, batch_queries))
    assert len(results) == len(batch_queries)


def test_throughput_batched(benchmark, batch_engine, batch_queries):
    results = benchmark(
        lambda: batch_engine.search_batch(batch_queries, method="exs", k=K)
    )
    assert len(results) == len(batch_queries)


def test_throughput_batched_workers4(benchmark, batch_engine, batch_queries):
    results = benchmark(
        lambda: batch_engine.search_batch(batch_queries, method="exs", k=K, workers=4)
    )
    assert len(results) == len(batch_queries)


def test_batched_exs_is_faster_than_sequential(batch_engine, batch_queries):
    """The acceptance guard: the batched ExS path beats one-at-a-time.

    Sequential ExS is Algorithm 1's per-attribute loop; the batched path
    scores the whole query block per relation in one GEMM.  The margin
    demanded here (>= 2x) is far below the typical one (>= 10x) so
    timing noise on loaded CI machines cannot flip it.
    """
    start = time.perf_counter()
    sequential = _sequential(batch_engine, batch_queries)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = batch_engine.search_batch(batch_queries, method="exs", k=K)
    batched_s = time.perf_counter() - start

    for seq, bat in zip(sequential, batched):
        assert seq.relation_ids() == bat.relation_ids()

    speedup = sequential_s / max(batched_s, 1e-9)
    print(
        f"\nExS serving: sequential {sequential_s * 1e3:.1f} ms, "
        f"batched {batched_s * 1e3:.1f} ms, speedup {speedup:.1f}x, "
        f"batched throughput {batched.queries_per_second:.0f} q/s"
    )
    assert speedup >= 2.0, f"batched ExS only {speedup:.2f}x faster"


def test_metrics_snapshot_after_bench(batch_engine, batch_queries):
    """The per-stage table benchmarks share with serving code."""
    batch_engine.search_batch(batch_queries, method="exs", k=K)
    snap = batch_engine.metrics.snapshot()
    assert snap["counters"]["engine.queries"] >= len(batch_queries)
    assert snap["stages"]["exs.scan"]["p95_ms"] >= snap["stages"]["exs.scan"]["p50_ms"]
    print("\n" + batch_engine.metrics.format_table())
