"""Micro-benchmarks of the substrate components.

These use pytest-benchmark's statistical timing (multiple rounds) to
characterize the from-scratch building blocks: encoder throughput,
HNSW search, PQ encoding/ADC, UMAP and HDBSCAN fits, vector-DB search.
"""

import numpy as np
import pytest

from repro.ann import BruteForceIndex, HNSWIndex, ProductQuantizer
from repro.clustering import HDBSCAN
from repro.dimred import UMAP
from repro.embedding import SemanticHashEncoder
from repro.vectordb import Collection, Point


@pytest.fixture(scope="module")
def vectors():
    return np.random.default_rng(0).standard_normal((2000, 64))


@pytest.fixture(scope="module")
def hnsw(vectors):
    return HNSWIndex(m=8, ef_construction=60, ef_search=64, seed=0).build(vectors)


def test_bench_encoder_throughput(benchmark):
    encoder = SemanticHashEncoder(dim=128)
    texts = [f"vaccination campaign {i} in europe during 2021" for i in range(200)]
    encoder.encode(texts)  # warm the token cache

    result = benchmark(encoder.encode, texts)
    assert result.shape == (200, 128)


def test_bench_hnsw_search(benchmark, vectors, hnsw):
    query = np.random.default_rng(1).standard_normal(64)
    hits = benchmark(hnsw.search, query, 10)
    assert len(hits) == 10


def test_bench_bruteforce_search(benchmark, vectors):
    index = BruteForceIndex().build(vectors)
    query = np.random.default_rng(1).standard_normal(64)
    hits = benchmark(index.search, query, 10)
    assert len(hits) == 10


def test_bench_pq_encode(benchmark, vectors):
    pq = ProductQuantizer(n_subvectors=8, n_centroids=64).fit(vectors[:500])
    codes = benchmark(pq.encode, vectors)
    assert codes.shape == (2000, 8)


def test_bench_pq_adc_scan(benchmark, vectors):
    pq = ProductQuantizer(n_subvectors=8, n_centroids=64).fit(vectors[:500])
    codes = pq.encode(vectors)
    query = vectors[0]

    def adc():
        table = pq.adc_inner_product_table(query)
        return pq.adc_scores(table, codes)

    scores = benchmark(adc)
    assert scores.shape == (2000,)


def test_bench_umap_fit(benchmark):
    points = np.random.default_rng(2).standard_normal((400, 32))

    def fit():
        return UMAP(n_components=8, n_neighbors=10, n_epochs=30, seed=0).fit_transform(points)

    embedding = benchmark.pedantic(fit, rounds=2, iterations=1)
    assert embedding.shape == (400, 8)


def test_bench_hdbscan_fit(benchmark):
    rng = np.random.default_rng(3)
    points = np.vstack([c + rng.standard_normal((120, 8)) for c in rng.standard_normal((4, 8)) * 8])

    def fit():
        return HDBSCAN(min_cluster_size=15).fit_predict(points)

    labels = benchmark.pedantic(fit, rounds=2, iterations=1)
    assert labels.shape == (480,)


def test_bench_vectordb_indexed_search(benchmark, vectors):
    collection = Collection("bench", dim=64)
    collection.upsert([Point(i, v, {"i": i}) for i, v in enumerate(vectors)])
    collection.create_index("hnsw", m=8, ef_construction=60)
    query = np.random.default_rng(4).standard_normal(64)
    hits = benchmark(collection.search, query, 10)
    assert len(hits) == 10
