"""Regenerates Table 1 of the paper: quality of LONG query results.

Paper reference (WikiTables, LD row): CTS MAP 0.705 > ANNS 0.685 >
ExS 0.670 > MDR 0.655 > WS 0.640 > TCS 0.635 > AdH 0.620 > TML 0.610.
We reproduce the table's *shape* on the synthetic corpus; absolute
numbers differ (see EXPERIMENTS.md).
"""

from repro.data.queries import QueryCategory

from _quality import assert_table_sanity, regenerate_quality_table


def test_table1_long_queries(benchmark, bench_corpus, bench_splits, searchers_by_scale):
    table = benchmark.pedantic(
        regenerate_quality_table,
        args=(
            bench_corpus,
            bench_splits,
            searchers_by_scale,
            QueryCategory.LONG,
            "Table 1: Quality of long query results",
        ),
        rounds=1,
        iterations=1,
    )
    assert_table_sanity(table)
    print("\n" + table)
