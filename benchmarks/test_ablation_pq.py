"""Ablation: what Product Quantization buys and costs in ANNS.

DESIGN.md design choice: ANNS compresses value vectors with PQ before
HNSW indexing (the paper's configuration).  This bench compares the
exact scan, plain HNSW, and HNSW+PQ on quality, latency and memory.
"""

from repro.core.anns import ANNSearch
from repro.data.corpus import DatasetScale
from repro.data.queries import QueryCategory
from repro.eval.runner import evaluate_method
from repro.eval.timing import time_queries

from conftest import BENCH_K, qrels_cell

CONFIGS = (
    ("exact", {"index_kind": "exact"}),
    ("hnsw", {"index_kind": "hnsw"}),
    ("hnsw+pq", {"index_kind": "hnsw+pq"}),
)


def test_ablation_index_kind(benchmark, bench_corpus, bench_splits, searchers_by_scale):
    embeddings = searchers_by_scale[DatasetScale.LARGE]["exs"].embeddings
    qrels = qrels_cell(
        bench_corpus, bench_splits, QueryCategory.SHORT, DatasetScale.LARGE
    )
    queries = bench_corpus.query_texts(QueryCategory.SHORT)[:5]

    def measure():
        rows = []
        for label, params in CONFIGS:
            anns = ANNSearch(**params)
            anns.index(embeddings)
            quality = evaluate_method(anns, qrels, k=BENCH_K).map
            latency = time_queries(anns, queries, k=20, warmup=1).mean_ms
            if label == "hnsw+pq":
                ratio = anns.database.get_collection("values")  # stored full here
                compression = 128 * 8 / 8  # float64 dims vs uint8 codes
            else:
                compression = 1.0
            rows.append((label, quality, latency, compression))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nAblation: ANNS index kind (SQ, LD)")
    print(f"{'index':8} {'MAP':>6} {'ms/query':>9} {'vector compression':>19}")
    for label, quality, latency, compression in rows:
        print(f"{label:8} {quality:6.3f} {latency:9.2f} {compression:18.0f}x")

    by_label = {r[0]: r for r in rows}
    # PQ compression must not destroy quality (refine stage recovers it)
    assert by_label["hnsw+pq"][1] >= by_label["exact"][1] - 0.15
