"""Quality on the EDP-like corpus (the paper's second evaluation domain).

The paper evaluates on both WikiTables and the European Data Portal
corpus; the EDP corpus is smaller, numeric-heavy (55.3% numeric cells)
and carries open-data metadata.  This bench runs the three value-level
methods over it and reports pairwise significance of the MAP gaps
(paired bootstrap over per-query AP).
"""

from repro.core.engine import DiscoveryEngine
from repro.data.corpus import DatasetScale
from repro.data.edp import generate_edp_corpus
from repro.eval.runner import evaluate_method
from repro.eval.significance import compare_reports
from repro.eval.splits import train_test_split_pairs


def test_edp_value_methods(benchmark):
    def run():
        corpus = generate_edp_corpus(n_tables=120)
        federation = corpus.federation(DatasetScale.LARGE)
        engine = DiscoveryEngine(dim=192)
        engine.index(federation)
        _, test_qrels = train_test_split_pairs(corpus.qrels, seed=0)
        reports = {
            name: evaluate_method(engine.method(name), test_qrels, k=50, method_name=name)
            for name in ("cts", "anns", "exs")
        }
        comparisons = [
            compare_reports(reports["cts"], reports["exs"]),
            compare_reports(reports["cts"], reports["anns"]),
            compare_reports(reports["anns"], reports["exs"]),
        ]
        return corpus.describe(), reports, comparisons

    description, reports, comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nEDP corpus quality (all query lengths, held-out split)")
    print(description)
    for name, report in sorted(reports.items(), key=lambda kv: -kv[1].map):
        print(f"   {name.upper():5} MAP={report.map:.3f} MRR={report.mrr:.3f} "
              f"NDCG@10={report.ndcg[10]:.3f}")
    print("pairwise significance (paired bootstrap on per-query AP):")
    for comparison in comparisons:
        print(f"   {comparison}")

    for report in reports.values():
        assert report.map > 0.3  # far above random on this corpus
