"""Shared state for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures over
the same bench corpus (a scaled-down WikiTables-like corpus); corpus
generation, embedding and index construction happen once per session
here, so the benchmarks measure query-time work.
"""

from __future__ import annotations

import pytest

from repro.baselines import BASELINE_NAMES, make_baseline
from repro.core.engine import DiscoveryEngine
from repro.data.corpus import DatasetScale
from repro.data.queries import QueryCategory
from repro.data.wikitables import generate_wikitables_corpus
from repro.eval.qrels import Qrels
from repro.eval.splits import train_test_split_pairs

#: Bench scale: large enough for the orderings to show, small enough
#: for the whole suite to run in minutes.
BENCH_TABLES = 150
BENCH_DIM = 192
BENCH_K = 50
CORE_METHODS = ("cts", "anns", "exs")


@pytest.fixture(scope="session")
def bench_corpus():
    return generate_wikitables_corpus(n_tables=BENCH_TABLES)


@pytest.fixture(scope="session")
def bench_splits(bench_corpus):
    return train_test_split_pairs(bench_corpus.qrels, seed=0)


@pytest.fixture(scope="session")
def searchers_by_scale(bench_corpus, bench_splits):
    """name -> searcher, per dataset scale, built once per session."""
    train_qrels, _ = bench_splits
    by_scale = {}
    for scale in (DatasetScale.LARGE, DatasetScale.MODERATE, DatasetScale.SMALL):
        federation = bench_corpus.federation(scale)
        engine = DiscoveryEngine(dim=BENCH_DIM)
        engine.index(federation)
        scale_ids = {
            bench_corpus.qualified_id(r)
            for r in bench_corpus.partition_relations(scale)
        }
        scoped_train = train_qrels.restrict_to(scale_ids)
        searchers = {name: engine.method(name) for name in CORE_METHODS}
        for name in BASELINE_NAMES:
            baseline = make_baseline(name)
            baseline.index_federation(federation, engine.embeddings)
            if hasattr(baseline, "fit"):
                baseline.fit(scoped_train.pairs())
            searchers[name] = baseline
        by_scale[scale] = searchers
    return by_scale


def qrels_cell(corpus, splits, category: QueryCategory, scale: DatasetScale) -> Qrels:
    """The evaluation qrels of one (category, scale) cell."""
    _, test_qrels = splits
    scale_ids = {corpus.qualified_id(r) for r in corpus.partition_relations(scale)}
    texts = set(corpus.query_texts(category))
    scoped = Qrels()
    for query, relation_id, grade in test_qrels.restrict_to(scale_ids).pairs():
        if query in texts:
            scoped.add(query, relation_id, grade)
    return scoped
