"""Micro-benchmark: the fused federation-wide ExS scan kernel.

Not a paper artifact — this measures what fusing the scan buys on the
workload the per-relation loop is worst at: a federation of *many
small* relations, where the legacy path pays one Python dispatch and
one tiny GEMM per relation per batch while the fused kernel runs a
single GEMM over the whole stacked matrix plus one segment reduction.

Also times float32 vs float64 storage: the fused GEMM is bandwidth
bound at this shape, so halving the element width should never lose
throughput.

Run with ``pytest benchmarks/test_fused_scan.py -q -s`` for the
measured numbers; the assertions guard the fused >= 2x margin.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.engine import DiscoveryEngine
from repro.datamodel.relation import Federation, Relation
from repro.embedding.cache import CachingEncoder
from repro.embedding.semantic import SemanticHashEncoder

from _trajectory import record

#: Many small relations: the shape that maximizes per-block dispatch
#: overhead relative to arithmetic.
N_RELATIONS = 600
DIM = 64
K = 20

WORDS = [
    "vaccine", "league", "gdp", "galaxy", "sonata", "glacier",
    "enzyme", "harbor", "tariff", "nebula", "tempo", "monsoon",
]

QUERIES = [f"{WORDS[i % len(WORDS)]} {WORDS[(i + 5) % len(WORDS)]}" for i in range(16)]


def tiny_relation(slot: int) -> Relation:
    words = [WORDS[(slot + j) % len(WORDS)] for j in range(3)]
    return Relation(
        f"rel{slot}",
        ["Topic", "Measure"],
        [[f"{words[r % 3]} {slot}", str(100 * slot + r)] for r in range(3)],
        caption=f"{words[0]} {words[1]} table {slot}",
    )


@pytest.fixture(scope="module")
def fused_fed() -> Federation:
    return Federation.from_relations([tiny_relation(s) for s in range(N_RELATIONS)])


@pytest.fixture(scope="module")
def shared_encoder() -> CachingEncoder:
    """One cache across every engine: each variant times scan work,
    not first-touch hashing."""
    return CachingEncoder(SemanticHashEncoder(dim=DIM))


def make_engine(fused_fed, encoder, fused: bool, dtype) -> DiscoveryEngine:
    engine = DiscoveryEngine(
        encoder=encoder,
        dtype=dtype,
        method_params={"exs": {"fused": fused}},
    )
    engine.index(fused_fed)
    engine.method("exs")
    # Warm pass: encoder cache + BLAS thread pools out of the timings.
    engine.search_batch(QUERIES, method="exs", k=K)
    return engine


def best_of(fn, repeats: int = 3) -> float:
    """Best wall-clock of ``repeats`` runs (min is noise-robust)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_fused_kernel_beats_per_block_kernel(fused_fed, shared_encoder):
    """The acceptance guard: at >= 500 relations the fused scan kernel
    (one GEMM + one segment reduction) is at least 2x the per-relation
    GEMM loop.  Typical margins are 20-60x — the loop pays
    ~N_RELATIONS Python/BLAS dispatches per batch — so CI timing noise
    cannot flip the bound.

    Both paths are timed on the arithmetic alone (scores out of
    similarities); emitting per-relation match objects costs the same
    either way and is measured separately by the end-to-end test.
    """
    engine = make_engine(fused_fed, shared_encoder, fused=True, dtype=np.float32)
    method = engine.method("exs")
    block = method._encode_block(QUERIES)
    block_t = np.ascontiguousarray(block.T)
    matrix, counts = method._matrix, method._counts
    blocks = method._blocks()

    def per_block_kernel() -> None:
        # The arithmetic of ExhaustiveSearch._scan_blocks: one small
        # GEMM + one weighted mean per relation.
        for _, start, stop in blocks:
            sims = matrix[start:stop] @ block_t
            np.average(sims, weights=counts[start:stop], axis=0)

    def fused_kernel() -> np.ndarray:
        sims = matrix @ block.T
        return method._segment_scores(sims, method._offsets, method._row_weights)

    loop_s = best_of(per_block_kernel)
    fused_s = best_of(fused_kernel)
    speedup = loop_s / max(fused_s, 1e-9)
    record(
        "fused_scan",
        {
            "kernel_per_block_ms": loop_s * 1e3,
            "kernel_fused_ms": fused_s * 1e3,
            "kernel_speedup": speedup,
        },
    )
    print(
        f"\nExS scan kernel over {N_RELATIONS} relations x {len(QUERIES)} queries: "
        f"per-block {loop_s * 1e3:.2f} ms, fused {fused_s * 1e3:.2f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 2.0, f"fused kernel only {speedup:.2f}x faster than per-block"


def test_fused_end_to_end_not_slower(fused_fed, shared_encoder):
    """End-to-end serving (encode + scan + rank + emit) must still win;
    the margin is smaller than the kernel's because emitting one match
    object per (relation, query) dominates at this federation shape."""
    fused = make_engine(fused_fed, shared_encoder, fused=True, dtype=np.float32)
    loop = make_engine(fused_fed, shared_encoder, fused=False, dtype=np.float32)

    fused_s = best_of(lambda: fused.search_batch(QUERIES, method="exs", k=K))
    loop_s = best_of(lambda: loop.search_batch(QUERIES, method="exs", k=K))

    # Same rankings before we compare speed.
    a = fused.search_batch(QUERIES, method="exs", k=K, h=-1.0)
    b = loop.search_batch(QUERIES, method="exs", k=K, h=-1.0)
    for ra, rb in zip(a, b):
        assert ra.relation_ids() == rb.relation_ids()

    speedup = loop_s / max(fused_s, 1e-9)
    record(
        "fused_scan",
        {
            "e2e_per_block_ms": loop_s * 1e3,
            "e2e_fused_ms": fused_s * 1e3,
            "e2e_speedup": speedup,
            "e2e_qps": len(QUERIES) / max(fused_s, 1e-9),
        },
    )
    print(
        f"\nExS end-to-end over {N_RELATIONS} relations x {len(QUERIES)} queries: "
        f"per-block {loop_s * 1e3:.1f} ms, fused {fused_s * 1e3:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 1.2, f"fused serving only {speedup:.2f}x of per-block"


def test_float32_throughput_and_memory_vs_float64(fused_fed, shared_encoder):
    """float32 halves the stacked matrix and must not lose throughput
    beyond noise (the fused GEMM is bandwidth bound at this shape)."""
    f32 = make_engine(fused_fed, shared_encoder, fused=True, dtype=np.float32)
    f64 = make_engine(fused_fed, shared_encoder, fused=True, dtype=np.float64)

    f32_s = best_of(lambda: f32.search_batch(QUERIES, method="exs", k=K))
    f64_s = best_of(lambda: f64.search_batch(QUERIES, method="exs", k=K))

    f32_bytes = f32.method("exs").index_bytes()
    f64_bytes = f64.method("exs").index_bytes()
    assert f64_bytes == 2 * f32_bytes

    qps32 = len(QUERIES) / max(f32_s, 1e-9)
    qps64 = len(QUERIES) / max(f64_s, 1e-9)
    record(
        "fused_scan",
        {
            "f32_qps": qps32,
            "f64_qps": qps64,
            "f32_index_mb": f32_bytes / 1e6,
            "f64_index_mb": f64_bytes / 1e6,
        },
    )
    print(
        f"\nExS fused dtype sweep: float32 {f32_s * 1e3:.1f} ms "
        f"({qps32:.0f} q/s, {f32_bytes / 1e6:.1f} MB), "
        f"float64 {f64_s * 1e3:.1f} ms ({qps64:.0f} q/s, {f64_bytes / 1e6:.1f} MB)"
    )
    # Loose pathology guard, not a tight perf bound: the half-width
    # scan should never run at less than half the float64 speed.
    assert f32_s <= 2.0 * f64_s


def test_fused_parallel_workers(fused_fed, shared_encoder):
    """workers=4 chunks the stacked matrix by row range; rankings must
    not change and the wall clock is reported for the tuning docs."""
    engine = make_engine(fused_fed, shared_encoder, fused=True, dtype=np.float32)
    seq_s = best_of(lambda: engine.search_batch(QUERIES, method="exs", k=K))
    par_s = best_of(
        lambda: engine.search_batch(QUERIES, method="exs", k=K, workers=4)
    )
    a = engine.search_batch(QUERIES, method="exs", k=K, h=-1.0)
    b = engine.search_batch(QUERIES, method="exs", k=K, h=-1.0, workers=4)
    for ra, rb in zip(a, b):
        assert ra.relation_ids() == rb.relation_ids()
    print(
        f"\nExS fused workers: sequential {seq_s * 1e3:.1f} ms, "
        f"workers=4 {par_s * 1e3:.1f} ms"
    )
