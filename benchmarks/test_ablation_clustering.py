"""Ablation: HDBSCAN granularity and selection method in CTS.

DESIGN.md design choices: CTS uses leaf cluster selection (EOM keeps
one giant low-density cluster of generic values) and scales
min_cluster_size with corpus size.  This bench quantifies both.
"""

from repro.core.cts import ClusteredTargetedSearch
from repro.data.corpus import DatasetScale
from repro.data.queries import QueryCategory
from repro.eval.runner import evaluate_method

from conftest import BENCH_K, qrels_cell

CONFIGS = (
    ("leaf/15", {"cluster_selection_method": "leaf", "min_cluster_size": 15}),
    ("leaf/40", {"cluster_selection_method": "leaf", "min_cluster_size": 40}),
    ("eom/15", {"cluster_selection_method": "eom", "min_cluster_size": 15}),
)


def test_ablation_cluster_selection(benchmark, bench_corpus, bench_splits, searchers_by_scale):
    embeddings = searchers_by_scale[DatasetScale.LARGE]["exs"].embeddings
    qrels = qrels_cell(
        bench_corpus, bench_splits, QueryCategory.SHORT, DatasetScale.LARGE
    )

    def measure():
        rows = []
        for label, params in CONFIGS:
            cts = ClusteredTargetedSearch(**params)
            cts.index(embeddings)
            quality = evaluate_method(cts, qrels, k=BENCH_K).map
            sizes = sorted(cts.cluster_sizes().values(), reverse=True)
            biggest_share = sizes[0] / sum(sizes)
            rows.append((label, quality, cts.n_clusters, biggest_share))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nAblation: CTS cluster selection (SQ, LD)")
    print(f"{'config':8} {'MAP':>6} {'clusters':>9} {'largest share':>14}")
    for label, quality, clusters, share in rows:
        print(f"{label:8} {quality:6.3f} {clusters:9d} {share:13.1%}")
    assert len(rows) == len(CONFIGS)
