"""Micro-benchmark: incremental delta vs full ``index()`` rebuild.

Not a paper artifact — this measures the lifecycle layer the
reproduction adds on top of the paper's build-once design: absorbing a
single-relation update through :meth:`DiscoveryEngine.update_relations`
re-embeds one relation and patches the built indexes in place, where a
full rebuild re-embeds all 200 relations and reconstructs every index
from scratch.

Run with ``pytest benchmarks/test_incremental_update.py
--benchmark-only`` for per-path timings; the plain assertion test
guards the speedup and works under ``--benchmark-disable``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.engine import DiscoveryEngine
from repro.data.wikitables import generate_wikitables_corpus
from repro.datamodel.relation import Relation

N_TABLES = 200
DIM = 128
#: Methods the delta is threaded through.  CTS is exercised by the
#: tier-1 lifecycle tests; at bench scale its UMAP+HDBSCAN build would
#: swamp the embed-time contrast this benchmark isolates.
METHODS = ("exs", "anns")


def build_engine(federation):
    engine = DiscoveryEngine(dim=DIM)
    engine.index(federation)
    for name in METHODS:
        engine.method(name)
    return engine


@pytest.fixture(scope="module")
def lifecycle_federation():
    federation = generate_wikitables_corpus(n_tables=N_TABLES).federation()
    assert federation.num_relations == N_TABLES
    return federation


@pytest.fixture(scope="module")
def revised_relation(lifecycle_federation):
    """A modified copy of one relation (same id, new content)."""
    target_id = next(iter(dict(lifecycle_federation.relations())))
    original = lifecycle_federation.relation(target_id)
    revised = Relation(
        original.name,
        original.schema,
        [[f"{value} revised" for value in row.values] for row in original.rows],
        caption=f"{original.caption} second edition",
    )
    return target_id, revised


def test_full_rebuild(benchmark, lifecycle_federation):
    engine = benchmark(lambda: build_engine(lifecycle_federation))
    assert engine.embeddings.n_relations == N_TABLES


def test_incremental_update(benchmark, lifecycle_federation, revised_relation):
    engine = build_engine(lifecycle_federation)
    target_id, revised = revised_relation

    def one_delta():
        engine.update_relations({target_id: revised})

    benchmark(one_delta)
    assert engine.embeddings.n_relations == N_TABLES


def test_incremental_update_beats_full_rebuild(lifecycle_federation, revised_relation):
    """The acceptance guard: one-relation delta >= 10x faster than a
    full ``index()`` rebuild of the 200-relation federation.

    The margin holds comfortably — the delta re-embeds 1/200th of the
    values and patches indexes instead of rebuilding them — and both
    paths are timed in the same process back to back.
    """
    target_id, revised = revised_relation
    engine = build_engine(lifecycle_federation)

    start = time.perf_counter()
    engine.update_relations({target_id: revised})
    incremental_s = time.perf_counter() - start

    start = time.perf_counter()
    rebuilt = build_engine(lifecycle_federation)
    rebuild_s = time.perf_counter() - start

    assert rebuilt.embeddings.n_relations == engine.embeddings.n_relations
    assert engine.embeddings.generation == 1

    speedup = rebuild_s / max(incremental_s, 1e-9)
    print(
        f"\nlifecycle: full rebuild {rebuild_s * 1e3:.1f} ms, "
        f"single-relation delta {incremental_s * 1e3:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )
    print(engine.metrics.format_table())

    table = engine.metrics.format_table()
    for metric in ("engine.deltas", "engine.generation", "exs.delta_ms"):
        assert metric in table, f"{metric} missing from metrics table"
    assert speedup >= 10.0, f"incremental delta only {speedup:.2f}x faster"
