"""Shared driver for the Table 1-3 quality benchmarks."""

from __future__ import annotations

from repro.data.corpus import DatasetScale
from repro.data.queries import QueryCategory
from repro.eval.runner import evaluate_method

from conftest import BENCH_K, qrels_cell

SCALES = (DatasetScale.LARGE, DatasetScale.MODERATE, DatasetScale.SMALL)


def regenerate_quality_table(
    corpus, splits, searchers_by_scale, category: QueryCategory, title: str
) -> str:
    """Evaluate every method per scale and render the paper-style table."""
    lines = [title, "=" * len(title)]
    header = (
        f"{'Dataset':8} {'Method':6} {'MAP':>6} {'MRR':>6} "
        + " ".join(f"N@{k:<3}" for k in (5, 10, 15, 20))
    )
    lines.append(header)
    lines.append("-" * len(header))
    for scale in SCALES:
        qrels = qrels_cell(corpus, splits, category, scale)
        rows = []
        for name, searcher in searchers_by_scale[scale].items():
            report = evaluate_method(searcher, qrels, k=BENCH_K, method_name=name)
            rows.append(report)
        rows.sort(key=lambda r: -r.map)
        for i, report in enumerate(rows):
            label = scale.value if i == 0 else ""
            ndcg = " ".join(f"{report.ndcg[k]:.3f}" for k in (5, 10, 15, 20))
            lines.append(
                f"{label:8} {report.method.upper():6} {report.map:6.3f} "
                f"{report.mrr:6.3f} {ndcg}"
            )
        lines.append("-" * len(header))
    return "\n".join(lines)


def assert_table_sanity(table: str) -> None:
    """Loose invariants every regenerated quality table must satisfy."""
    assert "LD" in table and "MD" in table and "SD" in table
    for method in ("CTS", "ANNS", "EXS", "MDR", "WS", "TCS", "ADH", "TML"):
        assert method in table
