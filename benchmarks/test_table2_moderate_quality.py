"""Regenerates Table 2 of the paper: quality of MODERATE query results.

Paper reference (WikiTables, LD row): CTS MAP 0.755 > ANNS 0.735 >
ExS 0.720 > MDR 0.710 > WS 0.700 > TCS 0.690 > AdH 0.675 > TML 0.620.
"""

from repro.data.queries import QueryCategory

from _quality import assert_table_sanity, regenerate_quality_table


def test_table2_moderate_queries(benchmark, bench_corpus, bench_splits, searchers_by_scale):
    table = benchmark.pedantic(
        regenerate_quality_table,
        args=(
            bench_corpus,
            bench_splits,
            searchers_by_scale,
            QueryCategory.MODERATE,
            "Table 2: Quality of moderate query results",
        ),
        rounds=1,
        iterations=1,
    )
    assert_table_sanity(table)
    print("\n" + table)
