"""Bench trajectory artifacts: ``BENCH_<name>.json`` files CI uploads.

Five perf-focused PRs in, the repo had numbers in CI logs and nowhere
else.  This helper gives every benchmark one call —
``record("serving", {...})`` — that lands its headline measurements in
a machine-stable JSON file at the repo root (or ``$REPRO_BENCH_DIR``).
The bench-smoke CI job uploads ``BENCH_*.json`` as an artifact, so the
QPS/p99 trajectory is finally comparable across PRs.

Schema (stable; extend with new metric keys, don't rename):

    {
      "schema": 1,
      "name": "serving",
      "git_sha": "<HEAD or $GITHUB_SHA or 'unknown'>",
      "timestamp": "<UTC ISO-8601>",
      "python": "3.12.1", "numpy": "1.26.4", "cpu_count": 4,
      "metrics": {"closed_qps": ..., "open_p99_ms": ..., ...}
    }

Multiple tests in one bench module merge into one file: each ``record``
call updates the ``metrics`` mapping and refreshes the envelope.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEMA = 1


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return os.environ.get("GITHUB_SHA", "unknown")


def bench_path(name: str) -> Path:
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", REPO_ROOT))
    return out_dir / f"BENCH_{name}.json"


def record(name: str, metrics: "dict[str, float | int | str]") -> Path:
    """Merge ``metrics`` into ``BENCH_<name>.json`` and return its path.

    Values should be plain numbers (ms, qps, ratios) rounded by the
    caller only for display — the file keeps full precision so trend
    diffs are not quantization noise.
    """
    path = bench_path(name)
    merged: "dict[str, float | int | str]" = {}
    if path.exists():
        try:
            merged.update(json.loads(path.read_text(encoding="utf-8")).get("metrics", {}))
        except (ValueError, OSError):
            pass  # a torn/stale file is replaced wholesale
    merged.update(metrics)
    payload = {
        "schema": SCHEMA,
        "name": name,
        "git_sha": _git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
        "metrics": merged,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
