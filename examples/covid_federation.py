"""The paper's motivating example (Figure 1): Sarah's COVID search.

Three health organizations publish vaccination tables with different
vocabulary — WHO uses trade names (Comirnaty), CDC uses immunogens
(mRNA), and only ECDC contains the literal string "COVID-19".  Keyword
search finds only ECDC; semantic matching must surface all three.

Run:
    python examples/covid_federation.py
"""

from repro.core import DiscoveryEngine
from repro.data.covid import covid_federation


def keyword_search(federation, keyword: str) -> list[str]:
    """What Sarah's keyword search does: literal substring matching."""
    keyword = keyword.lower()
    return [
        relation_id
        for relation_id, relation in federation.relations()
        if any(keyword in value.lower() for value in relation.values())
        or keyword in relation.caption.lower()
    ]


def main() -> None:
    federation = covid_federation(include_distractors=True)
    query = "COVID"

    print(f'query: "{query}"\n')
    print("keyword search finds: ", keyword_search(federation, query))
    print("  (WHO and CDC are missed: they never spell out the disease)\n")

    engine = DiscoveryEngine(
        dim=256,
        method_params={
            "cts": {"min_cluster_size": 4, "umap_neighbors": 5},
            "anns": {"n_centroids": 16},
        },
    )
    engine.index(federation)

    for method in ("exs", "anns", "cts"):
        result = engine.search(query, method=method, k=6, h=-1.0)
        print(f"[{method.upper()}]")
        for match in result:
            marker = "<-- semantic match" if match.relation_id.split("/")[0] in (
                "WHO",
                "CDC",
            ) else ""
            print(f"   {match.score:6.3f}  {match.relation_id:45} {marker}")
        print()

    print(
        "All three methods rank WHO, CDC and ECDC above the distractor\n"
        "tables even though two of them contain no COVID keyword at all."
    )


if __name__ == "__main__":
    main()
