"""Searching an open-data-portal corpus (the paper's EDP scenario).

Generates the EDP-like corpus (numeric-heavy tables with publisher
metadata), indexes it, and evaluates all three methods against the
generated relevance judgments — a miniature of the paper's second
evaluation domain.

Run:
    python examples/open_data_portal.py
"""

from repro.core import DiscoveryEngine
from repro.data import DatasetScale, generate_edp_corpus
from repro.data.queries import QueryCategory
from repro.eval import evaluate_method
from repro.eval.splits import train_test_split_pairs


def main() -> None:
    corpus = generate_edp_corpus(n_tables=120)
    print(corpus.describe())

    federation = corpus.federation(DatasetScale.LARGE)
    engine = DiscoveryEngine(dim=256)
    engine.index(federation)
    print(
        f"indexed {federation.num_relations} datasets "
        f"({engine.embeddings.total_vectors} value vectors)\n"
    )

    # 1. Interactive-style search on one generated query.
    spec = corpus.queries_of(QueryCategory.SHORT)[0]
    print(f"sample query: {spec.text!r} (topic={spec.topic})")
    result = engine.search(spec.text, method="cts", k=5, h=-1.0)
    judgments = corpus.qrels.judgments(spec.text)
    for match in result:
        print(f"   {match.score:6.3f}  grade={judgments.grade(match.relation_id)}  {match.relation_id}")

    # 2. Aggregate quality on the held-out judgments.
    _, test_qrels = train_test_split_pairs(corpus.qrels, seed=0)
    print("\nheld-out quality (all query lengths):")
    for method in ("cts", "anns", "exs"):
        report = evaluate_method(engine.method(method), test_qrels, k=50)
        print(
            f"   {method.upper():5} MAP={report.map:.3f} MRR={report.mrr:.3f} "
            f"NDCG@10={report.ndcg[10]:.3f}"
        )


if __name__ == "__main__":
    main()
