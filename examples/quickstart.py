"""Quickstart: index a federation and search it with all three methods.

Run:
    python examples/quickstart.py
"""

from repro.core import DiscoveryEngine
from repro.datamodel import Federation, Relation


def main() -> None:
    # 1. Describe some datasets.  In a real deployment these would be
    #    loaded from CSV files (repro.datamodel.relation_from_csv) or a
    #    catalogue; embeddings never expose the raw values, so the data
    #    itself can stay on-premises.
    relations = [
        Relation(
            "eu_vaccinations",
            ["Country", "Date", "Vaccine", "Doses"],
            [
                ["germany", "2021-03-01", "comirnaty", "120000"],
                ["france", "2021-03-01", "vaxzevria", "98000"],
                ["spain", "2021-04-01", "comirnaty", "87000"],
            ],
            caption="vaccination rollout in the european union",
        ),
        Relation(
            "league_results",
            ["Team", "Season", "Points"],
            [
                ["ajax", "2021", "83"],
                ["psv", "2021", "79"],
            ],
            caption="football league final standings",
        ),
        Relation(
            "energy_production",
            ["Country", "Source", "Output"],
            [
                ["germany", "wind", "131000"],
                ["france", "nuclear", "379000"],
            ],
            caption="electricity generation by source",
        ),
    ]
    federation = Federation.from_relations(relations, name="demo")

    # 2. Index once; the engine embeds every attribute value.
    engine = DiscoveryEngine(
        dim=256,
        method_params={"cts": {"min_cluster_size": 5, "umap_neighbors": 6}},
    )
    engine.index(federation)

    # 3. Search.  Note the query terms never appear verbatim in the
    #    vaccination table — the match is semantic.
    query = "covid immunization statistics"
    print(f"query: {query!r}\n")
    for method in ("exs", "anns", "cts"):
        result = engine.search(query, method=method, k=3, h=-1.0)
        print(f"[{method.upper()}] ({result.elapsed_ms:.1f} ms)")
        for match in result:
            print(f"   {match.score:6.3f}  {match.relation_id}")
        print()


if __name__ == "__main__":
    main()
