"""The Sec 5.3 case study: "Climate Change Effects Europe 2020".

Builds a corpus with the paper's confounder structure — climate tables
about the wrong region, about the wrong year, and unrelated tables —
and shows how each search method handles the focused query.

Run:
    python examples/climate_case_study.py
"""

from repro.experiments.casestudy import CASE_STUDY_QUERY, run_case_study


def main() -> None:
    print(f'query: "{CASE_STUDY_QUERY}"')
    print(
        "corpus: climate/Europe/2020 targets + wrong-region and "
        "wrong-year climate confounders + unrelated tables\n"
    )
    reports = run_case_study(dim=256, n_per_group=5, k=5)
    for method in ("exs", "anns", "cts"):
        report = reports[method]
        print(report.summary())
    print(
        "\nReading the output: all tables share the climate topic, so"
        "\nonly the region/year facet cells separate targets from"
        "\nconfounders.  CTS routes the query into the relevant"
        "\nclusters and surfaces targets early; ExS recovers them"
        "\nthrough its full scan; ANNS's fixed candidate budget blends"
        "\nthe confounders in (the paper's Sec 5.3 observation)."
    )


if __name__ == "__main__":
    main()
