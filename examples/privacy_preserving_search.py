"""Privacy-preserving federation search with vector-DB snapshots.

The paper motivates embeddings for federations where "datasets are not
allowed to leave the original premises": embeddings are not inherently
reversible, so each site can publish only its value vectors.  This
example simulates that flow:

1. each site builds its own relation embeddings locally;
2. only the vectors + coarse metadata are exported into a shared
   vector database snapshot (no cell values cross the boundary);
3. the search coordinator loads the snapshot and answers queries,
   returning dataset identifiers — the analyst then requests access
   from the owning site.

Run:
    python examples/privacy_preserving_search.py
"""

import tempfile
from pathlib import Path

from repro.core.semimg import build_relation_embedding
from repro.data.covid import cdc_relation, ecdc_relation, who_relation
from repro.embedding import CachingEncoder, SemanticHashEncoder
from repro.linalg.distances import Metric
from repro.vectordb import Point, VectorDatabase


def site_export(site: str, relation, encoder, db: VectorDatabase) -> None:
    """What runs inside each site: embed locally, export vectors only."""
    embedding = build_relation_embedding(f"{site}/{relation.name}", relation, encoder)
    collection = db.get_collection("federation")
    start = len(collection)
    collection.upsert(
        [
            Point(
                id=start + row,
                vector=embedding.vectors[row],
                # NOTE: the payload carries the dataset id and column
                # name, but never the cell value itself.
                payload={"site": site, "dataset": embedding.relation_id,
                         "column": embedding.attr_names[row]},
            )
            for row in range(embedding.n_unique)
        ]
    )


def main() -> None:
    encoder = CachingEncoder(SemanticHashEncoder(dim=256))
    db = VectorDatabase()
    db.create_collection("federation", dim=256, metric=Metric.COSINE)

    for site, relation in (
        ("who.int", who_relation()),
        ("cdc.gov", cdc_relation()),
        ("ecdc.europa.eu", ecdc_relation()),
    ):
        site_export(site, relation, encoder, db)

    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "federation-snapshot"
        db.save(snapshot)
        print(f"exported snapshot: {sorted(p.name for p in snapshot.iterdir())}\n")

        coordinator = VectorDatabase.load(snapshot)
        collection = coordinator.get_collection("federation")
        collection.create_index("hnsw", m=8, ef_construction=40)

        query = "covid vaccine doses"
        q = encoder.encode_one(query)
        print(f"query: {query!r}")
        seen = {}
        for hit in collection.search(q, k=12):
            dataset = hit.payload["dataset"]
            if dataset not in seen:
                seen[dataset] = (hit.score, hit.payload["site"], hit.payload["column"])
        for dataset, (score, site, column) in sorted(seen.items(), key=lambda kv: -kv[1][0]):
            print(f"   {score:6.3f}  {dataset:20} (owner {site}, first match in {column!r})")
        print("\nNo cell value ever left its site — only embeddings did.")


if __name__ == "__main__":
    main()
