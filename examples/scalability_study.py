"""Scalability study: query latency across the SD/MD/LD partitions.

A miniature of the paper's Sec 5.4 performance evaluation: the same
query set is timed against the 10%, 50% and 100% partitions of the
WikiTables-like corpus for each search method.

Run:
    python examples/scalability_study.py
"""

from repro.core import DiscoveryEngine
from repro.data import DatasetScale, generate_wikitables_corpus
from repro.data.queries import QueryCategory
from repro.eval import time_queries


def main() -> None:
    corpus = generate_wikitables_corpus(n_tables=150)
    queries = corpus.query_texts(QueryCategory.MODERATE)[:5]
    scales = (DatasetScale.SMALL, DatasetScale.MODERATE, DatasetScale.LARGE)

    print(f"{'scale':6} {'tables':>7} {'vectors':>8} {'CTS':>8} {'ANNS':>8} {'ExS':>8}")
    for scale in scales:
        federation = corpus.federation(scale)
        engine = DiscoveryEngine(dim=192)
        engine.index(federation)
        timings = {}
        for method in ("cts", "anns", "exs"):
            timings[method] = time_queries(
                engine.method(method), queries, k=20, warmup=1
            ).mean_ms
        print(
            f"{scale.value:6} {federation.num_relations:7d} "
            f"{engine.embeddings.total_vectors:8d} "
            f"{timings['cts']:8.2f} {timings['anns']:8.2f} {timings['exs']:8.2f}"
        )
    print(
        "\nExS's per-attribute scan cost grows linearly with the corpus;\n"
        "CTS grows much more slowly because its per-query work is bounded\n"
        "by the routed clusters rather than the corpus size."
    )


if __name__ == "__main__":
    main()
