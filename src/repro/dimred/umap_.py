"""Uniform Manifold Approximation and Projection (McInnes et al., 2018).

A from-scratch UMAP covering the full pipeline the reference
implementation uses:

1. kNN graph (accepts a precomputed :class:`~repro.dimred.knn_graph.KNNGraph`,
   matching the paper's precomputed-KNN optimization);
2. smooth-kNN distance calibration (per-point ``rho``/``sigma`` via
   binary search so each point's effective neighbourhood has fixed
   entropy);
3. fuzzy simplicial set construction and probabilistic-t-conorm
   symmetrization;
4. spectral initialization from the normalized graph Laplacian;
5. stochastic gradient optimization of the low-dimensional layout with
   weighted edge sampling and negative sampling.

The SGD step processes sampled edge batches vectorized in numpy rather
than one edge at a time (the reference uses numba for that); the
objective and update rule are the same.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp
from scipy.optimize import curve_fit
from scipy.sparse.linalg import ArpackError, eigsh

from repro.dimred.knn_graph import KNNGraph, build_knn_graph
from repro.errors import ConfigurationError, NotFittedError
from repro.linalg.distances import euclidean_distance

__all__ = ["UMAP"]

_SMOOTH_K_TOLERANCE = 1e-5
_MIN_K_DIST_SCALE = 1e-3


def _fit_curve_params(min_dist: float, spread: float = 1.0) -> tuple[float, float]:
    """Fit the (a, b) low-dimensional similarity curve for ``min_dist``."""

    def curve(x: np.ndarray, a: float, b: float) -> np.ndarray:
        return 1.0 / (1.0 + a * x ** (2 * b))

    xv = np.linspace(0, spread * 3, 300)
    yv = np.where(xv < min_dist, 1.0, np.exp(-(xv - min_dist) / spread))
    params, _ = curve_fit(curve, xv, yv, p0=(1.0, 1.0), maxfev=2000)
    return float(params[0]), float(params[1])


class UMAP:
    """UMAP dimensionality reducer.

    Parameters
    ----------
    n_components:
        Output dimensionality.
    n_neighbors:
        kNN neighbourhood size controlling local/global balance.
    min_dist:
        Minimum separation of points in the embedding.
    n_epochs:
        SGD epochs (scaled-down default suited to corpus sizes here).
    negative_sample_rate:
        Negative samples drawn per positive edge sample.
    learning_rate:
        Initial SGD step size (decays linearly to zero).
    precomputed_knn:
        Optional :class:`KNNGraph` built elsewhere; skips the internal
        kNN step, as the paper does.
    seed:
        Seed controlling sampling and initialization.
    """

    def __init__(
        self,
        n_components: int = 16,
        n_neighbors: int = 15,
        min_dist: float = 0.1,
        n_epochs: int = 150,
        negative_sample_rate: int = 5,
        learning_rate: float = 1.0,
        precomputed_knn: KNNGraph | None = None,
        seed: int = 0,
    ) -> None:
        if n_components < 1:
            raise ConfigurationError("n_components must be >= 1")
        if n_neighbors < 2:
            raise ConfigurationError("n_neighbors must be >= 2")
        if not 0.0 <= min_dist < 3.0:
            raise ConfigurationError("min_dist must be in [0, 3)")
        self.n_components = n_components
        self.n_neighbors = n_neighbors
        self.min_dist = min_dist
        self.n_epochs = n_epochs
        self.negative_sample_rate = negative_sample_rate
        self.learning_rate = learning_rate
        self.precomputed_knn = precomputed_knn
        self.seed = seed
        self._a, self._b = _fit_curve_params(min_dist)
        self.embedding_: np.ndarray | None = None
        self.graph_: sp.csr_matrix | None = None
        self._train_points: np.ndarray | None = None

    # -- fuzzy simplicial set -------------------------------------------

    @staticmethod
    def _smooth_knn_dist(
        distances: np.ndarray, k: float, n_iter: int = 64
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-point (rho, sigma) calibration by binary search.

        ``rho`` is the distance to the nearest neighbour (local
        connectivity of 1); ``sigma`` is chosen so the sum of kernel
        values equals ``log2(k)``.
        """
        n = distances.shape[0]
        target = math.log2(k)
        rho = np.zeros(n)
        sigma = np.zeros(n)
        mean_all = float(distances.mean()) if distances.size else 1.0
        for i in range(n):
            row = distances[i]
            nonzero = row[row > 0.0]
            rho[i] = nonzero[0] if nonzero.size else 0.0
            lo, hi, mid = 0.0, np.inf, 1.0
            for _ in range(n_iter):
                psum = float(np.sum(np.exp(-np.maximum(row - rho[i], 0.0) / mid)))
                if abs(psum - target) < _SMOOTH_K_TOLERANCE:
                    break
                if psum > target:
                    hi = mid
                    mid = (lo + hi) / 2.0
                else:
                    lo = mid
                    mid = mid * 2.0 if hi == np.inf else (lo + hi) / 2.0
            sigma[i] = mid
            # Guard against degenerate tiny sigmas (all-identical rows).
            mean_row = float(row.mean()) if row.size else mean_all
            floor = _MIN_K_DIST_SCALE * (mean_row if rho[i] > 0.0 else mean_all)
            sigma[i] = max(sigma[i], floor)
        return rho, sigma

    def _fuzzy_simplicial_set(self, knn: KNNGraph) -> sp.csr_matrix:
        n, k = knn.indices.shape
        rho, sigma = self._smooth_knn_dist(knn.distances, float(k))
        vals = np.exp(
            -np.maximum(knn.distances - rho[:, np.newaxis], 0.0) / sigma[:, np.newaxis]
        )
        rows = np.repeat(np.arange(n), k)
        graph = sp.csr_matrix(
            (vals.ravel(), (rows, knn.indices.ravel())), shape=(n, n)
        )
        transpose = graph.T.tocsr()
        product = graph.multiply(transpose)
        return (graph + transpose - product).tocsr()

    # -- initialization ----------------------------------------------------

    def _spectral_init(self, graph: sp.csr_matrix, rng: np.random.Generator) -> np.ndarray:
        n = graph.shape[0]
        k = self.n_components
        if n <= k + 2:
            return rng.standard_normal((n, k)) * 1e-2
        degrees = np.asarray(graph.sum(axis=1)).ravel()
        degrees = np.where(degrees > 0, degrees, 1.0)
        d_inv_sqrt = sp.diags(1.0 / np.sqrt(degrees))
        laplacian = sp.identity(n) - d_inv_sqrt @ graph @ d_inv_sqrt
        try:
            v0 = rng.standard_normal(n)
            _, vectors = eigsh(laplacian, k=k + 1, sigma=0.0, which="LM", v0=v0)
            init = vectors[:, 1 : k + 1]
        except (ArpackError, RuntimeError):
            # Lanczos non-convergence (ArpackError) or a singular
            # shift-invert factorization (RuntimeError from splu) on
            # disconnected graphs; anything else — a shape bug, a bad
            # dtype — should surface, not silently fall back.
            return rng.standard_normal((n, k)) * 1e-2
        scale = np.abs(init).max()
        if scale > 0:
            init = init / scale * 10.0
        return init + rng.standard_normal(init.shape) * 1e-4

    # -- optimization -------------------------------------------------------

    def _optimize(
        self,
        graph: sp.csr_matrix,
        init: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        coo = graph.tocoo()
        mask = coo.data > 0
        heads, tails, weights = coo.row[mask], coo.col[mask], coo.data[mask]
        if heads.size == 0:
            return init
        prob = weights / weights.sum()
        embedding = init.astype(np.float64).copy()
        n = embedding.shape[0]
        batch = heads.size
        a, b = self._a, self._b
        clip = 4.0
        for epoch in range(self.n_epochs):
            alpha = self.learning_rate * (1.0 - epoch / self.n_epochs)
            sampled = rng.choice(heads.size, size=batch, p=prob)
            hi, ti = heads[sampled], tails[sampled]
            delta = embedding[hi] - embedding[ti]
            d2 = np.sum(delta**2, axis=1)
            # Attractive gradient of the cross-entropy w.r.t. distance.
            grad_coeff = np.where(
                d2 > 0.0,
                (-2.0 * a * b * d2 ** (b - 1.0)) / (a * d2**b + 1.0),
                0.0,
            )
            grad = np.clip(grad_coeff[:, np.newaxis] * delta, -clip, clip)
            np.add.at(embedding, hi, alpha * grad)
            np.add.at(embedding, ti, -alpha * grad)
            # Repulsive updates via negative sampling.
            for _ in range(self.negative_sample_rate):
                neg = rng.integers(0, n, size=batch)
                delta_n = embedding[hi] - embedding[neg]
                d2n = np.sum(delta_n**2, axis=1)
                coeff = (2.0 * b) / ((0.001 + d2n) * (a * d2n**b + 1.0))
                coeff = np.where(neg == hi, 0.0, coeff)
                grad_n = np.clip(coeff[:, np.newaxis] * delta_n, -clip, clip)
                np.add.at(embedding, hi, alpha * grad_n)
        return embedding

    # -- public API -----------------------------------------------------------

    def fit(self, points: np.ndarray) -> "UMAP":
        """Learn an embedding of ``points``."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ConfigurationError("UMAP expects a 2-D (n, dim) array")
        n = points.shape[0]
        if n < 4:
            raise ConfigurationError("UMAP needs at least 4 points")
        rng = np.random.default_rng(self.seed)
        knn = self.precomputed_knn
        if knn is None or knn.n_points != n:
            knn = build_knn_graph(points, min(self.n_neighbors, n - 1))
        graph = self._fuzzy_simplicial_set(knn)
        init = self._spectral_init(graph, rng)
        self.embedding_ = self._optimize(graph, init, rng)
        self.graph_ = graph
        self._train_points = points
        return self

    def fit_transform(self, points: np.ndarray) -> np.ndarray:
        """Fit and return the training embedding."""
        self.fit(points)
        assert self.embedding_ is not None
        return self.embedding_

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Embed out-of-sample points.

        Each new point is placed at the membership-weighted average of
        its nearest training points' embeddings — the standard
        out-of-sample strategy, and what CTS uses to bring the query
        into the reduced space where medoids live.
        """
        if self.embedding_ is None or self._train_points is None:
            raise NotFittedError("UMAP.transform called before fit")
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        k = min(self.n_neighbors, self._train_points.shape[0])
        dists = euclidean_distance(points, self._train_points)
        idx = np.argsort(dists, axis=1)[:, :k]
        nd = np.take_along_axis(dists, idx, axis=1)
        # Gaussian weights scaled by each row's neighbourhood radius.
        scale = np.maximum(nd.mean(axis=1, keepdims=True), 1e-12)
        w = np.exp(-nd / scale)
        w = w / w.sum(axis=1, keepdims=True)
        return np.einsum("nk,nkd->nd", w, self.embedding_[idx])
