"""k-nearest-neighbour graph construction.

UMAP and HDBSCAN both start from per-point nearest neighbours.  The
paper notes (Sec 5, Model Specifications) that UMAP's KNN step was
precomputed to optimize runtime; :class:`KNNGraph` is that precomputed
artifact — build it once, feed it to both consumers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.hnsw import HNSWIndex
from repro.errors import ConfigurationError
from repro.linalg.distances import Metric, euclidean_distance

__all__ = ["KNNGraph", "build_knn_graph"]


@dataclass(frozen=True)
class KNNGraph:
    """Exact or approximate kNN lists: indices and distances per point.

    ``indices[i]`` and ``distances[i]`` describe point ``i``'s ``k``
    nearest *other* points, nearest first.
    """

    indices: np.ndarray  # (n, k) intp
    distances: np.ndarray  # (n, k) float64

    @property
    def n_points(self) -> int:
        return self.indices.shape[0]

    @property
    def k(self) -> int:
        return self.indices.shape[1]

    def validate(self) -> None:
        """Check internal consistency (shapes and sorted distances)."""
        if self.indices.shape != self.distances.shape:
            raise ConfigurationError("indices and distances shapes differ")
        if np.any(np.diff(self.distances, axis=1) < -1e-9):
            raise ConfigurationError("distances rows must be sorted ascending")


def build_knn_graph(
    points: np.ndarray,
    k: int,
    approximate: bool = False,
    metric: Metric = Metric.EUCLIDEAN,
    seed: int = 0,
) -> KNNGraph:
    """Build a kNN graph over ``points``.

    Parameters
    ----------
    points:
        ``(n, dim)`` data.
    k:
        Neighbours per point (excluding the point itself); clamped to
        ``n - 1``.
    approximate:
        Use an HNSW index instead of the exact blocked scan — the
        standard trade for corpora too large to scan quadratically.
    metric:
        Distance metric (euclidean by default, matching UMAP/HDBSCAN).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ConfigurationError("points must be 2-D")
    n = points.shape[0]
    if n < 2:
        raise ConfigurationError("need at least 2 points for a kNN graph")
    k = min(k, n - 1)

    if approximate:
        return _approximate_graph(points, k, metric, seed)
    return _exact_graph(points, k, metric)


def _exact_graph(points: np.ndarray, k: int, metric: Metric) -> KNNGraph:
    n = points.shape[0]
    indices = np.empty((n, k), dtype=np.intp)
    distances = np.empty((n, k), dtype=np.float64)
    block = max(1, min(n, 4_000_000 // max(n, 1)))
    for start in range(0, n, block):
        stop = min(start + block, n)
        if metric is Metric.EUCLIDEAN:
            d = euclidean_distance(points[start:stop], points)
        else:
            from repro.linalg.distances import pairwise_distance

            d = pairwise_distance(points[start:stop], points, metric)
        rows = np.arange(start, stop)
        d[np.arange(stop - start), rows] = np.inf  # exclude self
        part = np.argpartition(d, k - 1, axis=1)[:, :k]
        part_d = np.take_along_axis(d, part, axis=1)
        order = np.argsort(part_d, axis=1)
        indices[start:stop] = np.take_along_axis(part, order, axis=1)
        distances[start:stop] = np.take_along_axis(part_d, order, axis=1)
    return KNNGraph(indices=indices, distances=distances)


def _approximate_graph(points: np.ndarray, k: int, metric: Metric, seed: int) -> KNNGraph:
    n = points.shape[0]
    index = HNSWIndex(metric=metric, m=8, ef_construction=64, ef_search=max(64, 2 * k), seed=seed)
    index.build(points)
    indices = np.empty((n, k), dtype=np.intp)
    distances = np.empty((n, k), dtype=np.float64)
    for i in range(n):
        hits = [h for h in index.search(points[i], k + 1) if h.index != i][:k]
        while len(hits) < k:  # HNSW may return fewer on tiny graphs
            hits.append(hits[-1])
        indices[i] = [h.index for h in hits]
        # scores are similarities; convert back to distances
        if metric is Metric.EUCLIDEAN:
            distances[i] = [-h.score for h in hits]
        else:
            distances[i] = [1.0 - h.score for h in hits]
    order = np.argsort(distances, axis=1)
    return KNNGraph(
        indices=np.take_along_axis(indices, order, axis=1),
        distances=np.take_along_axis(distances, order, axis=1),
    )
