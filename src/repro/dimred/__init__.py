"""Dimensionality-reduction substrate: PCA and a from-scratch UMAP.

The CTS method (paper Sec 4.3) reduces value embeddings with UMAP
before clustering them with HDBSCAN; the paper also notes that the
k-nearest-neighbour computation UMAP needs was *precomputed* to speed
it up, which :class:`repro.dimred.knn_graph.KNNGraph` supports
explicitly.
"""

from repro.dimred.knn_graph import KNNGraph, build_knn_graph
from repro.dimred.pca import PCA
from repro.dimred.umap_ import UMAP

__all__ = ["KNNGraph", "PCA", "UMAP", "build_knn_graph"]
