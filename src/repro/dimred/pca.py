"""Principal component analysis via (truncated) SVD."""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import svds

from repro.errors import ConfigurationError, NotFittedError

__all__ = ["PCA"]


class PCA:
    """PCA with centering; exact SVD for small inputs, Lanczos otherwise.

    Parameters
    ----------
    n_components:
        Target dimensionality.
    seed:
        Seed for the Lanczos start vector when the truncated solver is
        used (keeps `transform` deterministic).

    Attributes
    ----------
    components_:
        ``(n_components, dim)`` principal axes after fit.
    explained_variance_ratio_:
        Fraction of total variance captured per component.
    """

    def __init__(self, n_components: int, seed: int = 0) -> None:
        if n_components < 1:
            raise ConfigurationError("n_components must be >= 1")
        self.n_components = n_components
        self.seed = seed
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, points: np.ndarray) -> "PCA":
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ConfigurationError("PCA expects a 2-D (n, dim) array")
        n, dim = points.shape
        k = min(self.n_components, dim, n)
        self.mean_ = points.mean(axis=0)
        centered = points - self.mean_
        total_var = float(np.sum(centered**2))
        # Lanczos needs k strictly below min(n, dim); fall back to full
        # SVD whenever the requested rank is close to full.
        if k < min(n, dim) - 1 and min(n, dim) > 10:
            v0 = np.random.default_rng(self.seed).standard_normal(min(n, dim))
            u, s, vt = svds(centered, k=k, v0=v0)
            order = np.argsort(s)[::-1]
            s, vt = s[order], vt[order]
        else:
            _, s, vt = np.linalg.svd(centered, full_matrices=False)
            s, vt = s[:k], vt[:k]
        self.components_ = vt
        if total_var > 0:
            self.explained_variance_ratio_ = (s**2) / total_var
        else:
            self.explained_variance_ratio_ = np.zeros_like(s)
        return self

    def transform(self, points: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise NotFittedError("PCA.transform called before fit")
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return (points - self.mean_) @ self.components_.T

    def fit_transform(self, points: np.ndarray) -> np.ndarray:
        return self.fit(points).transform(points)

    def inverse_transform(self, reduced: np.ndarray) -> np.ndarray:
        """Map reduced coordinates back to the original space."""
        if self.components_ is None or self.mean_ is None:
            raise NotFittedError("PCA.inverse_transform called before fit")
        reduced = np.atleast_2d(np.asarray(reduced, dtype=np.float64))
        return reduced @ self.components_ + self.mean_
