"""WS — WebTable System (Cafarella, Halevy & Khoussainova, 2009).

Hand-crafted query-table features combined with a linear regression
model: the traditional feature-engineering benchmark.  Its weakness —
the paper's reason for including it — is that pure lexical features
cannot bridge surface-form divergence (a query "COVID" never overlaps
a cell "Comirnaty").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod
from repro.baselines.features import FEATURE_NAMES, LexicalFeatureExtractor
from repro.baselines.linear import LinearRegression
from repro.core.results import RelationMatch

__all__ = ["WebTableSystem"]

# Sensible untrained weights: coverage features dominate, size features
# contribute mildly.  Used until fit() is called.
_DEFAULT_WEIGHTS = {
    "caption_overlap": 0.10,
    "caption_coverage": 0.30,
    "schema_overlap": 0.05,
    "schema_coverage": 0.15,
    "body_overlap": 0.05,
    "body_coverage": 0.20,
    "idf_body_overlap": 0.25,
    "caption_exact_phrase": 0.30,
    "log_rows": 0.01,
    "log_cols": 0.01,
    "numeric_fraction": 0.0,
    "query_length": 0.0,
}


class WebTableSystem(BaselineMethod):
    """Linear regression over hand-crafted lexical features."""

    name = "ws"

    def __init__(self, ridge: float = 1e-4) -> None:
        super().__init__()
        self.ridge = ridge
        self._extractor = LexicalFeatureExtractor()
        self._model: LinearRegression | None = None

    def _build(self) -> None:
        self._extractor.index(self.relations)

    # -- training ---------------------------------------------------------

    def fit(self, pairs: list[tuple[str, str, int]]) -> "WebTableSystem":
        """Train on (query, relation_id, grade) judgments."""
        row_of = {rid: i for i, rid in enumerate(self.relation_ids)}
        features: list[np.ndarray] = []
        targets: list[float] = []
        by_query: dict[str, np.ndarray] = {}
        for query, relation_id, grade in pairs:
            if relation_id not in row_of:
                continue
            if query not in by_query:
                by_query[query] = self._extractor.features(query)
            features.append(by_query[query][row_of[relation_id]])
            targets.append(float(grade))
        if features:
            self._model = LinearRegression(ridge=self.ridge).fit(
                np.vstack(features), np.asarray(targets)
            )
        return self

    @property
    def is_trained(self) -> bool:
        return self._model is not None

    # -- scoring ------------------------------------------------------------

    def _predict(self, features: np.ndarray) -> np.ndarray:
        if self._model is not None:
            return self._model.predict(features)
        weights = np.array([_DEFAULT_WEIGHTS[name] for name in FEATURE_NAMES])
        return features @ weights

    def _score_all(self, query: str) -> list[RelationMatch]:
        features = self._extractor.features(query)
        scores = self._predict(features)
        return [
            RelationMatch(relation_id=rid, score=float(score))
            for rid, score in zip(self.relation_ids, scores)
        ]
