"""The five baselines from the paper's evaluation (Sec 5, Base Methods).

* :class:`TableMeetsLLM` (TML) — simulated token-limited LLM matcher
  with SUC-style table serialization.
* :class:`TableContextualSearch` (TCS) — learning-to-rank over multiple
  semantic spaces with a random-forest regressor.
* :class:`AdHocTableRetrieval` (AdH) — BERT-style encoding of
  selector-extracted content under a hard token limit.
* :class:`MultiFieldDocumentRanking` (MDR) — mixture of Dirichlet-
  smoothed field language models.
* :class:`WebTableSystem` (WS) — hand-crafted features + linear
  regression.

Supporting substrates (CART/random forest, linear regression, language
models, feature extraction) live in their own modules because sklearn
is unavailable offline.
"""

from repro.baselines.adh import AdHocTableRetrieval
from repro.baselines.base import BaselineMethod
from repro.baselines.forest import DecisionTreeRegressor, RandomForestRegressor
from repro.baselines.langmodel import DirichletLanguageModel, FieldLanguageModels
from repro.baselines.linear import LinearRegression
from repro.baselines.mdr import MultiFieldDocumentRanking
from repro.baselines.tcs import TableContextualSearch
from repro.baselines.tml import TableMeetsLLM
from repro.baselines.ws import WebTableSystem

__all__ = [
    "AdHocTableRetrieval",
    "BaselineMethod",
    "DecisionTreeRegressor",
    "DirichletLanguageModel",
    "FieldLanguageModels",
    "LinearRegression",
    "MultiFieldDocumentRanking",
    "RandomForestRegressor",
    "TableContextualSearch",
    "TableMeetsLLM",
    "WebTableSystem",
]

#: Construction order used by experiment tables (paper's abbreviations).
BASELINE_NAMES = ("tml", "tcs", "adh", "mdr", "ws")


def make_baseline(name: str, **params) -> BaselineMethod:
    """Factory mapping the paper's abbreviation to a baseline instance."""
    classes = {
        "tml": TableMeetsLLM,
        "tcs": TableContextualSearch,
        "adh": AdHocTableRetrieval,
        "mdr": MultiFieldDocumentRanking,
        "ws": WebTableSystem,
    }
    try:
        cls = classes[name]
    except KeyError:
        raise ValueError(f"unknown baseline {name!r}; expected one of {BASELINE_NAMES}") from None
    return cls(**params)
