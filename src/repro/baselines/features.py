"""Hand-crafted query-table features for the WS and TCS baselines.

WS (Cafarella et al., 2009) ranks web tables with engineered features
and linear regression; TCS (Zhang & Balog, 2018) augments such features
with semantic-space similarities.  The extractor precomputes per-table
token statistics at index time so feature extraction at query time is
a cheap per-table loop.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.datamodel.relation import Relation
from repro.text.tokenize import Tokenizer, is_numeric_token
from repro.text.vocab import Vocabulary

__all__ = ["LexicalFeatureExtractor", "FEATURE_NAMES"]

FEATURE_NAMES = (
    "caption_overlap",
    "caption_coverage",
    "schema_overlap",
    "schema_coverage",
    "body_overlap",
    "body_coverage",
    "idf_body_overlap",
    "caption_exact_phrase",
    "log_rows",
    "log_cols",
    "numeric_fraction",
    "query_length",
)


@dataclass
class _TableStats:
    caption_tokens: set[str]
    schema_tokens: set[str]
    body_counts: Counter
    body_tokens: set[str]
    caption_text: str
    log_rows: float
    log_cols: float
    numeric_fraction: float


class LexicalFeatureExtractor:
    """Precomputed lexical statistics + per-query feature matrices."""

    def __init__(self) -> None:
        self._tokenizer = Tokenizer()
        self._stats: list[_TableStats] = []
        self._vocab = Vocabulary()

    # -- indexing -------------------------------------------------------

    def index(self, relations: list[Relation]) -> "LexicalFeatureExtractor":
        """Precompute token statistics for every relation."""
        self._stats = []
        self._vocab = Vocabulary()
        for relation in relations:
            caption_tokens = self._tokenizer.tokenize(relation.caption)
            schema_tokens = [
                t for name in relation.schema for t in self._tokenizer.tokenize(name)
            ]
            body_tokens: list[str] = []
            numeric = 0
            total = 0
            for value in relation.values():
                tokens = self._tokenizer.tokenize(value)
                body_tokens.extend(tokens)
                total += 1
                if tokens and all(is_numeric_token(t) for t in tokens):
                    numeric += 1
            self._vocab.add_document(body_tokens + caption_tokens + schema_tokens)
            self._stats.append(
                _TableStats(
                    caption_tokens=set(caption_tokens),
                    schema_tokens=set(schema_tokens),
                    body_counts=Counter(body_tokens),
                    body_tokens=set(body_tokens),
                    caption_text=" ".join(caption_tokens),
                    log_rows=float(np.log1p(relation.num_rows)),
                    log_cols=float(np.log1p(relation.num_columns)),
                    numeric_fraction=numeric / total if total else 0.0,
                )
            )
        return self

    @property
    def n_tables(self) -> int:
        return len(self._stats)

    @property
    def n_features(self) -> int:
        return len(FEATURE_NAMES)

    # -- extraction -------------------------------------------------------

    def features(self, query: str) -> np.ndarray:
        """Feature matrix ``(n_tables, n_features)`` for one query."""
        q_tokens = self._tokenizer.tokenize(query)
        q_set = set(q_tokens)
        q_len = max(len(q_set), 1)
        q_phrase = " ".join(q_tokens)
        idf = {t: self._vocab.idf(t) for t in q_set}
        total_idf = sum(idf.values()) or 1.0

        out = np.zeros((len(self._stats), len(FEATURE_NAMES)))
        for i, stats in enumerate(self._stats):
            cap = len(q_set & stats.caption_tokens)
            sch = len(q_set & stats.schema_tokens)
            body = len(q_set & stats.body_tokens)
            idf_body = sum(idf[t] for t in q_set if t in stats.body_tokens)
            out[i] = (
                cap,
                cap / q_len,
                sch,
                sch / q_len,
                body,
                body / q_len,
                idf_body / total_idf,
                1.0 if q_phrase and q_phrase in stats.caption_text else 0.0,
                stats.log_rows,
                stats.log_cols,
                stats.numeric_fraction,
                float(len(q_tokens)),
            )
        return out
