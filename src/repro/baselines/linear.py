"""Ordinary / ridge least-squares regression (sklearn substitute)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError

__all__ = ["LinearRegression"]


class LinearRegression:
    """Least-squares linear model with intercept and optional L2 penalty.

    Parameters
    ----------
    ridge:
        L2 regularization strength (0 = ordinary least squares).  A
        small ridge keeps weights finite when features are collinear,
        which hand-crafted overlap features frequently are.
    """

    def __init__(self, ridge: float = 1e-6) -> None:
        if ridge < 0:
            raise ConfigurationError("ridge must be >= 0")
        self.ridge = ridge
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearRegression":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64).ravel()
        if features.ndim != 2:
            raise ConfigurationError("features must be 2-D")
        if features.shape[0] != targets.shape[0]:
            raise ConfigurationError("features and targets row counts differ")
        n, d = features.shape
        augmented = np.hstack([features, np.ones((n, 1))])
        gram = augmented.T @ augmented
        if self.ridge > 0:
            penalty = self.ridge * np.eye(d + 1)
            penalty[-1, -1] = 0.0  # do not penalize the intercept
            gram = gram + penalty
        weights = np.linalg.solve(gram, augmented.T @ targets)
        self.coef_ = weights[:-1]
        self.intercept_ = float(weights[-1])
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.coef_ is None or self.intercept_ is None:
            raise NotFittedError("LinearRegression.predict called before fit")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return features @ self.coef_ + self.intercept_

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination R^2."""
        targets = np.asarray(targets, dtype=np.float64).ravel()
        predictions = self.predict(features)
        ss_res = float(np.sum((targets - predictions) ** 2))
        ss_tot = float(np.sum((targets - targets.mean()) ** 2))
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
