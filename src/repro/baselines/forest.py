"""CART regression trees and bagged random forests (sklearn substitute).

TCS ranks query-table pairs with a random-forest regressor over
similarity features (Zhang & Balog, 2018); this module provides that
model family from scratch: variance-reduction CART trees with feature
subsampling, bootstrap-aggregated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, NotFittedError

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor"]


@dataclass
class _Node:
    """A tree node: either a leaf (value) or an internal split."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "._Node | None" = None  # type: ignore[name-defined]
    right: "._Node | None" = None  # type: ignore[name-defined]

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """CART regression tree with variance-reduction splits.

    Parameters
    ----------
    max_depth:
        Depth limit.
    min_samples_split:
        Minimum samples required to attempt a split.
    min_samples_leaf:
        Minimum samples that must land on each side of a split.
    max_features:
        Features considered per split (None = all); random forests pass
        a subsample here.
    seed:
        Seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ConfigurationError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = max(min_samples_split, 2 * min_samples_leaf)
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64).ravel()
        if features.ndim != 2 or features.shape[0] != targets.shape[0]:
            raise ConfigurationError("features must be (n, d) aligned with targets")
        rng = np.random.default_rng(self.seed)
        self._root = self._grow(features, targets, depth=0, rng=rng)
        return self

    def _grow(
        self, x: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _Node:
        node = _Node(value=float(y.mean()))
        if (
            depth >= self.max_depth
            or y.shape[0] < self.min_samples_split
            or float(y.var()) <= 1e-12
        ):
            return node
        split = self._best_split(x, y, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, rng)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, rng)
        return node

    def _best_split(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float] | None:
        n, d = x.shape
        features = np.arange(d)
        if self.max_features is not None and self.max_features < d:
            features = rng.choice(d, size=self.max_features, replace=False)
        best_gain, best = 0.0, None
        parent_sse = float(np.sum((y - y.mean()) ** 2))
        for feature in features:
            order = np.argsort(x[:, feature], kind="stable")
            xs, ys = x[order, feature], y[order]
            # Cumulative sums give O(n) evaluation of all split points.
            csum = np.cumsum(ys)
            csum_sq = np.cumsum(ys**2)
            total, total_sq = csum[-1], csum_sq[-1]
            left_n = np.arange(1, n)
            right_n = n - left_n
            left_sse = csum_sq[:-1] - csum[:-1] ** 2 / left_n
            right_sum = total - csum[:-1]
            right_sse = (total_sq - csum_sq[:-1]) - right_sum**2 / right_n
            gains = parent_sse - (left_sse + right_sse)
            # Valid splits: enough samples each side, distinct x values.
            valid = (
                (left_n >= self.min_samples_leaf)
                & (right_n >= self.min_samples_leaf)
                & (np.diff(xs) > 1e-12)
            )
            if not np.any(valid):
                continue
            gains = np.where(valid, gains, -np.inf)
            idx = int(np.argmax(gains))
            if gains[idx] > best_gain:
                best_gain = float(gains[idx])
                best = (int(feature), float((xs[idx] + xs[idx + 1]) / 2.0))
        return best

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise NotFittedError("DecisionTreeRegressor.predict called before fit")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        out = np.empty(features.shape[0])
        for i, row in enumerate(features):
            node = self._root
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if self._root is None:
            raise NotFittedError("tree not fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)


class RandomForestRegressor:
    """Bootstrap-aggregated CART trees with feature subsampling."""

    def __init__(
        self,
        n_trees: int = 30,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_features: int | str | None = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise ConfigurationError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: list[DecisionTreeRegressor] = []

    def _resolve_max_features(self, d: int) -> int | None:
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if self.max_features is None:
            return None
        return int(self.max_features)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RandomForestRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64).ravel()
        n, d = features.shape
        rng = np.random.default_rng(self.seed)
        max_features = self._resolve_max_features(d)
        self._trees = []
        for t in range(self.n_trees):
            sample = rng.integers(0, n, size=n)  # bootstrap
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=self.seed * 1000 + t,
            )
            tree.fit(features[sample], targets[sample])
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise NotFittedError("RandomForestRegressor.predict called before fit")
        predictions = np.stack([tree.predict(features) for tree in self._trees])
        return predictions.mean(axis=0)

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees)
