"""TCS — Table Contextual Search (Zhang & Balog, 2018).

A learning-to-rank framework: queries and tables are mapped into
multiple semantic spaces, several similarity scores are computed per
query-table pair, and a random-forest regressor combines them with
traditional lexical features into a relevance score.

Semantic spaces here: the caption embedding, the schema embedding and
the table's body centroid (the early-fusion table-level semantic
representation of the original), concatenated with the WS lexical
features; the forest is trained on the 1,918-pair split, as in the
paper's experimental protocol.  Faithful to the 2018 original — which
predates sentence transformers and built its semantic spaces from
word2vec-class vectors — TCS embeds text with a word co-occurrence
model trained on the corpus itself (PPMI + SVD), not with the shared
sentence encoder the proposed methods use.  Its semantic features also
operate at *table* level, which is exactly the limitation the paper's
cell-level methods remove.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod
from repro.baselines.features import LexicalFeatureExtractor
from repro.baselines.forest import RandomForestRegressor
from repro.core.results import RelationMatch
from repro.embedding.cooccurrence import CooccurrenceEncoder
from repro.linalg.distances import normalize_rows

__all__ = ["TableContextualSearch"]

SEMANTIC_FEATURE_NAMES = (
    "caption_cosine",
    "schema_cosine",
    "body_centroid_cosine",
)


class TableContextualSearch(BaselineMethod):
    """Random forest over lexical + multi-space semantic features."""

    name = "tcs"

    def __init__(
        self,
        n_trees: int = 25,
        max_depth: int = 6,
        embedding_dim: int = 128,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.embedding_dim = embedding_dim
        self.seed = seed
        self._extractor = LexicalFeatureExtractor()
        self._forest: RandomForestRegressor | None = None
        self._word_encoder: CooccurrenceEncoder | None = None
        self._caption_vectors: np.ndarray | None = None
        self._schema_vectors: np.ndarray | None = None
        self._centroids: np.ndarray | None = None

    def _build(self) -> None:
        self._extractor.index(self.relations)
        # Word2vec-era semantic spaces: train co-occurrence embeddings
        # on the corpus text itself.
        documents = [
            " ".join([relation.caption, " ".join(relation.schema), self.body_text(relation)])
            for relation in self.relations
        ]
        self._word_encoder = CooccurrenceEncoder(
            dim=self.embedding_dim, seed=self.seed
        ).fit(documents)
        captions = [relation.caption for relation in self.relations]
        schemas = [" ".join(relation.schema) for relation in self.relations]
        bodies = [self.body_text(relation) for relation in self.relations]
        self._caption_vectors = self._word_encoder.encode(captions)
        self._schema_vectors = self._word_encoder.encode(schemas)
        self._centroids = normalize_rows(self._word_encoder.encode(bodies))

    # -- features ---------------------------------------------------------

    def _semantic_features(self, q: np.ndarray) -> np.ndarray:
        assert (
            self._caption_vectors is not None
            and self._schema_vectors is not None
            and self._centroids is not None
        )
        caption_cos = self._caption_vectors @ q
        schema_cos = self._schema_vectors @ q
        centroid_cos = self._centroids @ q
        return np.column_stack([caption_cos, schema_cos, centroid_cos])

    def _features(self, query: str) -> np.ndarray:
        assert self._word_encoder is not None
        lexical = self._extractor.features(query)
        q = self._word_encoder.encode_one(query)
        norm = np.linalg.norm(q)
        if norm > 0:
            q = q / norm
        semantic = self._semantic_features(q)
        return np.hstack([lexical, semantic])

    # -- training -----------------------------------------------------------

    def fit(self, pairs: list[tuple[str, str, int]]) -> "TableContextualSearch":
        """Train the forest on (query, relation_id, grade) judgments."""
        row_of = {rid: i for i, rid in enumerate(self.relation_ids)}
        by_query: dict[str, np.ndarray] = {}
        features: list[np.ndarray] = []
        targets: list[float] = []
        for query, relation_id, grade in pairs:
            if relation_id not in row_of:
                continue
            if query not in by_query:
                by_query[query] = self._features(query)
            features.append(by_query[query][row_of[relation_id]])
            targets.append(float(grade))
        if features:
            self._forest = RandomForestRegressor(
                n_trees=self.n_trees, max_depth=self.max_depth, seed=self.seed
            ).fit(np.vstack(features), np.asarray(targets))
        return self

    @property
    def is_trained(self) -> bool:
        return self._forest is not None

    # -- scoring -----------------------------------------------------------------

    def _score_all(self, query: str) -> list[RelationMatch]:
        features = self._features(query)
        if self._forest is not None:
            scores = self._forest.predict(features)
        else:
            # Untrained fallback: average the semantic-space cosines.
            scores = features[:, -len(SEMANTIC_FEATURE_NAMES) :].mean(axis=1)
        return [
            RelationMatch(relation_id=rid, score=float(score))
            for rid, score in zip(self.relation_ids, scores)
        ]
