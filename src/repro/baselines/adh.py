"""AdH — Ad-Hoc Table Retrieval with a deep contextualized LM (Chen et al., 2020).

The original encodes table content, structure and metadata with BERT
after running *content selectors* (row / column / salient-cell
extractors) and ranks by the model's relevance head.  The defining
limitation the paper leans on is BERT's input-length ceiling: content
beyond the token budget is truncated, so large tables lose evidence.

Here the shared sentence encoder plays BERT's role; the selectors and
the hard token budget are implemented literally, so the truncation
failure mode is mechanically identical.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod
from repro.core.results import RelationMatch
from repro.datamodel.relation import Relation
from repro.text.tokenize import Tokenizer
from repro.text.vocab import Vocabulary

__all__ = ["AdHocTableRetrieval"]


class AdHocTableRetrieval(BaselineMethod):
    """Selector-based table encoding under a hard token limit.

    Parameters
    ----------
    max_tokens:
        Token budget per encoded table input (BERT's 512, scaled to the
        corpus's table sizes).
    selectors:
        Which content selectors to run; each produces one encoded view
        and the final score is the best view's similarity.
    """

    name = "adh"

    SELECTORS = ("rows", "columns", "salient")

    def __init__(self, max_tokens: int = 16, selectors: tuple[str, ...] = SELECTORS) -> None:
        super().__init__()
        unknown = set(selectors) - set(self.SELECTORS)
        if unknown:
            raise ValueError(f"unknown selectors: {sorted(unknown)}")
        if max_tokens < 4:
            raise ValueError("max_tokens must be >= 4")
        self.max_tokens = max_tokens
        self.selectors = tuple(selectors)
        self._tokenizer = Tokenizer()
        self._view_vectors: np.ndarray | None = None  # (n_tables, n_views, dim)
        self.truncation_ratio_: list[float] = []

    # -- content selection ------------------------------------------------

    def _select_rows(self, relation: Relation) -> str:
        parts = [relation.caption, " ".join(relation.schema)]
        for row in relation:
            parts.append(" ".join(row.values))
        return " ".join(parts)

    def _select_columns(self, relation: Relation) -> str:
        parts = [relation.caption]
        for name in relation.schema:
            parts.append(name)
            parts.extend(relation.column(name))
        return " ".join(parts)

    def _select_salient(self, relation: Relation, vocab: Vocabulary) -> str:
        """Cells ranked by max token IDF (rarest content first)."""
        def salience(value: str) -> float:
            tokens = self._tokenizer.tokenize(value)
            return max((vocab.idf(t) for t in tokens), default=0.0)

        cells = sorted(set(relation.values()), key=salience, reverse=True)
        return " ".join([relation.caption] + cells)

    def _truncate(self, text: str) -> tuple[str, float]:
        """Apply the hard token budget; returns (kept text, kept ratio)."""
        tokens = self._tokenizer.tokenize(text)
        if not tokens:
            return "", 1.0
        kept = tokens[: self.max_tokens]
        return " ".join(kept), len(kept) / len(tokens)

    # -- indexing --------------------------------------------------------------

    def _build(self) -> None:
        vocab = Vocabulary()
        for relation in self.relations:
            vocab.add_document(self._tokenizer.tokenize(self.body_text(relation)))
        encoder = self.embeddings.encoder
        views: list[np.ndarray] = []
        self._view_texts: list[str] = []
        self.truncation_ratio_ = []
        for relation in self.relations:
            texts = []
            ratios = []
            for selector in self.selectors:
                if selector == "rows":
                    raw = self._select_rows(relation)
                elif selector == "columns":
                    raw = self._select_columns(relation)
                else:
                    raw = self._select_salient(relation, vocab)
                text, ratio = self._truncate(raw)
                texts.append(text)
                ratios.append(ratio)
            views.append(encoder.encode(texts))
            # the "rows" view doubles as the cross-encoding content
            self._view_texts.append(texts[0])
            self.truncation_ratio_.append(float(np.mean(ratios)))
        self._view_vectors = np.stack(views)  # (n, views, dim)

    # -- scoring ---------------------------------------------------------------

    def _score_all(self, query: str) -> list[RelationMatch]:
        assert self._view_vectors is not None
        # BERT-style rankers run a forward pass per (query, table)
        # pair at query time — that per-pair inference is what makes
        # them slow at corpus scale, and it cannot be cached across
        # queries.  The shared encoder plays BERT: each table's "rows"
        # view is re-encoded on every query (bypassing the engine's
        # caching layer); the offline-encoded selector views contribute
        # their max similarity as in the original's multi-selector
        # ensemble.
        encoder = self.embeddings.encoder
        raw_encoder = getattr(encoder, "delegate", encoder)
        fresh = raw_encoder.encode(self._view_texts)
        q = self.embeddings.encode_query(query)
        sims = self._view_vectors @ q  # (n, views)
        scores = np.maximum(sims.max(axis=1), fresh @ q)
        return [
            RelationMatch(
                relation_id=rid,
                score=float(score),
                details={"truncation_kept": self.truncation_ratio_[i]},
            )
            for i, (rid, score) in enumerate(zip(self.relation_ids, scores))
        ]
