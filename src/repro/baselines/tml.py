"""TML — Table Meets LLM (Sui et al., 2024), simulated.

The original serializes tables into an LLM prompt (the SUC benchmark's
format) and asks a token-limited model (GPT-4 in the paper) to judge
relevance.  Two mechanisms drive its behaviour in the paper's
evaluation, and both are simulated literally:

* **a fixed context window**: the corpus is processed in prompt
  batches; the larger the corpus, the smaller each table's share of
  the window, so more serialized content is truncated — quality
  degrades with corpus size (TML is competitive on SD, worst on LD);
* **per-query prompting cost**: the "LLM" must read every serialized
  token at query time, so latency grows with corpus size and query
  length.

The LLM's semantic judgment itself is played by the shared sentence
encoder over the truncated serializations — no pretrained LLM exists
offline (see DESIGN.md substitutions).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod
from repro.core.results import RelationMatch
from repro.datamodel.relation import Relation
from repro.text.tokenize import Tokenizer

__all__ = ["TableMeetsLLM"]


class TableMeetsLLM(BaselineMethod):
    """Simulated token-limited LLM table matcher.

    Parameters
    ----------
    context_window:
        Total "tokens" the simulated LLM can see per prompt batch.
    min_table_tokens / max_table_tokens:
        Bounds on each table's serialized share of the window.  The
        effective budget is ``clamp(context_window / n_tables)``, which
        is what makes quality corpus-size-dependent.
    """

    name = "tml"

    def __init__(
        self,
        context_window: int = 4096,
        min_table_tokens: int = 8,
        max_table_tokens: int = 128,
    ) -> None:
        super().__init__()
        if context_window < min_table_tokens:
            raise ValueError("context_window must fit at least one table share")
        if not 1 <= min_table_tokens <= max_table_tokens:
            raise ValueError("need 1 <= min_table_tokens <= max_table_tokens")
        self.context_window = context_window
        self.min_table_tokens = min_table_tokens
        self.max_table_tokens = max_table_tokens
        self._tokenizer = Tokenizer()
        self._serialized: list[list[str]] = []  # token lists, pre-truncation
        self._budget: int = max_table_tokens
        self.truncation_kept_: float = 1.0

    # -- serialization (SUC-style markdown) ----------------------------------

    @staticmethod
    def serialize(relation: Relation) -> str:
        """Markdown-ish serialization: caption, header row, data rows."""
        lines = [relation.caption, "| " + " | ".join(relation.schema) + " |"]
        lines.extend("| " + " | ".join(row.values) + " |" for row in relation)
        return "\n".join(lines)

    def _build(self) -> None:
        self._serialized = [
            self._tokenizer.tokenize(self.serialize(relation))
            for relation in self.relations
        ]
        n_tables = max(len(self._serialized), 1)
        self._budget = int(
            np.clip(self.context_window // n_tables, self.min_table_tokens, self.max_table_tokens)
        )
        kept = [
            min(len(tokens), self._budget) / len(tokens)
            for tokens in self._serialized
            if tokens
        ]
        self.truncation_kept_ = float(np.mean(kept)) if kept else 1.0

    @property
    def table_token_budget(self) -> int:
        """Tokens each table gets inside the context window."""
        return self._budget

    # -- query-time "prompting" ------------------------------------------------

    def _score_all(self, query: str) -> list[RelationMatch]:
        """One simulated prompt pass: the query plus each table's
        truncated serialized share are judged jointly by the encoder.
        """
        encoder = self.embeddings.encoder
        # A real LLM re-reads every prompt on every query — no cache
        # can absorb the inference cost of a prompt-based ranker, so
        # the serialized share is re-encoded per query (bypassing the
        # engine's caching layer).
        raw_encoder = getattr(encoder, "delegate", encoder)
        q = self.embeddings.encode_query(query)
        matches = []
        for rid, tokens in zip(self.relation_ids, self._serialized):
            visible = " ".join(tokens[: self._budget])
            vector = raw_encoder.encode_one(visible)
            matches.append(
                RelationMatch(
                    relation_id=rid,
                    score=float(vector @ q),
                    details={"budget": self._budget},
                )
            )
        return matches
