"""Dirichlet-smoothed unigram language models for field-based ranking.

MDR scores each table field (page title, caption, schema, body...) with
its own query-likelihood language model and mixes the per-field scores.
This module provides the per-field LM machinery.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

from repro.errors import ConfigurationError, NotFittedError
from repro.text.tokenize import Tokenizer

__all__ = ["DirichletLanguageModel", "FieldLanguageModels"]


class DirichletLanguageModel:
    """Query-likelihood scoring with Dirichlet prior smoothing.

    ``log P(q|d) = sum_t log((tf(t,d) + mu * P(t|C)) / (|d| + mu))``
    where ``P(t|C)`` is the collection model.  Unseen-everywhere terms
    fall back to a uniform floor over the vocabulary.
    """

    def __init__(self, mu: float = 250.0) -> None:
        if mu <= 0:
            raise ConfigurationError("mu must be > 0")
        self.mu = mu
        self._doc_tf: list[Counter[str]] = []
        self._doc_len: list[int] = []
        self._collection_tf: Counter[str] = Counter()
        self._collection_len = 0
        self._tokenizer = Tokenizer()

    def fit(self, documents: Sequence[str]) -> "DirichletLanguageModel":
        """Index one document per input string."""
        self._doc_tf = []
        self._doc_len = []
        self._collection_tf = Counter()
        for doc in documents:
            tokens = self._tokenizer.tokenize(doc)
            tf = Counter(tokens)
            self._doc_tf.append(tf)
            self._doc_len.append(len(tokens))
            self._collection_tf.update(tf)
        self._collection_len = sum(self._doc_len)
        return self

    @property
    def n_documents(self) -> int:
        return len(self._doc_tf)

    def _collection_prob(self, token: str) -> float:
        if self._collection_len == 0:
            return 1e-9
        count = self._collection_tf.get(token, 0)
        if count == 0:
            # uniform floor for completely unseen terms
            return 0.5 / (self._collection_len + len(self._collection_tf) + 1)
        return count / self._collection_len

    def score(self, query: str, doc_id: int) -> float:
        """log P(query | document ``doc_id``)."""
        if not self._doc_tf:
            raise NotFittedError("DirichletLanguageModel.score called before fit")
        tokens = self._tokenizer.tokenize(query)
        if not tokens:
            return 0.0
        tf = self._doc_tf[doc_id]
        length = self._doc_len[doc_id]
        total = 0.0
        for token in tokens:
            prob = (tf.get(token, 0) + self.mu * self._collection_prob(token)) / (
                length + self.mu
            )
            total += math.log(prob)
        return total

    def score_all(self, query: str) -> list[float]:
        """log P(query | d) for every indexed document."""
        return [self.score(query, i) for i in range(self.n_documents)]


class FieldLanguageModels:
    """One Dirichlet LM per named field, mixed with field weights.

    ``score(q, d) = sum_f w_f * logP_f(q | d_f)``; weights default to
    uniform and can be tuned on training qrels (see
    :meth:`repro.baselines.mdr.MultiFieldDocumentRanking.fit`).
    """

    def __init__(self, field_names: Sequence[str], mu: float = 250.0) -> None:
        if not field_names:
            raise ConfigurationError("need at least one field")
        self.field_names = tuple(field_names)
        self.mu = mu
        self._models: dict[str, DirichletLanguageModel] = {}
        self.weights: dict[str, float] = {name: 1.0 / len(field_names) for name in field_names}

    def fit(self, field_documents: dict[str, Sequence[str]]) -> "FieldLanguageModels":
        """Index per-field document collections (aligned row-wise)."""
        missing = set(self.field_names) - set(field_documents)
        if missing:
            raise ConfigurationError(f"missing field collections: {sorted(missing)}")
        lengths = {len(field_documents[name]) for name in self.field_names}
        if len(lengths) != 1:
            raise ConfigurationError("all field collections must have equal length")
        for name in self.field_names:
            self._models[name] = DirichletLanguageModel(self.mu).fit(field_documents[name])
        return self

    @property
    def n_documents(self) -> int:
        if not self._models:
            return 0
        return next(iter(self._models.values())).n_documents

    def set_weights(self, weights: dict[str, float]) -> None:
        """Replace the field mixing weights (normalized to sum 1)."""
        total = sum(max(w, 0.0) for w in weights.values())
        if total <= 0:
            raise ConfigurationError("weights must have positive mass")
        self.weights = {
            name: max(weights.get(name, 0.0), 0.0) / total for name in self.field_names
        }

    def score_all(self, query: str) -> list[float]:
        """Mixed field score for every document."""
        if not self._models:
            raise NotFittedError("FieldLanguageModels.score_all called before fit")
        totals = [0.0] * self.n_documents
        for name in self.field_names:
            weight = self.weights[name]
            if weight == 0.0:
                continue
            for i, s in enumerate(self._models[name].score_all(query)):
                totals[i] += weight * s
        return totals
