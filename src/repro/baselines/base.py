"""Common machinery for the baseline table-retrieval methods.

Baselines rank whole tables from their *text fields* (captions,
schemas, bodies, metadata), unlike the paper's methods which match at
the value-vector level.  They therefore need the federation itself, not
just its embeddings — :meth:`BaselineMethod.index_federation` provides
both (some baselines also embed text with the shared encoder).
"""

from __future__ import annotations

import abc

from repro.core.base import SearchMethod
from repro.core.semimg import FederationEmbeddings
from repro.datamodel.relation import Federation, Relation
from repro.errors import NotFittedError

__all__ = ["BaselineMethod"]


class BaselineMethod(SearchMethod):
    """A baseline ranker over a federation's relations.

    Lifecycle: ``index_federation(federation, embeddings)`` then
    ``search(query, k, h)``.  Trainable baselines additionally expose
    ``fit(train_queries, qrels)`` which must be called after indexing.
    """

    def __init__(self) -> None:
        super().__init__()
        self._federation: Federation | None = None
        self._relation_ids: list[str] = []
        self._relations: list[Relation] = []

    @property
    def federation(self) -> Federation:
        if self._federation is None:
            raise NotFittedError(f"{type(self).__name__} used before index_federation()")
        return self._federation

    def index_federation(
        self, federation: Federation, embeddings: FederationEmbeddings
    ) -> "BaselineMethod":
        """Index both the raw federation and its shared embeddings."""
        self._federation = federation
        self._relation_ids = []
        self._relations = []
        for relation_id, relation in federation.relations():
            self._relation_ids.append(relation_id)
            self._relations.append(relation)
        return self.index(embeddings)  # type: ignore[return-value]

    @property
    def relation_ids(self) -> list[str]:
        return list(self._relation_ids)

    @property
    def relations(self) -> list[Relation]:
        return list(self._relations)

    def search(self, query: str, k: int = 10, h: float = float("-inf")):
        """Answer a query; baselines default to no score threshold.

        Baseline scores live on model-specific scales (log-likelihoods,
        regression outputs), so the cosine threshold ``h`` of the
        paper's methods does not transfer; the default disables it.
        """
        _ = self.federation  # raises NotFittedError before index_federation()
        return super().search(query, k=k, h=h)

    @staticmethod
    def body_text(relation: Relation, max_cells: int | None = None) -> str:
        """Concatenated cell text of a relation (optionally capped)."""
        values = relation.values()
        if max_cells is not None:
            values = values[:max_cells]
        return " ".join(values)

    @abc.abstractmethod
    def _build(self) -> None:
        """Build baseline-specific structures over the indexed federation."""
