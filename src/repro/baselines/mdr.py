"""MDR — Multi-field Document Ranking (Pimplikar & Sarawagi, 2012).

Tables are treated as structured documents; each field (caption,
schema, body, plus any metadata fields such as page/section titles) is
scored by its own Dirichlet-smoothed language model, and the per-field
scores are combined with learned mixture weights.  The paper tunes the
multi-field weights on the 1,918-pair training split; :meth:`fit`
replicates that with a seeded random-simplex search maximizing MAP.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.baselines.base import BaselineMethod
from repro.baselines.langmodel import FieldLanguageModels
from repro.core.results import RelationMatch
from repro.eval.metrics import average_precision

__all__ = ["MultiFieldDocumentRanking"]

_CORE_FIELDS = ("caption", "schema", "body")


class MultiFieldDocumentRanking(BaselineMethod):
    """Mixture of per-field query-likelihood language models.

    Parameters
    ----------
    mu:
        Dirichlet smoothing parameter shared by all field models.
    n_weight_samples:
        Random simplex candidates evaluated by :meth:`fit`.
    seed:
        Seed for weight sampling.
    """

    name = "mdr"

    def __init__(self, mu: float = 250.0, n_weight_samples: int = 40, seed: int = 0) -> None:
        super().__init__()
        self.mu = mu
        self.n_weight_samples = n_weight_samples
        self.seed = seed
        self._models: FieldLanguageModels | None = None
        self._field_names: tuple[str, ...] = _CORE_FIELDS

    def _build(self) -> None:
        metadata_fields = sorted(
            {key for relation in self.relations for key in relation.metadata}
        )
        self._field_names = _CORE_FIELDS + tuple(metadata_fields)
        field_documents: dict[str, list[str]] = {name: [] for name in self._field_names}
        for relation in self.relations:
            field_documents["caption"].append(relation.caption)
            field_documents["schema"].append(" ".join(relation.schema))
            field_documents["body"].append(self.body_text(relation))
            for name in metadata_fields:
                field_documents[name].append(relation.metadata.get(name, ""))
        self._models = FieldLanguageModels(self._field_names, mu=self.mu)
        self._models.fit(field_documents)

    # -- training --------------------------------------------------------

    def fit(self, pairs: list[tuple[str, str, int]]) -> "MultiFieldDocumentRanking":
        """Tune field weights to maximize MAP on training judgments."""
        assert self._models is not None
        qrels: dict[str, dict[str, int]] = defaultdict(dict)
        for query, relation_id, grade in pairs:
            qrels[query][relation_id] = grade
        queries = sorted(qrels)
        if not queries:
            return self

        rng = np.random.default_rng(self.seed)
        n_fields = len(self._field_names)
        candidates = [np.full(n_fields, 1.0 / n_fields)]
        candidates.extend(rng.dirichlet(np.ones(n_fields)) for _ in range(self.n_weight_samples))

        # Per-field scores are query-dependent but weight-independent,
        # so compute them once per query and re-mix per candidate.
        per_field_scores: dict[str, np.ndarray] = {}
        for query in queries:
            rows = []
            for name in self._field_names:
                self._models.set_weights({name: 1.0})
                rows.append(self._models.score_all(query))
            per_field_scores[query] = np.asarray(rows)  # (fields, tables)

        best_map, best = -1.0, candidates[0]
        for weights in candidates:
            total_ap = 0.0
            for query in queries:
                mixed = weights @ per_field_scores[query]
                order = np.argsort(-mixed, kind="stable")
                ranking = [self.relation_ids[i] for i in order]
                total_ap += average_precision(ranking, qrels[query])
            mean_ap = total_ap / len(queries)
            if mean_ap > best_map:
                best_map, best = mean_ap, weights
        self._models.set_weights(dict(zip(self._field_names, best)))
        return self

    @property
    def field_weights(self) -> dict[str, float]:
        assert self._models is not None
        return dict(self._models.weights)

    # -- scoring --------------------------------------------------------------

    def _score_all(self, query: str) -> list[RelationMatch]:
        assert self._models is not None
        scores = self._models.score_all(query)
        return [
            RelationMatch(relation_id=rid, score=float(score))
            for rid, score in zip(self.relation_ids, scores)
        ]
