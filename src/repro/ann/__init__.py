"""Approximate nearest-neighbour substrate: brute force, HNSW, PQ, IVF.

These are from-scratch implementations of the components the paper uses
through Qdrant/FAISS: the HNSW proximity-graph index (Malkov & Yashunin,
2018) and Product Quantization (Jégou, Douze & Schmid, 2011), plus a
brute-force reference and an IVF-Flat extension.
"""

from repro.ann.base import VectorIndex
from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HNSWIndex
from repro.ann.ivf import IVFFlatIndex
from repro.ann.pq import PQIndex, ProductQuantizer

__all__ = [
    "BruteForceIndex",
    "HNSWIndex",
    "IVFFlatIndex",
    "PQIndex",
    "ProductQuantizer",
    "VectorIndex",
]
