"""Product Quantization (Jégou, Douze & Schmid, 2011).

The paper compresses value embeddings with PQ before indexing them in
the vector database (Sec 4.2): each vector is split into ``m``
subvectors, each subvector is quantized to its nearest centroid in a
per-subspace codebook, and queries are scored against the compressed
codes with asymmetric distance computation (ADC) — one lookup table per
subspace, one table lookup per code byte.
"""

# repro-lint: disable-file=RL003 -- PQ trains, reconstructs and scores in float64 by design; codes are uint8
from __future__ import annotations

import numpy as np

from repro.ann.base import SearchHit, VectorIndex
from repro.errors import ConfigurationError, DimensionMismatchError, NotFittedError
from repro.linalg.distances import Metric, normalize_rows
from repro.linalg.kmeans import KMeans
from repro.linalg.topk import top_k_indices_rowwise

__all__ = ["ProductQuantizer", "PQIndex"]


class ProductQuantizer:
    """Trainable product quantizer with ADC scoring.

    Parameters
    ----------
    n_subvectors:
        Number of subspaces ``m``; must divide the vector dimension.
    n_centroids:
        Codebook size per subspace (<= 256 so codes fit in uint8).
    kmeans_iters / seed:
        Codebook training controls.
    """

    def __init__(
        self,
        n_subvectors: int = 8,
        n_centroids: int = 256,
        kmeans_iters: int = 25,
        seed: int = 0,
    ) -> None:
        if n_subvectors < 1:
            raise ConfigurationError("n_subvectors must be >= 1")
        if not 2 <= n_centroids <= 256:
            raise ConfigurationError("n_centroids must be in [2, 256] (uint8 codes)")
        self.n_subvectors = n_subvectors
        self.n_centroids = n_centroids
        self.kmeans_iters = kmeans_iters
        self.seed = seed
        self.codebooks_: np.ndarray | None = None  # (m, k, sub_dim)
        self._sub_dim: int | None = None

    # -- training -------------------------------------------------------

    def fit(self, vectors: np.ndarray) -> "ProductQuantizer":
        """Learn per-subspace codebooks from training vectors."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ConfigurationError("fit expects a 2-D (n, dim) array")
        n, dim = vectors.shape
        if dim % self.n_subvectors != 0:
            raise ConfigurationError(
                f"dim {dim} not divisible by n_subvectors {self.n_subvectors}"
            )
        self._sub_dim = dim // self.n_subvectors
        k = min(self.n_centroids, n)
        codebooks = np.zeros((self.n_subvectors, k, self._sub_dim))
        for m in range(self.n_subvectors):
            sub = vectors[:, m * self._sub_dim : (m + 1) * self._sub_dim]
            km = KMeans(n_clusters=k, max_iter=self.kmeans_iters, seed=self.seed + m)
            km.fit(sub)
            assert km.centroids_ is not None
            codebooks[m, : km.centroids_.shape[0]] = km.centroids_
        self.codebooks_ = codebooks
        return self

    @property
    def is_fitted(self) -> bool:
        return self.codebooks_ is not None

    def _require_fitted(self) -> np.ndarray:
        if self.codebooks_ is None:
            raise NotFittedError("ProductQuantizer used before fit")
        return self.codebooks_

    def _check_dim(self, dim: int) -> None:
        assert self._sub_dim is not None
        expected = self._sub_dim * self.n_subvectors
        if dim != expected:
            raise DimensionMismatchError(f"expected dim {expected}, got {dim}")

    # -- encode / decode --------------------------------------------------

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize vectors to uint8 codes of shape ``(n, m)``."""
        codebooks = self._require_fitted()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        self._check_dim(vectors.shape[1])
        assert self._sub_dim is not None
        n = vectors.shape[0]
        codes = np.zeros((n, self.n_subvectors), dtype=np.uint8)
        for m in range(self.n_subvectors):
            sub = vectors[:, m * self._sub_dim : (m + 1) * self._sub_dim]
            # (n, k) squared distances to this subspace's centroids
            d2 = (
                np.sum(sub**2, axis=1)[:, np.newaxis]
                - 2.0 * sub @ codebooks[m].T
                + np.sum(codebooks[m] ** 2, axis=1)[np.newaxis, :]
            )
            codes[:, m] = np.argmin(d2, axis=1).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        codebooks = self._require_fitted()
        codes = np.atleast_2d(np.asarray(codes))
        assert self._sub_dim is not None
        n = codes.shape[0]
        out = np.zeros((n, self._sub_dim * self.n_subvectors))
        for m in range(self.n_subvectors):
            out[:, m * self._sub_dim : (m + 1) * self._sub_dim] = codebooks[m][codes[:, m]]
        return out

    # -- ADC scoring -------------------------------------------------------

    def _query_block(self, queries: np.ndarray) -> np.ndarray:
        """Queries as a float64 ``(Q, m, sub_dim)`` subspace tensor."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        self._check_dim(queries.shape[1])
        assert self._sub_dim is not None
        return queries.reshape(queries.shape[0], self.n_subvectors, self._sub_dim)

    def adc_inner_product_tables(self, queries: np.ndarray) -> np.ndarray:
        """Inner-product lookup tables for a query block: ``(Q, m, k)``.

        One einsum builds every query's per-subspace table at once —
        the batched-ADC kernel that lets a whole query block score the
        code matrix without re-probing per query.
        """
        codebooks = self._require_fitted()
        return np.einsum("mkd,qmd->qmk", codebooks, self._query_block(queries))

    def adc_l2_tables(self, queries: np.ndarray) -> np.ndarray:
        """Squared-L2 lookup tables for a query block: ``(Q, m, k)``.

        Uses the expanded ``||q-c||² = ||q||² - 2<q,c> + ||c||²`` form
        so the cross term is one einsum; round-off can leave tiny
        negatives, which ADC consumers clip before any sqrt.
        """
        codebooks = self._require_fitted()
        q = self._query_block(queries)
        cross = np.einsum("mkd,qmd->qmk", codebooks, q)
        q_sq = np.einsum("qmd,qmd->qm", q, q)
        c_sq = np.einsum("mkd,mkd->mk", codebooks, codebooks)
        return q_sq[:, :, np.newaxis] - 2.0 * cross + c_sq[np.newaxis, :, :]

    def adc_inner_product_table(self, query: np.ndarray) -> np.ndarray:
        """Per-subspace inner-product lookup table of shape ``(m, k)``.

        Delegates to the batched kernel with ``Q=1`` so single-query
        and batched serving produce bitwise-identical tables.
        """
        return self.adc_inner_product_tables(
            np.asarray(query, dtype=np.float64).ravel()
        )[0]

    def adc_l2_table(self, query: np.ndarray) -> np.ndarray:
        """Per-subspace squared-L2 lookup table of shape ``(m, k)``."""
        return self.adc_l2_tables(np.asarray(query, dtype=np.float64).ravel())[0]

    @staticmethod
    def adc_scores(table: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Sum table lookups over subspaces for every code row."""
        codes = np.atleast_2d(np.asarray(codes))
        m = codes.shape[1]
        return table[np.arange(m)[np.newaxis, :], codes].sum(axis=1)

    @staticmethod
    def adc_scores_batch(tables: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """ADC scores of every code row under every query: ``(Q, n)``.

        ``tables`` is the ``(Q, m, k)`` output of the batched table
        builders.  The gather runs over all queries at once; summation
        order over subspaces matches :meth:`adc_scores`, so row ``q``
        is bitwise identical to scoring with ``tables[q]`` alone.
        """
        codes = np.atleast_2d(np.asarray(codes))
        m = codes.shape[1]
        return tables[:, np.arange(m)[np.newaxis, :], codes].sum(axis=2)

    def compression_ratio(self, dim: int) -> float:
        """Bytes saved: float64 vector bytes over code bytes."""
        return (dim * 8) / self.n_subvectors


class PQIndex(VectorIndex):
    """Flat scan over PQ codes with ADC scoring.

    This is the "PQ without a graph" configuration: memory shrinks by
    ``compression_ratio`` and scoring costs one table build plus an
    ``(n, m)`` gather per query.  The ANNS method combines this encoder
    with HNSW (see :class:`repro.vectordb.index.HNSWPQIndex`).
    """

    def __init__(
        self,
        metric: Metric = Metric.COSINE,
        n_subvectors: int = 8,
        n_centroids: int = 256,
        seed: int = 0,
    ) -> None:
        super().__init__(metric)
        self.quantizer = ProductQuantizer(n_subvectors, n_centroids, seed=seed)
        self._codes = np.empty((0, n_subvectors), dtype=np.uint8)

    @property
    def size(self) -> int:
        return self._codes.shape[0]

    @property
    def nbytes(self) -> int:
        codebooks = self.quantizer.codebooks_
        return int(self._codes.nbytes) + (
            int(codebooks.nbytes) if codebooks is not None else 0
        )

    def build(self, vectors: np.ndarray) -> "PQIndex":
        vectors = self._validate_build(vectors)
        if self.metric is Metric.COSINE:
            vectors = normalize_rows(vectors)
        self.quantizer.fit(vectors)
        self._codes = self.quantizer.encode(vectors)
        return self

    def search(self, query: np.ndarray, k: int) -> list[SearchHit]:
        # Delegate through the batched kernel with Q=1: sequential and
        # batched serving share every arithmetic step bit for bit.
        return self.search_batch(self._validate_query(query)[np.newaxis, :], k)[0]

    def search_batch(self, queries: np.ndarray, k: int) -> list[list[SearchHit]]:
        """Batched ADC: one einsum builds all lookup tables, one gather
        scores every code row under every query."""
        queries = self._validate_query_block(queries)
        if self.metric is Metric.COSINE:
            queries = normalize_rows(queries)
        if self.metric is Metric.EUCLIDEAN:
            tables = self.quantizer.adc_l2_tables(queries)
            scores = -np.sqrt(
                np.clip(self.quantizer.adc_scores_batch(tables, self._codes), 0, None)
            )
        else:
            tables = self.quantizer.adc_inner_product_tables(queries)
            scores = self.quantizer.adc_scores_batch(tables, self._codes)
        best = top_k_indices_rowwise(scores, k)
        return [
            [SearchHit(int(i), float(scores[q, i])) for i in best[q]]
            for q in range(scores.shape[0])
        ]
