"""IVF-Flat: inverted-file index with coarse k-means partitioning.

An extension beyond the paper's HNSW/PQ pair, included as an ablation
point: queries probe only the ``n_probe`` nearest coarse cells, trading
recall for speed the same way FAISS's IVF indexes do.
"""

from __future__ import annotations

import numpy as np

from repro.ann.base import SearchHit, VectorIndex
from repro.errors import ConfigurationError
from repro.linalg.distances import Metric, normalize_rows, pairwise_similarity
from repro.linalg.kmeans import KMeans
from repro.linalg.topk import top_k_indices

__all__ = ["IVFFlatIndex"]


class IVFFlatIndex(VectorIndex):
    """Inverted-file index over k-means cells with exact in-cell scan.

    Parameters
    ----------
    n_cells:
        Number of coarse partitions (k-means centroids).
    n_probe:
        Number of nearest cells scanned per query.
    """

    def __init__(
        self,
        metric: Metric = Metric.COSINE,
        n_cells: int = 16,
        n_probe: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__(metric)
        if n_cells < 1:
            raise ConfigurationError("n_cells must be >= 1")
        if n_probe < 1:
            raise ConfigurationError("n_probe must be >= 1")
        self.n_cells = n_cells
        self.n_probe = n_probe
        self.seed = seed
        # repro-lint: disable=RL003 -- pre-build placeholders; build() adopts the input dtype
        self._vectors = np.empty((0, 0), dtype=np.float64)
        # repro-lint: disable=RL003 -- pre-build placeholder; build() adopts the input dtype
        self._centroids = np.empty((0, 0), dtype=np.float64)
        self._cells: list[np.ndarray] = []

    @property
    def size(self) -> int:
        return self._vectors.shape[0]

    @property
    def nbytes(self) -> int:
        return int(self._vectors.nbytes) + int(self._centroids.nbytes)

    def build(self, vectors: np.ndarray) -> "IVFFlatIndex":
        vectors = self._validate_build(vectors)
        if self.metric is Metric.COSINE:
            vectors = normalize_rows(vectors)
        self._vectors = vectors
        k = min(self.n_cells, vectors.shape[0])
        km = KMeans(n_clusters=k, seed=self.seed).fit(vectors)
        assert km.centroids_ is not None and km.labels_ is not None
        self._centroids = km.centroids_
        self._cells = [np.flatnonzero(km.labels_ == j) for j in range(k)]
        return self

    def search(self, query: np.ndarray, k: int) -> list[SearchHit]:
        query = self._validate_query(query)
        if self.metric is Metric.COSINE:
            query = normalize_rows(query)
        cell_scores = pairwise_similarity(query, self._centroids, self.metric)[0]
        probes = top_k_indices(cell_scores, min(self.n_probe, len(self._cells)))
        member_ids = np.concatenate([self._cells[int(c)] for c in probes]) if len(probes) else np.empty(0, dtype=np.intp)
        if member_ids.size == 0:
            return []
        scores = pairwise_similarity(query, self._vectors[member_ids], self.metric)[0]
        best = top_k_indices(scores, k)
        return [SearchHit(int(member_ids[i]), float(scores[i])) for i in best]
