"""Exact k-NN by full scan — the reference every ANN index is tested against."""

from __future__ import annotations

import numpy as np

from repro.ann.base import SearchHit, VectorIndex
from repro.linalg.distances import Metric, normalize_rows, pairwise_similarity
from repro.linalg.topk import top_k_indices, top_k_indices_rowwise

__all__ = ["BruteForceIndex"]


class BruteForceIndex(VectorIndex):
    """Exact nearest-neighbour search via a vectorized full scan.

    For cosine similarity the stored matrix is pre-normalized so each
    query costs one matrix-vector product.
    """

    def __init__(self, metric: Metric = Metric.COSINE) -> None:
        super().__init__(metric)
        # repro-lint: disable=RL003 -- pre-build placeholder; build() adopts the input dtype
        self._vectors = np.empty((0, 0), dtype=np.float64)

    @property
    def size(self) -> int:
        return self._vectors.shape[0]

    @property
    def nbytes(self) -> int:
        return int(self._vectors.nbytes)

    def build(self, vectors: np.ndarray) -> "BruteForceIndex":
        vectors = self._validate_build(vectors)
        if self.metric is Metric.COSINE:
            vectors = normalize_rows(vectors)
        self._vectors = vectors
        return self

    def search(self, query: np.ndarray, k: int) -> list[SearchHit]:
        query = self._validate_query(query)
        if self.metric is Metric.COSINE:
            scores = normalize_rows(query) @ self._vectors.T
        else:
            scores = pairwise_similarity(query, self._vectors, self.metric)[0]
        best = top_k_indices(scores, k)
        return [SearchHit(int(i), float(scores[i])) for i in best]

    def search_batch(self, queries: np.ndarray, k: int) -> list[list[SearchHit]]:
        """Exact k-NN for a batch of queries (one matrix product)."""
        queries = self._validate_query_block(queries)
        if self.metric is Metric.COSINE:
            # Stored rows are unit vectors; skip re-normalizing them.
            scores = normalize_rows(queries) @ self._vectors.T
        else:
            scores = pairwise_similarity(queries, self._vectors, self.metric)
        best = top_k_indices_rowwise(scores, k)
        return [
            [SearchHit(int(i), float(scores[q, i])) for i in best[q]]
            for q in range(scores.shape[0])
        ]
