"""Hierarchical Navigable Small World graphs (Malkov & Yashunin, 2018).

A from-scratch HNSW index:

* multi-layer proximity graph; the top layer of each element is drawn
  from an exponentially decaying distribution (paper Sec 4.2: "the
  maximum layer in which an element is present is selected randomly
  with an exponentially decaying probability distribution");
* greedy descent through upper layers, beam (``ef``) search at the
  target layer;
* the heuristic neighbour-selection rule (Algorithm 4 of the HNSW
  paper) that keeps graphs navigable in clustered data.

Distances to candidate neighbourhoods are evaluated in vectorized numpy
batches, which keeps the pure-Python implementation usable at the
corpus sizes of the experiments.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.ann.base import SearchHit, VectorIndex
from repro.errors import ConfigurationError
from repro.linalg.distances import Metric, normalize_rows

__all__ = ["HNSWIndex"]


class HNSWIndex(VectorIndex):
    """HNSW approximate nearest-neighbour index.

    Parameters
    ----------
    metric:
        Similarity metric; cosine (the paper's choice) pre-normalizes
        stored vectors.
    m:
        Target out-degree per node on upper layers (layer 0 allows 2m).
    ef_construction:
        Beam width while inserting; larger builds better graphs slower.
    ef_search:
        Default beam width at query time (overridable per query).
    seed:
        Seed for level sampling, making index construction
        deterministic.
    """

    def __init__(
        self,
        metric: Metric = Metric.COSINE,
        m: int = 16,
        ef_construction: int = 100,
        ef_search: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__(metric)
        if m < 2:
            raise ConfigurationError("m must be >= 2")
        if ef_construction < m:
            raise ConfigurationError("ef_construction must be >= m")
        if ef_search < 1:
            raise ConfigurationError("ef_search must be >= 1")
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.seed = seed
        self._level_mult = 1.0 / math.log(m)
        # repro-lint: disable=RL003 -- pre-build placeholder; build() adopts the input dtype
        self._vectors = np.empty((0, 0), dtype=np.float64)
        # _graph[node][layer] -> list of neighbour ids
        self._graph: list[list[list[int]]] = []
        self._entry_point: int | None = None
        self._max_layer = -1
        self._rng = np.random.default_rng(seed)

    # -- distances ------------------------------------------------------

    def _prepare(self, vectors: np.ndarray) -> np.ndarray:
        if self.metric is Metric.COSINE:
            return normalize_rows(vectors)
        return vectors

    def _dist(self, query: np.ndarray, ids: list[int] | np.ndarray) -> np.ndarray:
        """Distances (smaller = closer) from query to the given rows."""
        rows = self._vectors[np.asarray(ids, dtype=np.intp)]
        if self.metric is Metric.EUCLIDEAN:
            return np.linalg.norm(rows - query, axis=1)
        # cosine vectors are pre-normalized, so dot == cosine similarity
        return 1.0 - rows @ query

    def _score(self, distance: float) -> float:
        """Convert internal distance back to the similarity convention."""
        if self.metric is Metric.EUCLIDEAN:
            return -distance
        return 1.0 - distance

    # -- construction -----------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._graph)

    @property
    def nbytes(self) -> int:
        return int(self._vectors.nbytes)

    def build(self, vectors: np.ndarray) -> "HNSWIndex":
        """Build the index from scratch over ``vectors``."""
        vectors = self._validate_build(vectors)
        self._vectors = self._prepare(vectors)
        self._graph = []
        self._entry_point = None
        self._max_layer = -1
        self._rng = np.random.default_rng(self.seed)
        for node in range(self._vectors.shape[0]):
            self._insert(node)
        return self

    def add(self, vectors: np.ndarray) -> "HNSWIndex":
        """Incrementally insert more vectors (must match index dim)."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=self._dtype))
        if self.size == 0:
            return self.build(vectors)
        if vectors.shape[1] != self._dim:
            raise ConfigurationError(
                f"cannot add vectors of dim {vectors.shape[1]} to index of dim {self._dim}"
            )
        prepared = self._prepare(vectors)
        start = self._vectors.shape[0]
        self._vectors = np.vstack([self._vectors, prepared])
        for node in range(start, start + prepared.shape[0]):
            self._insert(node)
        return self

    def _sample_level(self) -> int:
        u = float(self._rng.random())
        u = max(u, 1e-12)
        return int(-math.log(u) * self._level_mult)

    def _insert(self, node: int) -> None:
        level = self._sample_level()
        self._graph.append([[] for _ in range(level + 1)])
        if self._entry_point is None:
            self._entry_point = node
            self._max_layer = level
            return

        query = self._vectors[node]
        entry = self._entry_point
        # Greedy descent through layers above the node's level.
        for layer in range(self._max_layer, level, -1):
            entry = self._greedy_closest(query, entry, layer)
        # Beam search + heuristic linking on the layers the node joins.
        for layer in range(min(level, self._max_layer), -1, -1):
            candidates = self._search_layer(query, [entry], layer, self.ef_construction)
            m_max = self.m0 if layer == 0 else self.m
            neighbours = self._select_heuristic(query, candidates, self.m)
            self._graph[node][layer] = [n for _, n in neighbours]
            for dist, neighbour in neighbours:
                links = self._graph[neighbour][layer]
                links.append(node)
                if len(links) > m_max:
                    self._shrink(neighbour, layer, m_max)
            if candidates:
                entry = min(candidates)[1]
        if level > self._max_layer:
            self._max_layer = level
            self._entry_point = node

    def _shrink(self, node: int, layer: int, m_max: int) -> None:
        """Re-select a node's neighbour list with the heuristic."""
        links = self._graph[node][layer]
        dists = self._dist(self._vectors[node], links)
        candidates = sorted(zip(dists.tolist(), links))
        selected = self._select_heuristic(self._vectors[node], candidates, m_max)
        self._graph[node][layer] = [n for _, n in selected]

    def _select_heuristic(
        self,
        query: np.ndarray,
        candidates: list[tuple[float, int]],
        m: int,
    ) -> list[tuple[float, int]]:
        """Algorithm 4: keep candidates closer to the query than to any
        already-selected neighbour, so edges spread across directions."""
        selected: list[tuple[float, int]] = []
        for dist, node in sorted(candidates):
            if len(selected) >= m:
                break
            if selected:
                chosen_ids = [c for _, c in selected]
                to_chosen = self._dist(self._vectors[node], chosen_ids)
                if float(to_chosen.min()) < dist:
                    continue
            selected.append((dist, node))
        # Backfill with nearest rejected candidates if under-full.
        if len(selected) < m:
            chosen_ids = {n for _, n in selected}
            for dist, node in sorted(candidates):
                if len(selected) >= m:
                    break
                if node not in chosen_ids:
                    selected.append((dist, node))
                    chosen_ids.add(node)
        return selected

    # -- search -----------------------------------------------------------

    def _greedy_closest(self, query: np.ndarray, entry: int, layer: int) -> int:
        current = entry
        current_dist = float(self._dist(query, [entry])[0])
        improved = True
        while improved:
            improved = False
            links = self._graph[current][layer]
            if not links:
                break
            dists = self._dist(query, links)
            best = int(np.argmin(dists))
            if dists[best] < current_dist:
                current = links[best]
                current_dist = float(dists[best])
                improved = True
        return current

    def _search_layer(
        self,
        query: np.ndarray,
        entries: list[int],
        layer: int,
        ef: int,
    ) -> list[tuple[float, int]]:
        """Beam search on one layer; returns (distance, node) pairs."""
        visited = set(entries)
        entry_dists = self._dist(query, entries)
        # candidates: min-heap by distance; results: max-heap (negated).
        candidates = [(float(d), n) for d, n in zip(entry_dists, entries)]
        heapq.heapify(candidates)
        results = [(-d, n) for d, n in candidates]
        heapq.heapify(results)
        while candidates:
            dist, node = heapq.heappop(candidates)
            if len(results) >= ef and dist > -results[0][0]:
                break
            fresh = [n for n in self._graph[node][layer] if n not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            dists = self._dist(query, fresh)
            worst = -results[0][0] if results else math.inf
            for d, n in zip(dists.tolist(), fresh):
                if len(results) < ef or d < worst:
                    heapq.heappush(candidates, (d, n))
                    heapq.heappush(results, (-d, n))
                    if len(results) > ef:
                        heapq.heappop(results)
                    worst = -results[0][0]
        return sorted((-negd, n) for negd, n in results)

    def search(self, query: np.ndarray, k: int, ef: int | None = None) -> list[SearchHit]:
        """Approximate k nearest neighbours of ``query``, best first."""
        query = self._validate_query(query)
        if self.metric is Metric.COSINE:
            query = normalize_rows(query)
        ef = max(ef if ef is not None else self.ef_search, k)
        assert self._entry_point is not None
        entry = self._entry_point
        for layer in range(self._max_layer, 0, -1):
            entry = self._greedy_closest(query, entry, layer)
        found = self._search_layer(query, [entry], 0, ef)
        return [SearchHit(node, self._score(dist)) for dist, node in found[:k]]

    def search_batch(
        self, queries: np.ndarray, k: int, ef: int | None = None
    ) -> list[list[SearchHit]]:
        """Per-query graph traversal (inherently sequential), sharing
        validation and the ``ef`` beam width across the block."""
        queries = self._validate_query_block(queries)
        return [self.search(query, k, ef=ef) for query in queries]
