"""Common interface for all vector indexes."""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import DimensionMismatchError, EmptyIndexError
from repro.linalg.distances import Metric

__all__ = ["VectorIndex", "SearchHit"]


class SearchHit:
    """A single nearest-neighbour result: internal row id + score.

    ``score`` follows the library-wide convention that larger is more
    similar (euclidean distances are negated by the similarity kernels).
    """

    __slots__ = ("index", "score")

    def __init__(self, index: int, score: float) -> None:
        self.index = index
        self.score = score

    def __repr__(self) -> str:
        return f"SearchHit(index={self.index}, score={self.score:.4f})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SearchHit):
            return NotImplemented
        return self.index == other.index and self.score == other.score


class VectorIndex(abc.ABC):
    """A k-NN index over a fixed set of vectors.

    Concrete indexes are built once with :meth:`build` (or incrementally
    where supported) and then queried with :meth:`search`.

    Dtype contract: the build dtype (float32 or float64) is preserved —
    a float32 store is scanned at float32 bandwidth — and queries are
    cast to it before scoring.  Non-float builds promote to float64.
    """

    def __init__(self, metric: Metric = Metric.COSINE) -> None:
        self.metric = metric
        self._dim: int | None = None
        self._dtype: np.dtype = np.dtype(np.float64)

    @property
    def dim(self) -> int | None:
        """Dimensionality of indexed vectors (None before build)."""
        return self._dim

    @property
    def dtype(self) -> np.dtype:
        """Storage/compute dtype (set from the vectors given to build)."""
        return self._dtype

    @property
    def nbytes(self) -> int:
        """Resident bytes of vector/code storage (0 when untracked)."""
        return 0

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of vectors currently indexed."""

    @abc.abstractmethod
    def build(self, vectors: np.ndarray) -> "VectorIndex":
        """(Re)build the index over ``vectors`` of shape ``(n, dim)``."""

    @abc.abstractmethod
    def search(self, query: np.ndarray, k: int) -> list[SearchHit]:
        """Return up to ``k`` nearest rows to ``query``, best first."""

    def search_batch(self, queries: np.ndarray, k: int) -> list[list[SearchHit]]:
        """Nearest rows for each row of a ``(Q, dim)`` query block.

        The default probes the index once per query — correct for graph
        indexes, whose traversal is inherently sequential per query.
        Scan-based indexes override this with one batched matrix
        product (see :class:`repro.ann.bruteforce.BruteForceIndex` and
        the batched-ADC path in :class:`repro.ann.pq.PQIndex`).
        """
        # repro-lint: disable=RL003 -- dtype-preserving pass-through; per-query search validates
        queries = np.atleast_2d(np.asarray(queries))
        return [self.search(query, k) for query in queries]

    # -- shared validation helpers -------------------------------------

    def _validate_build(self, vectors: np.ndarray) -> np.ndarray:
        # repro-lint: disable=RL003 -- preserves float32/float64 as-is; only non-float input promotes
        vectors = np.asarray(vectors)
        if vectors.dtype not in (np.float32, np.float64):
            # repro-lint: disable=RL003 -- promotion target for non-float input only
            vectors = vectors.astype(np.float64)
        vectors = np.ascontiguousarray(vectors)
        if vectors.ndim != 2:
            raise DimensionMismatchError("index expects a 2-D (n, dim) array")
        self._dim = vectors.shape[1]
        self._dtype = vectors.dtype
        return vectors

    def _validate_query(self, query: np.ndarray) -> np.ndarray:
        if self.size == 0:
            raise EmptyIndexError(f"{type(self).__name__} is empty")
        query = np.asarray(query, dtype=self._dtype).ravel()
        if self._dim is not None and query.shape[0] != self._dim:
            raise DimensionMismatchError(
                f"query dim {query.shape[0]} != index dim {self._dim}"
            )
        return query

    def _validate_query_block(self, queries: np.ndarray) -> np.ndarray:
        """A ``(Q, dim)`` query block cast to the index dtype."""
        if self.size == 0:
            raise EmptyIndexError(f"{type(self).__name__} is empty")
        queries = np.atleast_2d(np.asarray(queries, dtype=self._dtype))
        if queries.ndim != 2:
            raise DimensionMismatchError("expected a (Q, dim) query block")
        if self._dim is not None and queries.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"query dim {queries.shape[1]} != index dim {self._dim}"
            )
        return queries
