"""Index configurations pluggable into a collection.

``IndexKind`` names the supported configurations; ``HNSWPQIndex`` is
the paper's combination (Sec 4.2): vectors are compressed with Product
Quantization and navigated with an HNSW graph.  The graph is built over
the PQ *reconstructions* (so graph topology reflects what the
compressed representation can distinguish) and query scores come from
ADC lookup tables over the stored codes.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.ann.base import SearchHit, VectorIndex
from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HNSWIndex
from repro.ann.ivf import IVFFlatIndex
from repro.ann.pq import PQIndex, ProductQuantizer
from repro.errors import ConfigurationError
from repro.linalg.distances import Metric, normalize_rows

__all__ = ["IndexKind", "HNSWPQIndex", "make_index"]


class IndexKind(str, enum.Enum):
    """Supported collection index configurations."""

    EXACT = "exact"
    HNSW = "hnsw"
    PQ = "pq"
    HNSW_PQ = "hnsw+pq"
    IVF = "ivf"


class HNSWPQIndex(VectorIndex):
    """HNSW navigation over PQ-compressed vectors with ADC scoring."""

    def __init__(
        self,
        metric: Metric = Metric.COSINE,
        m: int = 16,
        ef_construction: int = 100,
        ef_search: int = 64,
        n_subvectors: int = 8,
        n_centroids: int = 256,
        seed: int = 0,
    ) -> None:
        super().__init__(metric)
        self.quantizer = ProductQuantizer(n_subvectors, n_centroids, seed=seed)
        self._graph = HNSWIndex(
            metric=metric, m=m, ef_construction=ef_construction,
            ef_search=ef_search, seed=seed,
        )
        self._codes = np.empty((0, n_subvectors), dtype=np.uint8)

    @property
    def size(self) -> int:
        return self._codes.shape[0]

    @property
    def nbytes(self) -> int:
        codebooks = self.quantizer.codebooks_
        return (
            int(self._codes.nbytes)
            + (int(codebooks.nbytes) if codebooks is not None else 0)
            + self._graph.nbytes
        )

    def build(self, vectors: np.ndarray) -> "HNSWPQIndex":
        vectors = self._validate_build(vectors)
        if self.metric is Metric.COSINE:
            vectors = normalize_rows(vectors)
        self.quantizer.fit(vectors)
        self._codes = self.quantizer.encode(vectors)
        reconstructed = self.quantizer.decode(self._codes)
        self._graph.build(reconstructed)
        return self

    def search(self, query: np.ndarray, k: int, ef: int | None = None) -> list[SearchHit]:
        # Delegate through the batched path with Q=1 so sequential and
        # batched serving share every ADC arithmetic step bit for bit.
        return self.search_batch(self._validate_query(query)[np.newaxis, :], k, ef=ef)[0]

    def search_batch(
        self, queries: np.ndarray, k: int, ef: int | None = None
    ) -> list[list[SearchHit]]:
        """Graph traversal per query, ADC rescore batched.

        The HNSW descent is inherently sequential per query, but the
        ``(Q, m, k)`` ADC lookup tables for the whole block are built
        with one einsum up front; each query's over-fetched candidate
        set is then re-scored by gathering from its own table slice.
        """
        queries = self._validate_query_block(queries)
        if self.metric is Metric.COSINE:
            queries = normalize_rows(queries)
        fetch = max(2 * k, k + 8)
        if self.metric is Metric.EUCLIDEAN:
            tables = self.quantizer.adc_l2_tables(queries)
        else:
            tables = self.quantizer.adc_inner_product_tables(queries)
        results: list[list[SearchHit]] = []
        for q in range(queries.shape[0]):
            candidates = self._graph.search(queries[q], fetch, ef=ef)
            ids = np.array([hit.index for hit in candidates], dtype=np.intp)
            scores = self.quantizer.adc_scores(tables[q], self._codes[ids])
            if self.metric is Metric.EUCLIDEAN:
                scores = -np.sqrt(np.clip(scores, 0, None))
            order = np.argsort(-scores, kind="stable")[:k]
            results.append([SearchHit(int(ids[i]), float(scores[i])) for i in order])
        return results


def make_index(kind: IndexKind | str, metric: Metric, **params) -> VectorIndex:
    """Factory for collection indexes.

    ``params`` are forwarded to the chosen index constructor, so callers
    can tune ``m``/``ef_search``/``n_subvectors`` etc. per collection.
    """
    kind = IndexKind(kind)
    if kind is IndexKind.EXACT:
        return BruteForceIndex(metric=metric)
    if kind is IndexKind.HNSW:
        return HNSWIndex(metric=metric, **params)
    if kind is IndexKind.PQ:
        return PQIndex(metric=metric, **params)
    if kind is IndexKind.HNSW_PQ:
        return HNSWPQIndex(metric=metric, **params)
    if kind is IndexKind.IVF:
        return IVFFlatIndex(metric=metric, **params)
    raise ConfigurationError(f"unknown index kind: {kind}")
