"""Index configurations pluggable into a collection.

``IndexKind`` names the supported configurations; ``HNSWPQIndex`` is
the paper's combination (Sec 4.2): vectors are compressed with Product
Quantization and navigated with an HNSW graph.  The graph is built over
the PQ *reconstructions* (so graph topology reflects what the
compressed representation can distinguish) and query scores come from
ADC lookup tables over the stored codes.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.ann.base import SearchHit, VectorIndex
from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HNSWIndex
from repro.ann.ivf import IVFFlatIndex
from repro.ann.pq import PQIndex, ProductQuantizer
from repro.errors import ConfigurationError
from repro.linalg.distances import Metric, normalize_rows

__all__ = ["IndexKind", "HNSWPQIndex", "make_index"]


class IndexKind(str, enum.Enum):
    """Supported collection index configurations."""

    EXACT = "exact"
    HNSW = "hnsw"
    PQ = "pq"
    HNSW_PQ = "hnsw+pq"
    IVF = "ivf"


class HNSWPQIndex(VectorIndex):
    """HNSW navigation over PQ-compressed vectors with ADC scoring."""

    def __init__(
        self,
        metric: Metric = Metric.COSINE,
        m: int = 16,
        ef_construction: int = 100,
        ef_search: int = 64,
        n_subvectors: int = 8,
        n_centroids: int = 256,
        seed: int = 0,
    ) -> None:
        super().__init__(metric)
        self.quantizer = ProductQuantizer(n_subvectors, n_centroids, seed=seed)
        self._graph = HNSWIndex(
            metric=metric, m=m, ef_construction=ef_construction,
            ef_search=ef_search, seed=seed,
        )
        self._codes = np.empty((0, n_subvectors), dtype=np.uint8)

    @property
    def size(self) -> int:
        return self._codes.shape[0]

    def build(self, vectors: np.ndarray) -> "HNSWPQIndex":
        vectors = self._validate_build(vectors)
        if self.metric is Metric.COSINE:
            vectors = normalize_rows(vectors)
        self.quantizer.fit(vectors)
        self._codes = self.quantizer.encode(vectors)
        reconstructed = self.quantizer.decode(self._codes)
        self._graph.build(reconstructed)
        return self

    def search(self, query: np.ndarray, k: int, ef: int | None = None) -> list[SearchHit]:
        query = self._validate_query(query)
        if self.metric is Metric.COSINE:
            query = normalize_rows(query)
        # Over-fetch from the graph, then re-score candidates with ADC.
        candidates = self._graph.search(query, max(2 * k, k + 8), ef=ef)
        ids = np.array([hit.index for hit in candidates], dtype=np.intp)
        if self.metric is Metric.EUCLIDEAN:
            table = self.quantizer.adc_l2_table(query)
            scores = -np.sqrt(
                np.clip(self.quantizer.adc_scores(table, self._codes[ids]), 0, None)
            )
        else:
            table = self.quantizer.adc_inner_product_table(query)
            scores = self.quantizer.adc_scores(table, self._codes[ids])
        order = np.argsort(-scores, kind="stable")[:k]
        return [SearchHit(int(ids[i]), float(scores[i])) for i in order]


def make_index(kind: IndexKind | str, metric: Metric, **params) -> VectorIndex:
    """Factory for collection indexes.

    ``params`` are forwarded to the chosen index constructor, so callers
    can tune ``m``/``ef_search``/``n_subvectors`` etc. per collection.
    """
    kind = IndexKind(kind)
    if kind is IndexKind.EXACT:
        return BruteForceIndex(metric=metric)
    if kind is IndexKind.HNSW:
        return HNSWIndex(metric=metric, **params)
    if kind is IndexKind.PQ:
        return PQIndex(metric=metric, **params)
    if kind is IndexKind.HNSW_PQ:
        return HNSWPQIndex(metric=metric, **params)
    if kind is IndexKind.IVF:
        return IVFFlatIndex(metric=metric, **params)
    raise ConfigurationError(f"unknown index kind: {kind}")
