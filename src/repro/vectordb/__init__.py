"""In-process vector database standing in for Qdrant.

The paper stores value embeddings in Qdrant collections with metadata
payloads ("relation ID, attribute name, etc."), compressed with Product
Quantization and indexed with HNSW.  This package provides the same
surface: named collections of points (id + vector + payload), payload
filters, cosine/dot/euclidean metrics, exact search plus pluggable ANN
indexes, and snapshot persistence — all in-process.
"""

from repro.vectordb.collection import Collection, Point, ScoredPoint
from repro.vectordb.database import VectorDatabase
from repro.vectordb.filters import FieldCondition, Filter, MatchAny, MatchValue, Range
from repro.vectordb.index import HNSWPQIndex, IndexKind

__all__ = [
    "Collection",
    "FieldCondition",
    "Filter",
    "HNSWPQIndex",
    "IndexKind",
    "MatchAny",
    "MatchValue",
    "Point",
    "Range",
    "ScoredPoint",
    "VectorDatabase",
]
