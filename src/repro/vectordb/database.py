"""The vector database: named collections plus snapshot persistence."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import CollectionExistsError, CollectionNotFoundError
from repro.linalg.distances import Metric
from repro.obs import MetricsRegistry
from repro.vectordb.collection import Collection, Point

__all__ = ["VectorDatabase"]

_MANIFEST = "manifest.json"


class VectorDatabase:
    """An in-process, multi-collection vector store.

    Collections are created with :meth:`create_collection`, addressed by
    name, and can be persisted to / restored from a snapshot directory
    (vectors as ``.npz``, payloads and config as JSON).  A shared
    :class:`MetricsRegistry` may be passed in so every collection's
    scan counters land in one place (search methods pass the engine's).
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self._collections: dict[str, Collection] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- collection management -------------------------------------------

    def create_collection(
        self,
        name: str,
        dim: int,
        metric: Metric = Metric.COSINE,
        dtype: "str | np.dtype | type" = np.float64,
    ) -> Collection:
        """Create a new named collection (wired to the db's metrics)."""
        if name in self._collections:
            raise CollectionExistsError(f"collection {name!r} already exists")
        collection = Collection(name, dim, metric, metrics=self.metrics, dtype=dtype)
        self._collections[name] = collection
        return collection

    def get_collection(self, name: str) -> Collection:
        """Fetch a collection by name."""
        collection = self._collections.get(name)
        if collection is None:
            raise CollectionNotFoundError(f"no collection named {name!r}")
        return collection

    def drop_collection(self, name: str) -> None:
        """Delete a collection and its contents."""
        if name not in self._collections:
            raise CollectionNotFoundError(f"no collection named {name!r}")
        del self._collections[name]

    def list_collections(self) -> list[str]:
        """Names of all collections, sorted."""
        return sorted(self._collections)

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def __len__(self) -> int:
        return len(self._collections)

    # -- persistence -------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Snapshot every collection into ``directory``.

        Layout: ``manifest.json`` plus one ``<name>.npz`` (vectors) and
        ``<name>.payloads.json`` (ids + payloads) per collection.
        Attached ANN indexes are not persisted — they are cheap to
        rebuild relative to re-embedding, and rebuilding keeps the
        snapshot format independent of index internals.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {}
        for name, collection in self._collections.items():
            manifest[name] = {
                "dim": collection.dim,
                "metric": collection.metric.value,
                "dtype": collection.dtype.name,
                "index": collection.index_kind.value if collection.index_kind else None,
            }
            np.savez_compressed(directory / f"{name}.npz", vectors=collection.vectors)
            points = collection.scroll()
            with open(directory / f"{name}.payloads.json", "w") as fh:
                json.dump(
                    [{"id": p.id, "payload": p.payload} for p in points], fh
                )
        with open(directory / _MANIFEST, "w") as fh:
            json.dump(manifest, fh, indent=2)

    @classmethod
    def load(cls, directory: str | Path) -> "VectorDatabase":
        """Restore a database from a snapshot directory."""
        directory = Path(directory)
        with open(directory / _MANIFEST) as fh:
            manifest = json.load(fh)
        db = cls()
        for name, info in manifest.items():
            collection = db.create_collection(
                name,
                dim=info["dim"],
                metric=Metric(info["metric"]),
                dtype=info.get("dtype", "float64"),
            )
            vectors = np.load(directory / f"{name}.npz")["vectors"]
            with open(directory / f"{name}.payloads.json") as fh:
                records = json.load(fh)
            points = [
                Point(rec["id"], vectors[row], rec["payload"])
                for row, rec in enumerate(records)
            ]
            collection.upsert(points)
            if info.get("index"):
                collection.create_index(info["index"])
        return db
