"""The vector database: named collections plus snapshot persistence."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import CollectionExistsError, CollectionNotFoundError
from repro.linalg.distances import Metric
from repro.obs import MetricsRegistry
from repro.storage import SegmentWriter, is_snapshot, open_snapshot
from repro.storage import npz as legacy_npz
from repro.vectordb.collection import Collection, Point

__all__ = ["VectorDatabase"]

_MANIFEST = "manifest.json"

#: ``meta["kind"]`` tag of a vector-database snapshot.
SNAPSHOT_KIND = "vectordb"


class VectorDatabase:
    """An in-process, multi-collection vector store.

    Collections are created with :meth:`create_collection`, addressed by
    name, and can be persisted to / restored from a snapshot directory
    (vectors as ``.npz``, payloads and config as JSON).  A shared
    :class:`MetricsRegistry` may be passed in so every collection's
    scan counters land in one place (search methods pass the engine's).
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self._collections: dict[str, Collection] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- collection management -------------------------------------------

    def create_collection(
        self,
        name: str,
        dim: int,
        metric: Metric = Metric.COSINE,
        dtype: "str | np.dtype | type" = np.float64,
    ) -> Collection:
        """Create a new named collection (wired to the db's metrics)."""
        if name in self._collections:
            raise CollectionExistsError(f"collection {name!r} already exists")
        collection = Collection(name, dim, metric, metrics=self.metrics, dtype=dtype)
        self._collections[name] = collection
        return collection

    def get_collection(self, name: str) -> Collection:
        """Fetch a collection by name."""
        collection = self._collections.get(name)
        if collection is None:
            raise CollectionNotFoundError(f"no collection named {name!r}")
        return collection

    def drop_collection(self, name: str) -> None:
        """Delete a collection and its contents."""
        if name not in self._collections:
            raise CollectionNotFoundError(f"no collection named {name!r}")
        del self._collections[name]

    def list_collections(self) -> list[str]:
        """Names of all collections, sorted."""
        return sorted(self._collections)

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def __len__(self) -> int:
        return len(self._collections)

    # -- persistence -------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Snapshot every collection into ``directory`` as one atomic
        segment commit.

        Layout: a :mod:`repro.storage` snapshot whose manifest carries
        each collection's config, with one ``<name>.vectors`` array
        segment and one ``<name>.payloads`` JSON document per
        collection.  The manifest is replaced last, so a crash mid-save
        leaves the previous snapshot fully readable — never a manifest
        pointing at half-written vectors.  Attached ANN indexes are not
        persisted — they are cheap to rebuild relative to re-embedding,
        and rebuilding keeps the snapshot format independent of index
        internals.
        """
        collections: dict[str, dict[str, Any]] = {}
        writer = SegmentWriter(
            directory,
            meta={"kind": SNAPSHOT_KIND, "collections": collections},
            metrics=self.metrics,
        )
        for name, collection in self._collections.items():
            collections[name] = {
                "dim": collection.dim,
                "metric": collection.metric.value,
                "dtype": collection.dtype.name,
                "index": collection.index_kind.value if collection.index_kind else None,
            }
            writer.add_array(f"{name}.vectors", collection.vectors)
            points = collection.scroll()
            writer.add_json(
                f"{name}.payloads", [{"id": p.id, "payload": p.payload} for p in points]
            )
        writer.commit()

    @classmethod
    def load(cls, directory: str | Path) -> "VectorDatabase":
        """Restore a database from a snapshot directory.

        Segment snapshots are digest-verified on read: a truncated
        vectors segment or corrupted payload raises
        :class:`~repro.errors.StorageError` here instead of surfacing
        as garbage rankings later.  Pre-segment snapshots (a bare
        ``manifest.json`` plus ``.npz`` files) still load.
        """
        directory = Path(directory)
        if is_snapshot(directory):
            snapshot = open_snapshot(directory)
            db = cls()
            for name, info in snapshot.meta["collections"].items():
                collection = db.create_collection(
                    name,
                    dim=info["dim"],
                    metric=Metric(info["metric"]),
                    dtype=info.get("dtype", "float64"),
                )
                vectors = snapshot.array(f"{name}.vectors")
                records = snapshot.json(f"{name}.payloads")
                db._restore(collection, vectors, records, info.get("index"))
            return db
        return cls._load_legacy(directory)

    @classmethod
    def _load_legacy(cls, directory: Path) -> "VectorDatabase":
        """The pre-segment layout: raw ``manifest.json`` + per-collection
        ``.npz`` / ``.payloads.json`` files, no checksums."""
        with open(directory / _MANIFEST) as fh:
            manifest = json.load(fh)
        db = cls()
        for name, info in manifest.items():
            collection = db.create_collection(
                name,
                dim=info["dim"],
                metric=Metric(info["metric"]),
                dtype=info.get("dtype", "float64"),
            )
            vectors = legacy_npz.load_npz(directory / f"{name}.npz")["vectors"]
            with open(directory / f"{name}.payloads.json") as fh:
                records = json.load(fh)
            db._restore(collection, vectors, records, info.get("index"))
        return db

    @staticmethod
    def _restore(
        collection: Collection,
        vectors: np.ndarray,
        records: list[dict[str, Any]],
        index: "str | None",
    ) -> None:
        points = [
            Point(rec["id"], vectors[row], rec["payload"])
            for row, rec in enumerate(records)
        ]
        collection.upsert(points)
        if index:
            collection.create_index(index)
