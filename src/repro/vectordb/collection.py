"""A named collection of points: vectors + payload metadata.

The unit of storage mirrors Qdrant: a *point* has an id, a vector and a
JSON-like payload.  Search supports payload filters; when an ANN index
is attached, filtered searches over-fetch from the index and post-filter
(the standard approach for graph indexes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ann.base import VectorIndex
from repro.errors import (
    CollectionError,
    DimensionMismatchError,
    PointNotFoundError,
)
from repro.linalg.distances import Metric, normalize_rows, pairwise_similarity, row_norms
from repro.linalg.topk import top_k_indices, top_k_indices_rowwise
from repro.obs import MetricsRegistry
from repro.sanitize import guard_operands, sanitize_enabled
from repro.vectordb.filters import Filter
from repro.vectordb.index import IndexKind, make_index

__all__ = ["Point", "ScoredPoint", "Collection"]


@dataclass(frozen=True)
class Point:
    """A stored point: id, vector, payload."""

    id: int | str
    vector: np.ndarray
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ScoredPoint:
    """A search result: the point plus its similarity score."""

    id: int | str
    score: float
    payload: dict[str, Any]
    vector: np.ndarray | None = None


class Collection:
    """A growable set of points with exact and ANN search.

    Parameters
    ----------
    name:
        Collection name (unique within a database).
    dim:
        Vector dimensionality; enforced on every upsert.
    metric:
        Similarity metric used by searches.
    metrics:
        Observability registry the collection records scan counters and
        latency into; a private registry is created when not given, so
        recording is unconditional and an engine can inject its shared
        one.
    dtype:
        Storage/compute dtype for vectors (float32 or float64, default
        float64 for backwards compatibility).  float32 halves resident
        memory and scan bandwidth; the engine's ``dtype`` knob selects
        it for the ANNS values collection.
    """

    def __init__(
        self,
        name: str,
        dim: int,
        metric: Metric = Metric.COSINE,
        metrics: MetricsRegistry | None = None,
        dtype: "str | np.dtype[Any] | type" = np.float64,
    ):
        if dim < 1:
            raise CollectionError("dim must be >= 1")
        self.name = name
        self.dim = dim
        self.metric = metric
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise CollectionError("dtype must be float32 or float64")
        self._ids: list[int | str] = []
        self._id_to_row: dict[int | str, int] = {}
        self._vectors = np.empty((0, dim), dtype=self.dtype)
        self._payloads: list[dict[str, Any]] = []
        self._index: VectorIndex | None = None
        self._index_kind: IndexKind | None = None
        self._index_stale = False
        # Cached row norms make cosine exact search a bare GEMM (no
        # per-query O(n·d) normalization pass over the store).
        self._norms = np.empty(0, dtype=self.dtype)
        self._norms_stale = False
        #: REPRO_SANITIZE=1 arms operand guards at the batch boundary.
        self.sanitize = sanitize_enabled()

    # -- mutation --------------------------------------------------------

    def upsert(self, points: list[Point]) -> None:
        """Insert new points or overwrite existing ids."""
        fresh_vectors: list[np.ndarray] = []
        for point in points:
            vector = np.asarray(point.vector, dtype=self.dtype).ravel()
            if vector.shape[0] != self.dim:
                raise DimensionMismatchError(
                    f"point {point.id!r}: dim {vector.shape[0]} != collection dim {self.dim}"
                )
            row = self._id_to_row.get(point.id)
            if row is not None:
                self._vectors[row] = vector
                self._payloads[row] = dict(point.payload)
            else:
                self._id_to_row[point.id] = len(self._ids)
                self._ids.append(point.id)
                self._payloads.append(dict(point.payload))
                fresh_vectors.append(vector)
        if fresh_vectors:
            self._vectors = np.vstack([self._vectors, np.vstack(fresh_vectors)])
        if points:
            self._index_stale = True
            self._norms_stale = True
            self._publish_bytes()

    def delete(self, ids: list[int | str]) -> int:
        """Delete points by id; returns how many existed."""
        to_drop = {i for i in ids if i in self._id_to_row}
        if not to_drop:
            return 0
        keep = [row for row, pid in enumerate(self._ids) if pid not in to_drop]
        self._vectors = self._vectors[keep]
        self._ids = [self._ids[row] for row in keep]
        self._payloads = [self._payloads[row] for row in keep]
        self._id_to_row = {pid: row for row, pid in enumerate(self._ids)}
        self._index_stale = True
        self._norms_stale = True
        self._publish_bytes()
        return len(to_drop)

    # -- access ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, point_id: int | str) -> bool:
        return point_id in self._id_to_row

    def get(self, point_id: int | str) -> Point:
        """Fetch one point by id."""
        row = self._id_to_row.get(point_id)
        if row is None:
            raise PointNotFoundError(f"{point_id!r} not in collection {self.name!r}")
        return Point(point_id, self._vectors[row].copy(), dict(self._payloads[row]))

    def scroll(self, filter: Filter | None = None) -> list[Point]:
        """All points (optionally filtered), in insertion order."""
        out = []
        for row, pid in enumerate(self._ids):
            if filter is None or filter.test(self._payloads[row]):
                out.append(Point(pid, self._vectors[row].copy(), dict(self._payloads[row])))
        return out

    @property
    def vectors(self) -> np.ndarray:
        """Read-only view of the raw vector matrix."""
        view = self._vectors.view()
        view.flags.writeable = False
        return view

    @property
    def nbytes(self) -> int:
        """Resident bytes: raw vectors + cached norms + index storage."""
        total = int(self._vectors.nbytes) + int(self._norms.nbytes)
        if self._index is not None:
            total += self._index.nbytes
        return total

    def _publish_bytes(self) -> None:
        self.metrics.gauge(f"vectordb.{self.name}.bytes").set(float(self.nbytes))

    def _cosine_norms(self) -> np.ndarray:
        """Cached per-row L2 norms (zero rows mapped to 1 so the
        division is safe and zero vectors keep score 0)."""
        if self._norms_stale or self._norms.shape[0] != len(self):
            norms = row_norms(self._vectors) if len(self) else np.empty(0, self.dtype)
            self._norms = np.where(norms > 1e-12, norms, norms.dtype.type(1.0)).astype(
                self.dtype, copy=False
            )
            self._norms_stale = False
            self._publish_bytes()
        return self._norms

    # -- indexing ---------------------------------------------------------

    def create_index(self, kind: IndexKind | str = IndexKind.HNSW, **params) -> None:
        """Attach and build an ANN index over current contents."""
        self._index = make_index(kind, self.metric, **params)
        self._index_kind = IndexKind(kind)
        if len(self) > 0:
            self._index.build(self._vectors)
        self._index_stale = False
        self._publish_bytes()

    @property
    def index_kind(self) -> IndexKind | None:
        return self._index_kind

    def _ensure_index_fresh(self) -> None:
        if self._index is not None and self._index_stale:
            if len(self) > 0:
                self._index.build(self._vectors)
            self._index_stale = False
            self._publish_bytes()

    # -- search ------------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int,
        filter: Filter | None = None,
        with_vectors: bool = False,
        ef: int | None = None,
        rescore: bool = False,
    ) -> list[ScoredPoint]:
        """Top-k points by similarity to ``query``.

        With an attached ANN index and a filter, the index is asked for
        an over-fetched candidate set which is then post-filtered; exact
        search applies the filter before scoring.

        ``rescore=True`` adds a refine stage for lossy (PQ-compressed)
        indexes: the index's candidates are re-scored against the
        stored full-precision vectors and re-sorted, the standard
        two-stage "ADC then refine" pipeline.
        """
        if len(self) == 0:
            return []
        query = np.asarray(query, dtype=self.dtype).ravel()
        if query.shape[0] != self.dim:
            raise DimensionMismatchError(
                f"query dim {query.shape[0]} != collection dim {self.dim}"
            )
        self.metrics.counter("vectordb.searches").inc()
        with self.metrics.timer("vectordb.scan"):
            if self._index is not None:
                return self._search_indexed(query, k, filter, with_vectors, ef, rescore)
            return self._search_exact(query, k, filter, with_vectors)

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        filter: Filter | None = None,
        with_vectors: bool = False,
        ef: int | None = None,
        rescore: bool = False,
    ) -> list[list[ScoredPoint]]:
        """Top-k points for each row of a ``(Q, dim)`` query block.

        Exact (index-less) collections answer the whole block with one
        similarity GEMM followed by per-row top-k selection; indexed
        collections check staleness once for the whole block, then hand
        the block to the index's batched search (batched ADC for PQ
        configurations), falling back to a per-query probe loop for
        indexes without batch support.  Per-query results are identical
        to :meth:`search` up to BLAS reduction order.
        """
        if self.sanitize:
            # repro-lint: disable=RL003 -- inspects the caller's dtype; casting here would hide the mismatch
            raw = np.asarray(queries)
            # Float query blocks must already be in the collection's
            # storage dtype — a silent upcast/downcast at this boundary
            # is exactly the bug class the sanitizer exists to catch.
            guard_operands(
                raw,
                where=f"vectordb.{self.name}.search_batch",
                expect_dtype=self.dtype if raw.dtype.kind == "f" else None,
            )
        queries = np.atleast_2d(np.asarray(queries, dtype=self.dtype))
        if queries.ndim != 2:
            raise DimensionMismatchError("search_batch expects a (Q, dim) query block")
        if queries.shape[0] and queries.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"query dim {queries.shape[1]} != collection dim {self.dim}"
            )
        n_queries = queries.shape[0]
        if len(self) == 0 or n_queries == 0:
            return [[] for _ in range(n_queries)]
        self.metrics.counter("vectordb.searches").inc(n_queries)
        self.metrics.counter("vectordb.batches").inc()
        with self.metrics.timer("vectordb.scan"):
            if self._index is not None:
                # Staleness is resolved once per batch; the per-query
                # path below must not re-check it.
                self._ensure_index_fresh()
                return self._search_indexed_batch(
                    queries, k, filter, with_vectors, ef, rescore
                )
            return self._search_exact_batch(queries, k, filter, with_vectors)

    def _exact_scores(
        self, queries: np.ndarray, rows_arr: np.ndarray | None = None
    ) -> np.ndarray:
        """Exact ``(Q, n_rows)`` similarity of queries vs selected rows
        (``rows_arr=None`` scans the whole store without copying it).

        Cosine divides one bare GEMM by the cached row norms instead of
        re-normalizing the stored matrix per call — the raw vectors are
        never copied or rescaled.
        """
        matrix = self._vectors if rows_arr is None else self._vectors[rows_arr]
        if self.metric is Metric.COSINE:
            sims = normalize_rows(np.atleast_2d(queries)) @ matrix.T
            norms = self._cosine_norms()
            return sims / (norms if rows_arr is None else norms[rows_arr])
        return pairwise_similarity(queries, matrix, self.metric)

    def _filter_rows(self, filter: Filter | None) -> np.ndarray | None:
        """Row selection for a filtered scan; None means every row."""
        if filter is None:
            return None
        return np.asarray(
            [r for r in range(len(self)) if filter.test(self._payloads[r])],
            dtype=np.intp,
        )

    def _search_exact_batch(
        self,
        queries: np.ndarray,
        k: int,
        filter: Filter | None,
        with_vectors: bool,
    ) -> list[list[ScoredPoint]]:
        rows_arr = self._filter_rows(filter)
        if rows_arr is not None and rows_arr.shape[0] == 0:
            return [[] for _ in range(queries.shape[0])]
        n_rows = len(self) if rows_arr is None else rows_arr.shape[0]
        self.metrics.counter("vectordb.points_scanned").inc(queries.shape[0] * n_rows)
        scores = self._exact_scores(queries, rows_arr)
        best = top_k_indices_rowwise(scores, k)
        return [
            [
                self._scored(
                    int(i if rows_arr is None else rows_arr[i]),
                    float(scores[q, i]),
                    with_vectors,
                )
                for i in best[q]
            ]
            for q in range(scores.shape[0])
        ]

    def _search_exact(
        self,
        query: np.ndarray,
        k: int,
        filter: Filter | None,
        with_vectors: bool,
    ) -> list[ScoredPoint]:
        # Q=1 through the batched kernel: sequential and batched exact
        # search share one code path (GEMM rows are independent, so the
        # scores match the batched ones bit for bit).
        return self._search_exact_batch(query[np.newaxis, :], k, filter, with_vectors)[0]

    def _search_indexed(
        self,
        query: np.ndarray,
        k: int,
        filter: Filter | None,
        with_vectors: bool,
        ef: int | None,
        rescore: bool = False,
    ) -> list[ScoredPoint]:
        self._ensure_index_fresh()
        self.metrics.counter("vectordb.index_probes").inc()
        fetch = self._fetch_size(k, filter, rescore)
        hits = self._probe_index(query, fetch, ef)
        return self._refine_hits(query, hits, k, filter, with_vectors, rescore)

    def _search_indexed_batch(
        self,
        queries: np.ndarray,
        k: int,
        filter: Filter | None,
        with_vectors: bool,
        ef: int | None,
        rescore: bool,
    ) -> list[list[ScoredPoint]]:
        """Indexed batch serving; assumes freshness was already ensured.

        The whole block goes to the index's ``search_batch`` (batched
        ADC tables for PQ configurations); indexes whose batch
        signature doesn't accept ``ef`` fall back to per-query probes.
        """
        assert self._index is not None
        self.metrics.counter("vectordb.index_probes").inc(queries.shape[0])
        fetch = self._fetch_size(k, filter, rescore)
        try:
            hit_lists = (
                self._index.search_batch(queries, fetch, ef=ef)
                if ef is not None
                else self._index.search_batch(queries, fetch)
            )
        except TypeError:  # batch signature without ef support
            hit_lists = [self._probe_index(q, fetch, ef) for q in queries]
        return [
            self._refine_hits(q, hits, k, filter, with_vectors, rescore)
            for q, hits in zip(queries, hit_lists)
        ]

    def _fetch_size(self, k: int, filter: Filter | None, rescore: bool) -> int:
        fetch = k if filter is None else max(4 * k, 32)
        if rescore:
            fetch = max(fetch, int(1.5 * k))  # headroom for re-sorting
        return fetch

    def _probe_index(self, query: np.ndarray, fetch: int, ef: int | None) -> list:
        assert self._index is not None
        kwargs = {"ef": ef} if ef is not None else {}
        try:
            return self._index.search(query, fetch, **kwargs)
        except TypeError:  # index without ef support
            return self._index.search(query, fetch)

    def _refine_hits(
        self,
        query: np.ndarray,
        hits: list,
        k: int,
        filter: Filter | None,
        with_vectors: bool,
        rescore: bool,
    ) -> list[ScoredPoint]:
        if rescore and hits:
            rows = np.asarray([hit.index for hit in hits], dtype=np.intp)
            exact = self._exact_scores(query[np.newaxis, :], rows)[0]
            order = np.argsort(-exact, kind="stable")
            hits = [
                type(hits[0])(int(rows[i]), float(exact[i])) for i in order
            ]
        out: list[ScoredPoint] = []
        for hit in hits:
            if filter is not None and not filter.test(self._payloads[hit.index]):
                continue
            out.append(self._scored(hit.index, hit.score, with_vectors))
            if len(out) >= k:
                break
        return out

    def _scored(self, row: int, score: float, with_vectors: bool) -> ScoredPoint:
        return ScoredPoint(
            id=self._ids[row],
            score=score,
            payload=dict(self._payloads[row]),
            vector=self._vectors[row].copy() if with_vectors else None,
        )
