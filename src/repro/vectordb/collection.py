"""A named collection of points: vectors + payload metadata.

The unit of storage mirrors Qdrant: a *point* has an id, a vector and a
JSON-like payload.  Search supports payload filters; when an ANN index
is attached, filtered searches over-fetch from the index and post-filter
(the standard approach for graph indexes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ann.base import VectorIndex
from repro.errors import (
    CollectionError,
    DimensionMismatchError,
    PointNotFoundError,
)
from repro.linalg.distances import Metric, pairwise_similarity
from repro.linalg.topk import top_k_indices
from repro.obs import MetricsRegistry
from repro.vectordb.filters import Filter
from repro.vectordb.index import IndexKind, make_index

__all__ = ["Point", "ScoredPoint", "Collection"]


@dataclass(frozen=True)
class Point:
    """A stored point: id, vector, payload."""

    id: int | str
    vector: np.ndarray
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ScoredPoint:
    """A search result: the point plus its similarity score."""

    id: int | str
    score: float
    payload: dict[str, Any]
    vector: np.ndarray | None = None


class Collection:
    """A growable set of points with exact and ANN search.

    Parameters
    ----------
    name:
        Collection name (unique within a database).
    dim:
        Vector dimensionality; enforced on every upsert.
    metric:
        Similarity metric used by searches.
    metrics:
        Observability registry the collection records scan counters and
        latency into; a private registry is created when not given, so
        recording is unconditional and an engine can inject its shared
        one.
    """

    def __init__(
        self,
        name: str,
        dim: int,
        metric: Metric = Metric.COSINE,
        metrics: MetricsRegistry | None = None,
    ):
        if dim < 1:
            raise CollectionError("dim must be >= 1")
        self.name = name
        self.dim = dim
        self.metric = metric
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._ids: list[int | str] = []
        self._id_to_row: dict[int | str, int] = {}
        self._vectors = np.empty((0, dim), dtype=np.float64)
        self._payloads: list[dict[str, Any]] = []
        self._index: VectorIndex | None = None
        self._index_kind: IndexKind | None = None
        self._index_stale = False

    # -- mutation --------------------------------------------------------

    def upsert(self, points: list[Point]) -> None:
        """Insert new points or overwrite existing ids."""
        fresh_vectors: list[np.ndarray] = []
        for point in points:
            vector = np.asarray(point.vector, dtype=np.float64).ravel()
            if vector.shape[0] != self.dim:
                raise DimensionMismatchError(
                    f"point {point.id!r}: dim {vector.shape[0]} != collection dim {self.dim}"
                )
            row = self._id_to_row.get(point.id)
            if row is not None:
                self._vectors[row] = vector
                self._payloads[row] = dict(point.payload)
            else:
                self._id_to_row[point.id] = len(self._ids)
                self._ids.append(point.id)
                self._payloads.append(dict(point.payload))
                fresh_vectors.append(vector)
        if fresh_vectors:
            self._vectors = np.vstack([self._vectors, np.vstack(fresh_vectors)])
        if points:
            self._index_stale = True

    def delete(self, ids: list[int | str]) -> int:
        """Delete points by id; returns how many existed."""
        to_drop = {i for i in ids if i in self._id_to_row}
        if not to_drop:
            return 0
        keep = [row for row, pid in enumerate(self._ids) if pid not in to_drop]
        self._vectors = self._vectors[keep]
        self._ids = [self._ids[row] for row in keep]
        self._payloads = [self._payloads[row] for row in keep]
        self._id_to_row = {pid: row for row, pid in enumerate(self._ids)}
        self._index_stale = True
        return len(to_drop)

    # -- access ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, point_id: int | str) -> bool:
        return point_id in self._id_to_row

    def get(self, point_id: int | str) -> Point:
        """Fetch one point by id."""
        row = self._id_to_row.get(point_id)
        if row is None:
            raise PointNotFoundError(f"{point_id!r} not in collection {self.name!r}")
        return Point(point_id, self._vectors[row].copy(), dict(self._payloads[row]))

    def scroll(self, filter: Filter | None = None) -> list[Point]:
        """All points (optionally filtered), in insertion order."""
        out = []
        for row, pid in enumerate(self._ids):
            if filter is None or filter.test(self._payloads[row]):
                out.append(Point(pid, self._vectors[row].copy(), dict(self._payloads[row])))
        return out

    @property
    def vectors(self) -> np.ndarray:
        """Read-only view of the raw vector matrix."""
        view = self._vectors.view()
        view.flags.writeable = False
        return view

    # -- indexing ---------------------------------------------------------

    def create_index(self, kind: IndexKind | str = IndexKind.HNSW, **params) -> None:
        """Attach and build an ANN index over current contents."""
        self._index = make_index(kind, self.metric, **params)
        self._index_kind = IndexKind(kind)
        if len(self) > 0:
            self._index.build(self._vectors)
        self._index_stale = False

    @property
    def index_kind(self) -> IndexKind | None:
        return self._index_kind

    def _ensure_index_fresh(self) -> None:
        if self._index is not None and self._index_stale:
            if len(self) > 0:
                self._index.build(self._vectors)
            self._index_stale = False

    # -- search ------------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int,
        filter: Filter | None = None,
        with_vectors: bool = False,
        ef: int | None = None,
        rescore: bool = False,
    ) -> list[ScoredPoint]:
        """Top-k points by similarity to ``query``.

        With an attached ANN index and a filter, the index is asked for
        an over-fetched candidate set which is then post-filtered; exact
        search applies the filter before scoring.

        ``rescore=True`` adds a refine stage for lossy (PQ-compressed)
        indexes: the index's candidates are re-scored against the
        stored full-precision vectors and re-sorted, the standard
        two-stage "ADC then refine" pipeline.
        """
        if len(self) == 0:
            return []
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.shape[0] != self.dim:
            raise DimensionMismatchError(
                f"query dim {query.shape[0]} != collection dim {self.dim}"
            )
        self.metrics.counter("vectordb.searches").inc()
        with self.metrics.timer("vectordb.scan"):
            if self._index is not None:
                return self._search_indexed(query, k, filter, with_vectors, ef, rescore)
            return self._search_exact(query, k, filter, with_vectors)

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        filter: Filter | None = None,
        with_vectors: bool = False,
        ef: int | None = None,
        rescore: bool = False,
    ) -> list[list[ScoredPoint]]:
        """Top-k points for each row of a ``(Q, dim)`` query block.

        Exact (index-less) collections answer the whole block with one
        similarity GEMM followed by per-row top-k selection; indexed
        collections probe the index per query but amortize validation
        and staleness checks across the block.  Per-query results are
        identical to :meth:`search` up to BLAS reduction order.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.ndim != 2:
            raise DimensionMismatchError("search_batch expects a (Q, dim) query block")
        if queries.shape[0] and queries.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"query dim {queries.shape[1]} != collection dim {self.dim}"
            )
        n_queries = queries.shape[0]
        if len(self) == 0 or n_queries == 0:
            return [[] for _ in range(n_queries)]
        self.metrics.counter("vectordb.searches").inc(n_queries)
        self.metrics.counter("vectordb.batches").inc()
        with self.metrics.timer("vectordb.scan"):
            if self._index is not None:
                self._ensure_index_fresh()
                return [
                    self._search_indexed(q, k, filter, with_vectors, ef, rescore)
                    for q in queries
                ]
            return self._search_exact_batch(queries, k, filter, with_vectors)

    def _search_exact_batch(
        self,
        queries: np.ndarray,
        k: int,
        filter: Filter | None,
        with_vectors: bool,
    ) -> list[list[ScoredPoint]]:
        if filter is not None:
            rows = [r for r in range(len(self)) if filter.test(self._payloads[r])]
            if not rows:
                return [[] for _ in range(queries.shape[0])]
            rows_arr = np.asarray(rows, dtype=np.intp)
            matrix = self._vectors[rows_arr]
        else:
            rows_arr = np.arange(len(self), dtype=np.intp)
            matrix = self._vectors
        self.metrics.counter("vectordb.points_scanned").inc(
            queries.shape[0] * matrix.shape[0]
        )
        scores = pairwise_similarity(queries, matrix, self.metric)
        return [
            [self._scored(int(rows_arr[i]), float(row[i]), with_vectors) for i in top_k_indices(row, k)]
            for row in scores
        ]

    def _search_exact(
        self,
        query: np.ndarray,
        k: int,
        filter: Filter | None,
        with_vectors: bool,
    ) -> list[ScoredPoint]:
        if filter is not None:
            rows = [r for r in range(len(self)) if filter.test(self._payloads[r])]
            if not rows:
                return []
            rows_arr = np.asarray(rows, dtype=np.intp)
            matrix = self._vectors[rows_arr]
        else:
            rows_arr = np.arange(len(self), dtype=np.intp)
            matrix = self._vectors
        self.metrics.counter("vectordb.points_scanned").inc(matrix.shape[0])
        scores = pairwise_similarity(query, matrix, self.metric)[0]
        best = top_k_indices(scores, k)
        return [self._scored(int(rows_arr[i]), float(scores[i]), with_vectors) for i in best]

    def _search_indexed(
        self,
        query: np.ndarray,
        k: int,
        filter: Filter | None,
        with_vectors: bool,
        ef: int | None,
        rescore: bool = False,
    ) -> list[ScoredPoint]:
        assert self._index is not None
        self._ensure_index_fresh()
        self.metrics.counter("vectordb.index_probes").inc()
        fetch = k if filter is None else max(4 * k, 32)
        if rescore:
            fetch = max(fetch, int(1.5 * k))  # headroom for re-sorting
        kwargs = {"ef": ef} if ef is not None else {}
        try:
            hits = self._index.search(query, fetch, **kwargs)
        except TypeError:  # index without ef support
            hits = self._index.search(query, fetch)
        if rescore and hits:
            rows = np.asarray([hit.index for hit in hits], dtype=np.intp)
            exact = pairwise_similarity(query, self._vectors[rows], self.metric)[0]
            order = np.argsort(-exact, kind="stable")
            hits = [
                type(hits[0])(int(rows[i]), float(exact[i])) for i in order
            ]
        out: list[ScoredPoint] = []
        for hit in hits:
            if filter is not None and not filter.test(self._payloads[hit.index]):
                continue
            out.append(self._scored(hit.index, hit.score, with_vectors))
            if len(out) >= k:
                break
        return out

    def _scored(self, row: int, score: float, with_vectors: bool) -> ScoredPoint:
        return ScoredPoint(
            id=self._ids[row],
            score=score,
            payload=dict(self._payloads[row]),
            vector=self._vectors[row].copy() if with_vectors else None,
        )
