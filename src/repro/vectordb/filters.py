"""Payload filter DSL, modelled on Qdrant's must/should/must_not filters.

A :class:`Filter` combines :class:`FieldCondition` objects; each
condition tests one payload key against a match clause
(:class:`MatchValue`, :class:`MatchAny`) or a numeric :class:`Range`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["MatchValue", "MatchAny", "Range", "FieldCondition", "Filter"]


@dataclass(frozen=True)
class MatchValue:
    """Payload value must equal ``value`` exactly."""

    value: Any

    def test(self, payload_value: Any) -> bool:
        return payload_value == self.value


@dataclass(frozen=True)
class MatchAny:
    """Payload value must be one of ``any`` (like SQL ``IN``)."""

    any: tuple

    def __init__(self, any: Any):  # noqa: A002 - mirrors Qdrant naming
        object.__setattr__(self, "any", tuple(any))

    def test(self, payload_value: Any) -> bool:
        return payload_value in self.any


@dataclass(frozen=True)
class Range:
    """Numeric range test; any bound may be omitted."""

    gte: float | None = None
    gt: float | None = None
    lte: float | None = None
    lt: float | None = None

    def test(self, payload_value: Any) -> bool:
        if not isinstance(payload_value, (int, float)):
            return False
        if self.gte is not None and not payload_value >= self.gte:
            return False
        if self.gt is not None and not payload_value > self.gt:
            return False
        if self.lte is not None and not payload_value <= self.lte:
            return False
        if self.lt is not None and not payload_value < self.lt:
            return False
        return True


@dataclass(frozen=True)
class FieldCondition:
    """One payload-key test.

    Exactly one of ``match`` / ``range`` must be provided.
    """

    key: str
    match: MatchValue | MatchAny | None = None
    range: Range | None = None

    def __post_init__(self) -> None:
        if (self.match is None) == (self.range is None):
            raise ValueError("FieldCondition needs exactly one of match/range")

    def test(self, payload: dict[str, Any]) -> bool:
        if self.key not in payload:
            return False
        clause = self.match if self.match is not None else self.range
        assert clause is not None
        return clause.test(payload[self.key])


@dataclass(frozen=True)
class Filter:
    """Boolean combination of conditions (may nest other Filters).

    * all ``must`` entries hold, and
    * at least one ``should`` entry holds (if any are given), and
    * no ``must_not`` entry holds.
    """

    must: tuple = field(default_factory=tuple)
    should: tuple = field(default_factory=tuple)
    must_not: tuple = field(default_factory=tuple)

    def __init__(self, must=(), should=(), must_not=()):
        object.__setattr__(self, "must", tuple(must))
        object.__setattr__(self, "should", tuple(should))
        object.__setattr__(self, "must_not", tuple(must_not))

    def test(self, payload: dict[str, Any]) -> bool:
        if any(cond.test(payload) for cond in self.must_not):
            return False
        if not all(cond.test(payload) for cond in self.must):
            return False
        if self.should and not any(cond.test(payload) for cond in self.should):
            return False
        return True
