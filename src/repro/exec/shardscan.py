"""Resident shard scan state and the worker-process protocol.

A :class:`ShardScanSpec` is everything a worker process needs to scan
one shard's fused ExS state: the stacked matrix (as a
:class:`~repro.linalg.sharedbuf.BufferSpec` naming a shared-memory
segment or — ``kind="mmap"`` — a committed segment file the worker
maps read-only, or the raw array when neither exists), the ``reduceat``
offsets, the pre-folded mean weights and the aggregation knobs —
stamped with the shard store's monotone ``generation`` so stale state
is detectable.

:func:`shard_worker_main` is the worker entry point: a loop over a
command pipe speaking five tuples —

``("publish", key, spec)``
    (re)build the resident state for ``key`` (attach the shared
    segment read-only); replaces and closes any previous resident.
``("drop", key)``
    release ``key``'s resident state.
``("scan", key, generation, query_block)``
    GEMM + segment reduction over the resident matrix; errors loudly
    when ``key`` is unknown or its resident generation differs.
``("ping",)`` / ``("stop",)``
    liveness probe / graceful shutdown.

One request gets exactly one ``("ok", payload)`` or ``("err", text)``
reply; the parent serializes requests per worker with a lock, so the
pipe never interleaves frames.  The scan kernel is the very same
:func:`repro.linalg.segment.segment_scores` the parent uses inline,
over the very same bytes (the shared segment), so worker scores are
bitwise identical to an in-process scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ExecutionError
from repro.linalg import sharedbuf
from repro.linalg.segment import segment_scores
from repro.linalg.sharedbuf import ArrayBuffer, BufferSpec, SharedBuffer
from repro.storage.mapped import MappedBuffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

__all__ = ["ResidentShard", "ShardScanSpec", "shard_worker_main"]


@dataclass(frozen=True)
class ShardScanSpec:
    """Picklable fused-scan state of one shard at one generation.

    Exactly one of ``buffer`` / ``matrix`` is set: ``buffer`` names a
    shared-memory segment the worker attaches zero-copy; ``matrix`` is
    the ordinary-ndarray fallback (pickled through the pipe) for
    platforms without shared memory.
    """

    generation: int
    buffer: BufferSpec | None
    matrix: np.ndarray | None
    offsets: np.ndarray
    weights: np.ndarray
    aggregate: str
    top_fraction: float

    def __post_init__(self) -> None:
        if (self.buffer is None) == (self.matrix is None):
            raise ExecutionError("ShardScanSpec needs exactly one of buffer/matrix")


class ResidentShard:
    """One shard's scan state as held inside a worker process."""

    def __init__(self, spec: ShardScanSpec) -> None:
        self.spec = spec
        self._view: ArrayBuffer | None = None
        if spec.buffer is not None:
            # Dispatch on the spec's transport: a "shm" spec attaches a
            # shared-memory segment, an "mmap" spec maps the committed
            # segment file the parent itself serves from — zero bytes
            # copied, one page-cache image shared by every process.
            if spec.buffer.kind == "mmap":
                self._view = MappedBuffer.attach(spec.buffer)
            else:
                self._view = SharedBuffer.attach(spec.buffer)
            self.matrix = self._view.array
        else:
            assert spec.matrix is not None
            self.matrix = spec.matrix

    @property
    def generation(self) -> int:
        return self.spec.generation

    def scan(self, query_block: np.ndarray) -> np.ndarray:
        """The fused ``(R, Q)`` score matrix — the parent's kernel,
        verbatim, over the shared bytes."""
        sims = self.matrix @ query_block.T
        return segment_scores(
            sims,
            self.spec.offsets,
            self.spec.weights,
            aggregate=self.spec.aggregate,
            top_fraction=self.spec.top_fraction,
        )

    def close(self) -> None:
        # Drop our ndarray reference before closing the mapping, so the
        # segment's exported memoryview count reaches zero.
        self.matrix = np.empty((0, 0), dtype=np.float32)
        view, self._view = self._view, None
        if view is not None:
            view.close()


def _handle(message: Any, resident: dict[str, ResidentShard]) -> Any:
    if not isinstance(message, tuple) or not message:
        raise ExecutionError(f"malformed worker command: {message!r}")
    command = message[0]
    if command == "ping":
        return "pong"
    if command == "stop":
        return "bye"
    if command == "publish":
        _, key, spec = message
        previous = resident.get(key)
        resident[key] = ResidentShard(spec)
        if previous is not None:
            previous.close()
        return spec.generation
    if command == "drop":
        _, key = message
        dropped = resident.pop(key, None)
        if dropped is not None:
            dropped.close()
        return None
    if command == "scan":
        _, key, generation, query_block = message
        shard = resident.get(key)
        if shard is None:
            raise ExecutionError(f"no resident state for shard {key!r}")
        if shard.generation != generation:
            raise ExecutionError(
                f"stale shard state for {key!r}: resident generation "
                f"{shard.generation}, caller expects {generation}"
            )
        return shard.scan(query_block)
    raise ExecutionError(f"unknown worker command: {message[0]!r}")


def shard_worker_main(conn: "Connection") -> None:
    """Worker-process entry point: serve the command pipe until EOF or
    an explicit ``("stop",)``.

    A bad request answers ``("err", ...)`` and the loop continues — a
    worker must outlive any single command, or one stale scan would
    take every resident shard on it down too.
    """
    # A forked worker inherits the parent's owned-segment registry; the
    # segments are the parent's to unlink, not ours.
    sharedbuf._forget_inherited()
    resident: dict[str, ResidentShard] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            reply: tuple[str, Any]
            try:
                reply = ("ok", _handle(message, resident))
            except Exception as exc:
                reply = ("err", f"{type(exc).__name__}: {exc}")
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
            if isinstance(message, tuple) and message and message[0] == "stop":
                break
    finally:
        for shard in resident.values():
            shard.close()
        conn.close()
