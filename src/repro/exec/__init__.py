"""The unified execution layer: pluggable parallel backends.

One :class:`ExecutionBackend` per engine runs every parallel site the
library has — query-chunk fan-outs, fused-scan row-range chunking,
scatter-gather over shards and the serving dispatch pool:

* :class:`InlineBackend` — serial, deterministic reference;
* :class:`ThreadBackend` — one persistent sized thread pool (BLAS
  releases the GIL), with per-call ``cap`` clamping;
* :class:`ProcessBackend` — worker processes holding per-shard scan
  state in shared memory behind command pipes, for sharded ExS scans
  that escape the GIL entirely.

:func:`resolve_backend` maps a name (or the ``REPRO_EXECUTOR``
environment variable) to a backend.  The RL005 lint rule pins every
raw ``ThreadPoolExecutor`` / ``ProcessPoolExecutor`` construction to
this package, so "parallelism" stays one subsystem instead of a pile
of per-call pools.
"""

from repro.exec.backend import (
    EXECUTOR_ENV,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    default_pool_size,
    resolve_backend,
)
from repro.exec.shardscan import ResidentShard, ShardScanSpec, shard_worker_main

__all__ = [
    "EXECUTOR_ENV",
    "ExecutionBackend",
    "InlineBackend",
    "ProcessBackend",
    "ResidentShard",
    "ShardScanSpec",
    "ThreadBackend",
    "default_pool_size",
    "resolve_backend",
    "shard_worker_main",
]
