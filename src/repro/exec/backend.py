"""Execution backends: the library's one place to run parallel work.

Every parallel site in the library — the query-chunk fan-out in
``repro.core.base``, the fused-scan row-range chunking in
``repro.core.exhaustive``, both scatter-gather pools in
``repro.core.sharding`` and the serving dispatch executor — submits to
an :class:`ExecutionBackend` instead of constructing its own pool
(RL005 lints exactly that).  Three implementations share the surface:

* :class:`InlineBackend` — serial execution on the calling thread;
  zero concurrency, maximal determinism, the reference the equivalence
  tests compare everything against;
* :class:`ThreadBackend` — one persistent, lazily created thread pool
  reused across calls (the kernels release the GIL inside BLAS, so
  threads give real parallelism without pickling indexes), with
  per-call ``cap`` clamping so a caller's ``workers=`` bound holds
  without resizing the pool;
* :class:`ProcessBackend` — worker processes holding resident shard
  state (stacked matrices in shared memory) behind per-worker command
  pipes, for scans that escape the GIL entirely.  Generic tasks —
  closures over live in-process indexes — cannot cross a process
  boundary, so they run on the inherited thread pool; what makes the
  backend "process" is the resident-shard surface
  (:meth:`~ExecutionBackend.publish_shard` /
  :meth:`~ExecutionBackend.scan_shards`).

Backends record ``exec.*`` metrics into the registry they are built
with: per-backend task counters, pool-size gauges, submit-to-start
queue timers and resident-shard scan counts.

:func:`resolve_backend` picks the default from the ``REPRO_EXECUTOR``
environment variable (``inline`` / ``thread`` / ``process``; unset
means ``thread``), which is how the CI matrix re-runs the concurrency
suites over the process backend.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import weakref
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, TypeVar

import numpy as np

from repro.errors import ConfigurationError, ExecutionError
from repro.exec.shardscan import ShardScanSpec, shard_worker_main
from repro.obs import MetricsRegistry

__all__ = [
    "EXECUTOR_ENV",
    "ExecutionBackend",
    "InlineBackend",
    "ProcessBackend",
    "ThreadBackend",
    "default_pool_size",
    "resolve_backend",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable naming the default backend for
#: :func:`resolve_backend` callers that don't choose one explicitly.
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: One scan request: (published key, expected generation, query block).
ScanRequest = tuple[str, int, np.ndarray]


def default_pool_size() -> int:
    """Pool width when the caller doesn't size one: the machine's
    cores, floored at 2 (so ``workers > 1`` means something everywhere)
    and capped at 32 (beyond which scatter width stops paying)."""
    return max(2, min(32, os.cpu_count() or 1))


class ExecutionBackend(ABC):
    """Where the library's parallel work runs.

    The contract every call site relies on:

    * :meth:`map` preserves input order and raises the first failure
      after all lanes settle; ``cap`` bounds this *call's* concurrency
      without resizing any pool;
    * :meth:`submit` returns a ``concurrent.futures.Future`` (serving
      wraps it into asyncio);
    * backends are reused across calls and closed exactly once by
      their owner (:meth:`close` is idempotent; they are context
      managers);
    * the resident-shard surface (:meth:`publish_shard` /
      :meth:`drop_shard` / :meth:`scan_shards`) exists only on
      backends with :attr:`supports_shard_scans` — callers must check
      before publishing.
    """

    #: Short name; also the ``{backend}`` segment of ``exec.*`` metrics.
    name = "backend"
    #: Whether publish/drop/scan_shards route to worker processes.
    supports_shard_scans = False
    #: Whether index owners should place scan state in SharedBuffers
    #: (worth the copy only when workers will map them).
    wants_shared_buffers = False

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    @abstractmethod
    def pool_size(self) -> int:
        """Concurrent task slots (0 for inline execution)."""

    @abstractmethod
    def submit(self, fn: Callable[..., R], /, *args: Any) -> "Future[R]":
        """Run ``fn(*args)`` asynchronously (inline backends resolve
        the future before returning)."""

    @abstractmethod
    def map(
        self, fn: Callable[[T], R], items: Iterable[T], *, cap: int | None = None
    ) -> list[R]:
        """``[fn(x) for x in items]`` with backend concurrency, order
        preserved; at most ``cap`` items in flight when given."""

    def close(self) -> None:
        """Release pools/workers; idempotent.  Using a closed backend
        raises :class:`~repro.errors.ExecutionError`."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- resident shard state (process backends only) ----------------------

    def publish_shard(self, key: str, spec: ShardScanSpec) -> None:
        """Install (or refresh) ``key``'s scan state in its worker."""
        raise ExecutionError(f"{self.name} backend does not host resident shard state")

    def drop_shard(self, key: str) -> None:
        """Release ``key``'s resident scan state, if any."""
        raise ExecutionError(f"{self.name} backend does not host resident shard state")

    def scan_shards(self, requests: Sequence[ScanRequest]) -> list[np.ndarray]:
        """Scan many resident shards, one ``(R, Q)`` score matrix per
        request, in request order."""
        raise ExecutionError(f"{self.name} backend does not host resident shard state")

    # -- shared instrumentation --------------------------------------------

    def _record_task(self, queued_ms: float) -> None:
        self.metrics.counter(f"exec.{self.name}.tasks").inc()
        self.metrics.histogram(f"exec.{self.name}.queue_ms").observe(queued_ms)


class InlineBackend(ExecutionBackend):
    """Serial execution on the calling thread.

    No pool, no reordering, no cross-thread BLAS nondeterminism — the
    reference backend the property tests compare the others against,
    and the right choice for debugging and single-core machines.
    """

    name = "inline"

    @property
    def pool_size(self) -> int:
        return 0

    def submit(self, fn: Callable[..., R], /, *args: Any) -> "Future[R]":
        future: "Future[R]" = Future()
        future.set_running_or_notify_cancel()
        try:
            result = fn(*args)
        except BaseException as exc:
            future.set_exception(exc)
        else:
            future.set_result(result)
        self._record_task(0.0)
        return future

    def map(
        self, fn: Callable[[T], R], items: Iterable[T], *, cap: int | None = None
    ) -> list[R]:
        out: list[R] = []
        for item in items:
            self._record_task(0.0)
            out.append(fn(item))
        return out


class ThreadBackend(ExecutionBackend):
    """One persistent, sized, reused thread pool.

    Replaces the historical fresh-``ThreadPoolExecutor``-per-call
    churn: the pool is created lazily on first real fan-out and lives
    until :meth:`close`.  A caller's ``workers=`` bound is honored by
    *lanes*, not pool resizing — :meth:`map` runs at most ``min(cap,
    pool_size, len(items))`` concurrent lanes, lane ``i`` serially
    draining ``items[i::lanes]``, so concurrency never exceeds the cap
    even when the pool is wider.
    """

    name = "thread"

    def __init__(
        self, max_workers: int | None = None, metrics: MetricsRegistry | None = None
    ) -> None:
        super().__init__(metrics)
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self._max_workers = max_workers if max_workers is not None else default_pool_size()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._closed = False

    @property
    def pool_size(self) -> int:
        return self._max_workers

    @property
    def pool(self) -> ThreadPoolExecutor | None:
        """The live pool (``None`` until first use) — exposed so tests
        can assert its identity is stable across repeated calls."""
        return self._pool

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise ExecutionError(f"{self.name} backend used after close()")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix=f"repro-exec-{self.name}",
                )
                self.metrics.gauge(f"exec.{self.name}.pool_size").set(
                    float(self._max_workers)
                )
            return self._pool

    def submit(self, fn: Callable[..., R], /, *args: Any) -> "Future[R]":
        pool = self._ensure_pool()
        submitted = time.perf_counter()

        def run() -> R:
            self._record_task((time.perf_counter() - submitted) * 1000.0)
            return fn(*args)

        return pool.submit(run)

    def map(
        self, fn: Callable[[T], R], items: Iterable[T], *, cap: int | None = None
    ) -> list[R]:
        if self._closed:
            raise ExecutionError(f"{self.name} backend used after close()")
        work = list(items)
        lanes = min(len(work), self._max_workers)
        if cap is not None:
            lanes = min(lanes, max(1, cap))
        if lanes < 2:
            # Degenerate fan-out: skip the pool round-trip entirely.
            out: list[R] = []
            for item in work:
                self._record_task(0.0)
                out.append(fn(item))
            return out
        pool = self._ensure_pool()
        submitted = time.perf_counter()
        results: list[Any] = [None] * len(work)

        def lane(first: int) -> None:
            for index in range(first, len(work), lanes):
                self._record_task((time.perf_counter() - submitted) * 1000.0)
                results[index] = fn(work[index])

        futures = [pool.submit(lane, first) for first in range(lanes)]
        error: BaseException | None = None
        for future in futures:
            try:
                future.result()
            except BaseException as exc:
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return list(results)

    def close(self) -> None:
        with self._pool_lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class _ShardWorker:
    """One daemon worker process plus its parent-side command pipe.

    The lock serializes request/reply pairs on the pipe — concurrency
    across shards comes from fanning out over *workers*, never from
    interleaving frames on one pipe.
    """

    def __init__(self, ctx: multiprocessing.context.BaseContext, index: int) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.lock = threading.Lock()
        self.process = ctx.Process(
            target=shard_worker_main,
            args=(child_conn,),
            name=f"repro-exec-shard{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def request(self, message: tuple[Any, ...]) -> Any:
        with self.lock:
            try:
                self.conn.send(message)
                status, payload = self.conn.recv()
            except (BrokenPipeError, EOFError, OSError) as exc:
                raise ExecutionError(
                    f"shard worker {self.process.name} is gone ({exc!r})"
                ) from exc
        if status == "err":
            raise ExecutionError(f"shard worker {self.process.name}: {payload}")
        return payload

    def stop(self) -> None:
        with self.lock:
            try:
                self.conn.send(("stop",))
                self.conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            try:
                self.conn.close()
            except OSError:
                pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=5.0)


def _stop_workers(workers: "list[_ShardWorker]") -> None:
    for worker in list(workers):
        worker.stop()
    workers.clear()


class ProcessBackend(ThreadBackend):
    """Worker processes holding resident shard state in shared memory.

    Generic tasks — closures over live in-process indexes — cannot
    cross a process boundary, so :meth:`map` / :meth:`submit` run on
    the inherited thread pool.  What escapes the GIL is the
    resident-shard surface: sharded ExS publishes each shard's stacked
    matrix (a :class:`~repro.linalg.SharedBuffer` segment) to a worker
    once per store generation, lifecycle deltas replay as
    publish/drop commands over the worker's pipe, and a batch scan
    then ships only the encoded query block — the GEMM and segment
    reduction run in the worker, and one ``(R, Q)`` score matrix comes
    back per shard.

    Workers are daemonic, spawned lazily on first publish and assigned
    shards round-robin; a ``weakref.finalize`` stops them even when an
    owner forgets to :meth:`close`.
    """

    name = "process"
    supports_shard_scans = True
    wants_shared_buffers = True

    def __init__(
        self,
        max_workers: int | None = None,
        metrics: MetricsRegistry | None = None,
        mp_context: str | None = None,
    ) -> None:
        super().__init__(max_workers=max_workers, metrics=metrics)
        if mp_context is None:
            # Fork shares the parent's pages copy-on-write and skips
            # re-import, so publishing is cheap; spawn is the fallback
            # where fork does not exist.
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_context)
        self._workers: "list[_ShardWorker]" = []
        self._assignment: dict[str, int] = {}
        self._workers_lock = threading.Lock()
        self._finalizer = weakref.finalize(self, _stop_workers, self._workers)

    def _worker_for(self, key: str) -> _ShardWorker:
        with self._workers_lock:
            if self._closed:
                raise ExecutionError(f"{self.name} backend used after close()")
            index = self._assignment.get(key)
            if index is None:
                if len(self._workers) < self._max_workers:
                    self._workers.append(_ShardWorker(self._ctx, len(self._workers)))
                    index = len(self._workers) - 1
                else:
                    index = len(self._assignment) % len(self._workers)
                self._assignment[key] = index
            return self._workers[index]

    def publish_shard(self, key: str, spec: ShardScanSpec) -> None:
        self._worker_for(key).request(("publish", key, spec))

    def drop_shard(self, key: str) -> None:
        with self._workers_lock:
            index = self._assignment.get(key)
            worker = self._workers[index] if index is not None else None
        if worker is not None:
            worker.request(("drop", key))

    def scan_shards(self, requests: Sequence[ScanRequest]) -> list[np.ndarray]:
        grouped: dict[int, list[int]] = {}
        for position, (key, _, _) in enumerate(requests):
            with self._workers_lock:
                index = self._assignment.get(key)
            if index is None:
                raise ExecutionError(f"shard {key!r} was never published to this backend")
            grouped.setdefault(index, []).append(position)

        def drain(group: tuple[int, list[int]]) -> list[np.ndarray]:
            worker_index, positions = group
            worker = self._workers[worker_index]
            scores: list[np.ndarray] = []
            for position in positions:
                key, generation, block = requests[position]
                scores.append(worker.request(("scan", key, generation, block)))
                self.metrics.counter(f"exec.{self.name}.shard_scans").inc()
            return scores

        # Pipe I/O fans out over the thread pool: one lane per worker,
        # each worker's requests serialized by its pipe lock anyway.
        groups = list(grouped.items())
        parts = self.map(drain, groups)
        results: list[np.ndarray | None] = [None] * len(requests)
        for (_, positions), part in zip(groups, parts):
            for position, scores_matrix in zip(positions, part):
                results[position] = scores_matrix
        return [matrix for matrix in results if matrix is not None]

    def close(self) -> None:
        with self._workers_lock:
            workers = list(self._workers)
            self._workers.clear()
            self._assignment.clear()
        for worker in workers:
            worker.stop()
        super().close()


def resolve_backend(
    spec: "str | ExecutionBackend | None" = None,
    *,
    max_workers: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> ExecutionBackend:
    """Build (or pass through) an execution backend.

    ``spec`` is a backend instance (returned untouched — the caller
    does not own it and must not close it), a backend name (``inline``
    / ``thread`` / ``process``), or ``None`` to consult the
    ``REPRO_EXECUTOR`` environment variable and default to ``thread``.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    chosen = spec if spec is not None else os.environ.get(EXECUTOR_ENV, "")
    chosen = chosen.strip().lower() or "thread"
    if chosen == "inline":
        return InlineBackend(metrics)
    if chosen == "thread":
        return ThreadBackend(max_workers=max_workers, metrics=metrics)
    if chosen == "process":
        return ProcessBackend(max_workers=max_workers, metrics=metrics)
    raise ConfigurationError(
        f"unknown execution backend {chosen!r}; expected 'inline', 'thread' or 'process'"
    )
