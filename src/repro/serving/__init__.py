"""Async serving front end: micro-batching, admission control, drain.

The engine's batch kernels want big query blocks; served traffic
arrives one query at a time.  This package is the adapter — see
:mod:`repro.serving.loop` for the threading model and
:class:`ServingEngine` for the API.  Construct one directly or via
:meth:`DiscoveryEngine.serving() <repro.core.engine.DiscoveryEngine.serving>`.

Stdlib-only by design (asyncio + concurrent.futures): the serving
layer adds no dependencies over the library it serves.
"""

from repro.errors import DeadlineExceeded, QueueFull, RateLimited, ServingClosed, ServingError
from repro.serving.admission import AdmissionController
from repro.serving.batcher import BatchKey, MicroBatcher, PendingRequest
from repro.serving.loop import ServingEngine
from repro.serving.tenancy import DEFAULT_TENANT, RateLimit, TenantRateLimiter, TokenBucket

__all__ = [
    "AdmissionController",
    "BatchKey",
    "DEFAULT_TENANT",
    "DeadlineExceeded",
    "MicroBatcher",
    "PendingRequest",
    "QueueFull",
    "RateLimit",
    "RateLimited",
    "ServingClosed",
    "ServingEngine",
    "ServingError",
    "TenantRateLimiter",
    "TokenBucket",
]
