"""Admission control: bounded queue, tenant budgets, request deadlines.

Every ``submit()`` passes through one :class:`AdmissionController`
check *before* anything is enqueued, so overload is rejected at the
door — cheaply, with a retry-after hint — instead of growing an
unbounded backlog whose tail latency nobody can meet anyway:

* **backpressure** — at most ``max_queue`` admitted-but-unanswered
  requests may exist at once; past that, :class:`~repro.errors.QueueFull`
  carries a hint of roughly how long one batching window needs to drain;
* **tenant isolation** — each tenant's token bucket is consulted first
  (:class:`~repro.serving.tenancy.TenantRateLimiter`), so one saturating
  client throttles itself, not the queue;
* **deadlines** — a per-request ``timeout_ms`` becomes an absolute
  deadline stamped here; the dispatcher sheds expired requests before
  they reach the engine (dead work would only inflate every survivor's
  p99).

Called from the serving event-loop thread only; no locks.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError, QueueFull, RateLimited
from repro.serving.tenancy import RateLimit, TenantRateLimiter

__all__ = ["AdmissionController"]


class AdmissionController:
    """The submit-time gate; see the module docstring for the policy."""

    def __init__(
        self,
        max_queue: int,
        window_ms: float,
        max_batch: int,
        default_limit: RateLimit | None = None,
        tenant_limits: "dict[str, RateLimit] | None" = None,
    ) -> None:
        if max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        self.max_queue = max_queue
        self.window_ms = window_ms
        self.max_batch = max_batch
        self.limiter = TenantRateLimiter(default_limit, tenant_limits)

    def retry_after_ms(self, outstanding: int) -> float:
        """Backoff hint when the queue is full: windows needed to drain
        the backlog at one ``max_batch`` per ``window_ms`` (a floor —
        dispatch may run windows concurrently — but an honest unit)."""
        windows = max(1, math.ceil(outstanding / self.max_batch))
        return max(self.window_ms, 1.0) * windows

    def admit(self, tenant: str, outstanding: int, now: float) -> None:
        """Raise :class:`RateLimited` / :class:`QueueFull`, or admit.

        The bucket is consulted before the queue bound so a throttled
        tenant burns its own budget, never a queue slot.  The serving
        path calls the two halves separately — a cache hit is charged
        to its tenant but never needs a queue slot.
        """
        self.charge_tenant(tenant, now)
        self.check_queue(outstanding)

    def charge_tenant(self, tenant: str, now: float) -> None:
        """Consume one token from the tenant's bucket or raise
        :class:`RateLimited` — every answered request costs a token,
        whether it is served from cache or from the engine."""
        retry_s = self.limiter.admit(tenant, now)
        if retry_s is not None:
            raise RateLimited(
                f"tenant {tenant!r} is over its rate budget; "
                f"retry in ~{retry_s * 1000.0:.0f} ms",
                tenant=tenant,
                retry_after_ms=retry_s * 1000.0,
            )

    def check_queue(self, outstanding: int) -> None:
        """Enforce the queue bound or raise :class:`QueueFull`."""
        if outstanding >= self.max_queue:
            hint = self.retry_after_ms(outstanding)
            raise QueueFull(
                f"serving queue is at its bound ({self.max_queue} outstanding); "
                f"retry in ~{hint:.0f} ms",
                retry_after_ms=hint,
            )

    def deadline(self, timeout_ms: float | None, now: float) -> float | None:
        """Absolute monotonic deadline for a request, or ``None``."""
        if timeout_ms is None:
            return None
        if timeout_ms < 0.0:
            raise ConfigurationError("timeout_ms must be >= 0")
        return now + timeout_ms / 1000.0
