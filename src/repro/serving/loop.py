"""The asyncio serving front end around a :class:`DiscoveryEngine`.

``ServingEngine`` turns the engine's batch kernels into an always-on
service for concurrent single-query traffic:

* ``await serving.submit(query, method=..., k=...)`` admits one request
  (admission control: tenant token buckets, a bounded queue with
  retry-after backpressure, optional per-request deadlines) and parks
  it in a micro-batching window;
* the :class:`~repro.serving.batcher.MicroBatcher` coalesces compatible
  requests — same ``(method, k, h)`` — and hands full or aged-out
  windows to a small thread pool, where each window runs as ONE
  ``engine.search_batch`` call under the engine's reader lock;
* results fan back out to the per-request futures on the event loop,
  so every caller sees exactly the ranking a direct ``engine.search``
  would have produced, at a fraction of the per-query cost.

Threading model: all serving state (windows, timers, accounting) is
confined to the event-loop thread.  Only the engine call crosses
threads, and it synchronizes exactly like every other engine reader —
through the lifecycle RWLock — so serving dispatch, ``workers > 1``
batch pools and writer deltas compose without any new locking.
:meth:`drain` stops intake, flushes every window, and awaits in-flight
dispatches; a delta landing mid-drain simply serializes with those
reads (writer preference bounds its wait by the in-flight windows).

Everything reports into the engine's existing metrics registry under
the ``serving.*`` vocabulary: queue-depth gauge, batch-fill histogram,
shed/reject counters and queue/dispatch/end-to-end latency stages.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING, Any

from repro.cache import CacheSignature
from repro.core.results import BatchResult, SearchResult
from repro.errors import ConfigurationError, DeadlineExceeded, QueueFull, RateLimited, ServingClosed
from repro.exec import ExecutionBackend, resolve_backend
from repro.serving.admission import AdmissionController
from repro.serving.batcher import BatchKey, MicroBatcher, PendingRequest
from repro.serving.tenancy import DEFAULT_TENANT, RateLimit

if TYPE_CHECKING:  # circular at runtime: engine.serving() builds us
    from repro.core.engine import DiscoveryEngine

__all__ = ["ServingEngine"]


class ServingEngine:
    """Micro-batched, admission-controlled serving over one engine.

    Parameters
    ----------
    engine:
        The indexed :class:`~repro.core.engine.DiscoveryEngine` to
        serve.  Its metrics registry is shared, so one snapshot shows
        the whole request path.
    window_ms:
        Maximum age of a batching window: the latency a lone request
        pays for the chance to coalesce (time trigger).
    max_batch:
        Window capacity: a full window dispatches immediately (size
        trigger), so saturated keys never wait out the window.
    max_queue:
        Bound on admitted-but-unanswered requests; beyond it
        ``submit`` raises :class:`~repro.errors.QueueFull` with a
        retry-after hint instead of growing an unbounded backlog.
    dispatch_workers:
        Threads running engine calls; >1 lets windows for different
        keys overlap (each window is still one engine call).
    batch_workers:
        ``workers=`` forwarded to ``search_batch`` inside a window
        (the engine-side scan pool).
    executor:
        The :class:`~repro.exec.ExecutionBackend` running window
        dispatches.  ``None`` (default) lazily resolves a dedicated
        backend sized to ``dispatch_workers`` — dedicated on purpose:
        a dispatch task *blocks* on the engine's scan fan-out, so
        sharing the engine's pool could queue a window behind the very
        lane work it is waiting for.  Pass a backend to override; the
        caller then owns its lifecycle (:meth:`drain` only closes a
        backend serving created itself).
    default_limit / tenant_limits:
        Optional per-tenant token buckets
        (:class:`~repro.serving.tenancy.RateLimit`); ``None`` default
        admits unknown tenants unconditionally.

    Use as an async context manager (drains on exit)::

        async with engine.serving(window_ms=3.0) as serving:
            results = await asyncio.gather(
                *(serving.submit(q, method="exs", k=10) for q in queries)
            )
    """

    def __init__(
        self,
        engine: "DiscoveryEngine",
        window_ms: float = 3.0,
        max_batch: int = 32,
        max_queue: int = 256,
        dispatch_workers: int = 2,
        batch_workers: int = 1,
        executor: ExecutionBackend | None = None,
        default_limit: RateLimit | None = None,
        tenant_limits: "dict[str, RateLimit] | None" = None,
    ) -> None:
        if dispatch_workers < 1:
            raise ConfigurationError("dispatch_workers must be >= 1")
        if batch_workers < 1:
            raise ConfigurationError("batch_workers must be >= 1")
        self.engine = engine
        self.metrics = engine.metrics
        self.batch_workers = batch_workers
        self.dispatch_workers = dispatch_workers
        self.admission = AdmissionController(
            max_queue=max_queue,
            window_ms=window_ms,
            max_batch=max_batch,
            default_limit=default_limit,
            tenant_limits=tenant_limits,
        )
        self.batcher = MicroBatcher(window_ms, max_batch, self._dispatch_window)
        self._clock = time.monotonic
        self._state = "idle"  # idle -> running -> draining -> closed
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ExecutionBackend | None = executor
        self._owns_executor = executor is None
        self._inflight: "set[asyncio.Future[BatchResult]]" = set()
        self._outstanding = 0
        self._closed_event: asyncio.Event | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def outstanding(self) -> int:
        """Admitted requests not yet answered (queued or dispatched)."""
        return self._outstanding

    def _ensure_running(self) -> None:
        loop = asyncio.get_running_loop()
        if self._state == "idle":
            self._loop = loop
            if self._executor is None:
                # Dedicated, not the engine's: a dispatch task blocks on
                # the engine-side scan fan-out, and sharing one pool
                # would let windows queue behind their own lane work.
                self._executor = resolve_backend(
                    "thread", max_workers=self.dispatch_workers, metrics=self.metrics
                )
            self._closed_event = asyncio.Event()
            self._state = "running"
        elif self._loop is not loop:
            raise ConfigurationError(
                "ServingEngine is bound to the event loop that first used it; "
                "create one ServingEngine per loop"
            )
        if self._state != "running":
            raise ServingClosed("serving is draining/closed; no new requests admitted")

    async def __aenter__(self) -> "ServingEngine":
        self._ensure_running()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.drain()

    async def drain(self) -> None:
        """Stop intake, flush every window, await in-flight dispatches.

        Safe against concurrent writers: dispatched windows hold the
        engine's reader lock only inside the executor threads, so a
        delta landing mid-drain serializes with them through the
        ordinary RWLock — nothing here blocks the event loop on that
        lock, hence no deadlock, and every admitted request still gets
        its answer (or its deadline error).
        """
        if self._state in ("idle", "closed"):
            self._state = "closed"
            return
        if self._state == "draining":
            assert self._closed_event is not None
            await self._closed_event.wait()
            return
        self._state = "draining"
        self.batcher.flush_all()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        if self._executor is not None and self._owns_executor:
            self._executor.close()
        self._state = "closed"
        assert self._closed_event is not None
        self._closed_event.set()

    # -- the request path --------------------------------------------------

    async def submit(
        self,
        query: str,
        method: str = "cts",
        k: int = 10,
        h: float = 0.0,
        tenant: str = DEFAULT_TENANT,
        timeout_ms: float | None = None,
    ) -> SearchResult:
        """Admit one query and await its batched result.

        Raises :class:`~repro.errors.RateLimited` /
        :class:`~repro.errors.QueueFull` at admission,
        :class:`~repro.errors.DeadlineExceeded` when ``timeout_ms``
        elapses before the window dispatches, and
        :class:`~repro.errors.ServingClosed` after :meth:`drain`.

        Admission order: deadline first (a dead-on-arrival request is
        shed before it can burn a token or a queue slot), then the
        tenant's token bucket, then the engine's semantic cache — a hit
        resolves right here, rate-limited but without ever taking a
        queue slot or a window seat — and only a genuine miss pays the
        queue-bound check and parks in a batching window.
        """
        self._ensure_running()
        now = self._clock()
        deadline = self.admission.deadline(timeout_ms, now)
        if deadline is not None and now >= deadline:
            self.metrics.counter("serving.shed").inc()
            self.metrics.gauge("serving.queue_depth").set(self._outstanding)
            raise DeadlineExceeded(
                "request was dead on arrival: its deadline expired before admission"
            )
        try:
            self.admission.charge_tenant(tenant, now)
        except RateLimited:
            self.metrics.counter("serving.throttled").inc()
            self.metrics.counter(f"serving.tenant.{tenant}.throttled").inc()
            raise
        # repro-lint: disable=RL008 -- deliberate: the lock-free cache probe is one bounded GEMM over at most cache-capacity query vectors (micro-seconds), cheaper on-loop than an executor round-trip
        cached = self._cached_result(query, method=method, k=k, h=h)
        if cached is not None:
            self.metrics.counter("serving.submitted").inc()
            self.metrics.counter("serving.cache_hits").inc()
            self.metrics.counter("serving.completed").inc()
            self.metrics.histogram("serving.e2e_ms").observe(
                (self._clock() - now) * 1000.0
            )
            return cached
        try:
            self.admission.check_queue(self._outstanding)
        except QueueFull:
            self.metrics.counter("serving.rejected").inc()
            raise
        assert self._loop is not None
        request = PendingRequest(
            query=query,
            key=BatchKey(method=method, k=k, h=h),
            tenant=tenant,
            future=self._loop.create_future(),
            enqueued=now,
            deadline=deadline,
        )
        self._outstanding += 1
        self.metrics.counter("serving.submitted").inc()
        self.metrics.gauge("serving.queue_depth").set(self._outstanding)
        self.batcher.add(request)
        return await request.future

    def _cached_result(
        self, query: str, method: str, k: int, h: float
    ) -> SearchResult | None:
        """Probe the engine's semantic cache from the event-loop thread.

        Lock-free by design: the cache validates every candidate against
        the generation the writer last published from under its write
        lock, so this probe never blocks the loop on the lifecycle lock.
        Racing a writer it serves either the pre-delta answer (the
        request overlaps the delta — linearizable) or nothing, in which
        case the request takes the ordinary locked window path.
        """
        cache = self.engine.query_cache
        if cache is None:
            return None
        hit = cache.lookup(
            CacheSignature(method=method, k=k, h=h),
            query,
            encode=lambda: self.engine._query_vector(query),
        )
        return None if hit is None else hit.as_result(query, method)

    def _dispatch_window(self, key: BatchKey, requests: "list[PendingRequest]") -> None:
        """One ready window (loop thread): shed the expired, run the rest.

        Shedding happens *here*, after queueing and before the engine,
        so expired work never costs a read-lock acquisition or a slot
        in the scan — and a window that sheds to empty never calls
        ``search_batch([])``, which would bump the engine's per-method
        batch counters for work that does not exist.
        """
        now = self._clock()
        live: list[PendingRequest] = []
        for request in requests:
            if request.expired(now):
                self._finish(
                    request,
                    error=DeadlineExceeded(
                        f"request deadline expired after {(now - request.enqueued) * 1000.0:.1f} ms "
                        "in the batching window"
                    ),
                )
                self.metrics.counter("serving.shed").inc()
            else:
                self.metrics.histogram("serving.queue_ms").observe(
                    (now - request.enqueued) * 1000.0
                )
                live.append(request)
        if not live:
            return
        self.metrics.counter("serving.batches").inc()
        self.metrics.histogram("serving.batch_fill").observe(float(len(live)))
        assert self._loop is not None and self._executor is not None
        task = asyncio.wrap_future(
            self._executor.submit(self._run_batch, key, live), loop=self._loop
        )
        self._inflight.add(task)
        task.add_done_callback(lambda done, batch=live: self._deliver(batch, done))

    def _run_batch(self, key: BatchKey, requests: "list[PendingRequest]") -> BatchResult:
        """One engine call per window (executor thread).

        Takes the engine's reader lock around the locked batch entry
        point, exactly like a direct ``search_batch`` caller — the
        whole window observes one complete federation generation.
        """
        queries = [request.query for request in requests]
        with self.metrics.timer("serving.dispatch_ms"):
            with self.engine.read_lock():
                return self.engine.search_batch_locked(
                    queries,
                    method=key.method,
                    k=key.k,
                    h=key.h,
                    workers=self.batch_workers,
                )

    def _deliver(
        self,
        requests: "list[PendingRequest]",
        done: "asyncio.Future[BatchResult]",
    ) -> None:
        """Fan one window's results back out to its futures (loop thread)."""
        self._inflight.discard(done)
        error = done.exception()
        if error is not None:
            for request in requests:
                self._finish(request, error=error)
            return
        results = done.result()
        now = self._clock()
        for request, result in zip(requests, results):
            self._finish(request, result=result)
            self.metrics.counter("serving.completed").inc()
            self.metrics.histogram("serving.e2e_ms").observe(
                (now - request.enqueued) * 1000.0
            )

    def _finish(
        self,
        request: PendingRequest,
        result: SearchResult | None = None,
        error: BaseException | None = None,
    ) -> None:
        """Resolve one request's future and retire its queue slot."""
        self._outstanding -= 1
        self.metrics.gauge("serving.queue_depth").set(self._outstanding)
        if request.future.done():  # caller timed out / cancelled the await
            return
        if error is not None:
            request.future.set_exception(error)
        else:
            assert result is not None
            request.future.set_result(result)
