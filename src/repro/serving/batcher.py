"""Micro-batching: coalesce concurrent single queries into engine batches.

The engine's ``search_batch`` kernels amortize encode and scan work
across a whole query block (one GEMM instead of N matrix-vector calls),
but served traffic arrives as many independent single-query ``submit``
calls.  The :class:`MicroBatcher` bridges the two shapes: requests
accumulate in per-:class:`BatchKey` windows and a window is dispatched
when it *fills* (``max_batch`` requests) or when it *ages out*
(``window_ms`` after its first request) — whichever comes first.  The
time trigger bounds the latency cost of batching at one window; the
size trigger caps it at zero under saturation, where windows fill
instantly.

Requests with different ``(method, k, h)`` must never share an engine
call — a CTS query cannot ride an ExS GEMM, and a ``k=5`` answer cut
from a ``k=100`` batch would rank identically but cost like the worst
request — so the key is the full dispatch signature and each key ages
independently.

The batcher is event-loop-confined: every method runs on the loop
thread that first touched it (timers are plain ``call_later`` handles),
so it needs no locks.  Dispatch is a callback — the batcher decides
*when* a window is ready, the serving engine decides *what* running it
means (shedding, executor hand-off, delivery).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.results import SearchResult
from repro.errors import ConfigurationError

__all__ = ["BatchKey", "MicroBatcher", "PendingRequest"]


@dataclass(frozen=True)
class BatchKey:
    """The dispatch signature a window shares: incompatible requests
    (different method, k or threshold) never coalesce."""

    method: str
    k: int
    h: float


@dataclass
class PendingRequest:
    """One admitted ``submit()`` waiting in a window.

    ``future`` resolves to the request's :class:`SearchResult` (or an
    error) on the loop that created it; ``deadline`` is an absolute
    monotonic timestamp past which the request is shed undispatched.
    """

    query: str
    key: BatchKey
    tenant: str
    future: "asyncio.Future[SearchResult]"
    enqueued: float = field(default_factory=time.monotonic)
    deadline: float | None = None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class MicroBatcher:
    """Time/size-windowed coalescing of pending requests, per key."""

    def __init__(
        self,
        window_ms: float,
        max_batch: int,
        dispatch: Callable[[BatchKey, "list[PendingRequest]"], None],
    ) -> None:
        if window_ms < 0.0:
            raise ConfigurationError("window_ms must be >= 0")
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        self.window_ms = window_ms
        self.max_batch = max_batch
        self._dispatch = dispatch
        self._pending: dict[BatchKey, list[PendingRequest]] = {}
        self._timers: dict[BatchKey, asyncio.TimerHandle] = {}
        self._loop: asyncio.AbstractEventLoop | None = None

    @property
    def depth(self) -> int:
        """Requests waiting in windows (excludes dispatched work)."""
        return sum(len(bucket) for bucket in self._pending.values())

    def add(self, request: PendingRequest) -> None:
        """Enqueue one request; may dispatch its window synchronously.

        The first request of a window arms the window timer; the
        ``max_batch``-th flushes the window immediately (cancelling the
        timer), so under saturation the time trigger never fires.
        """
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        bucket = self._pending.setdefault(request.key, [])
        bucket.append(request)
        if len(bucket) >= self.max_batch:
            self.flush(request.key)
        elif len(bucket) == 1:
            self._timers[request.key] = self._loop.call_later(
                self.window_ms / 1000.0, self.flush, request.key
            )

    def flush(self, key: BatchKey) -> None:
        """Dispatch one key's window now (no-op when already empty —
        a timer racing a size-trigger flush must not double-fire)."""
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        requests = self._pending.pop(key, [])
        # Chunk defensively: flush_all() can see an over-full bucket if
        # dispatch re-entrancy ever parks extra requests behind a key.
        for start in range(0, len(requests), self.max_batch):
            self._dispatch(key, requests[start : start + self.max_batch])

    def flush_all(self) -> None:
        """Dispatch every pending window (drain path)."""
        for key in list(self._pending):
            self.flush(key)
