"""Per-tenant token-bucket rate limiting for the serving front end.

A served federation is shared: one misbehaving client hammering
``submit()`` must not be able to starve everyone else's latency budget.
Each tenant gets an independent :class:`TokenBucket` — sustained
``rate`` requests/second with a ``burst`` allowance — so saturating one
bucket throttles only that tenant while the others keep being admitted.

Everything here is called from the serving event-loop thread only, so
the buckets carry no locks; the limiter is deterministic given the
injected clock, which is how the tests drive it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["DEFAULT_TENANT", "RateLimit", "TenantRateLimiter", "TokenBucket"]

#: Tenant id used when callers don't identify themselves.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class RateLimit:
    """A tenant's budget: ``rate`` requests/second sustained, up to
    ``burst`` queued instantaneously (the bucket's capacity)."""

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ConfigurationError("rate limit rate must be > 0 requests/second")
        if self.burst < 1.0:
            raise ConfigurationError("rate limit burst must allow at least one request")


class TokenBucket:
    """The classic leaky-bucket-as-meter: tokens refill continuously at
    ``limit.rate`` up to ``limit.burst``; each admitted request takes
    one.  Time is passed in, never read, so refill is testable."""

    __slots__ = ("limit", "_tokens", "_stamp")

    def __init__(self, limit: RateLimit, now: float = 0.0) -> None:
        self.limit = limit
        self._tokens = limit.burst
        self._stamp = now

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0.0:
            self._tokens = min(self.limit.burst, self._tokens + elapsed * self.limit.rate)
        self._stamp = max(self._stamp, now)

    def try_acquire(self, now: float) -> bool:
        """Take one token if available; ``False`` leaves the bucket as-is."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Seconds until one token will be available at the sustained rate."""
        self._refill(now)
        missing = 1.0 - self._tokens
        return max(0.0, missing / self.limit.rate)

    @property
    def tokens(self) -> float:
        return self._tokens


class TenantRateLimiter:
    """Lazily materialized per-tenant buckets.

    ``per_tenant`` pins explicit budgets; every other tenant gets a
    fresh bucket from ``default_limit`` on first sight.  A ``None``
    default admits unknown tenants unconditionally — rate limiting is
    opt-in, matching the engine's open-by-default posture.
    """

    def __init__(
        self,
        default_limit: RateLimit | None = None,
        per_tenant: "dict[str, RateLimit] | None" = None,
        now: float = 0.0,
    ) -> None:
        self.default_limit = default_limit
        self._limits = dict(per_tenant or {})
        self._buckets: dict[str, TokenBucket] = {
            tenant: TokenBucket(limit, now) for tenant, limit in self._limits.items()
        }

    def _bucket(self, tenant: str, now: float) -> TokenBucket | None:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            if self.default_limit is None:
                return None
            bucket = self._buckets[tenant] = TokenBucket(self.default_limit, now)
        return bucket

    def admit(self, tenant: str, now: float) -> float | None:
        """``None`` when admitted; otherwise the retry-after hint in
        seconds (and no token is consumed)."""
        bucket = self._bucket(tenant, now)
        if bucket is None or bucket.try_acquire(now):
            return None
        return bucket.retry_after(now)
