"""The relational data model from the paper's problem statement (Sec 3).

Names and values form attributes; tuples are sequences of attributes
sharing a schema; a relation is a set of tuples; a dataset is a set of
relations; a federation is a set of datasets.  The paper treats
*dataset* and *relation* interchangeably (single-relation datasets),
which :class:`~repro.datamodel.relation.Federation` supports directly.
"""

from repro.datamodel.loaders import relation_from_csv, relation_from_json
from repro.datamodel.relation import (
    Attribute,
    Dataset,
    Federation,
    Relation,
    Row,
)

__all__ = [
    "Attribute",
    "Dataset",
    "Federation",
    "Relation",
    "Row",
    "relation_from_csv",
    "relation_from_json",
]
