"""Load relations from CSV and JSON files."""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.datamodel.relation import Relation
from repro.errors import DataGenerationError

__all__ = ["relation_from_csv", "relation_from_json"]


def relation_from_csv(
    path: str | Path,
    name: str | None = None,
    caption: str = "",
    delimiter: str = ",",
) -> Relation:
    """Read a CSV file (first row = header) into a Relation.

    ``name`` defaults to the file stem.  Short rows are padded with
    empty strings; long rows are an error.
    """
    path = Path(path)
    with open(path, newline="") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DataGenerationError(f"{path} is empty") from None
        relation = Relation(name or path.stem, header, caption=caption)
        for line_no, row in enumerate(reader, start=2):
            if len(row) > len(header):
                raise DataGenerationError(
                    f"{path}:{line_no}: {len(row)} cells for {len(header)} columns"
                )
            if len(row) < len(header):
                row = row + [""] * (len(header) - len(row))
            relation.add_row(row)
    return relation


def relation_from_json(path: str | Path) -> Relation:
    """Read a relation from JSON.

    Expected shape::

        {"name": ..., "schema": [...], "rows": [[...], ...],
         "caption": ..., "metadata": {...}}
    """
    path = Path(path)
    with open(path) as fh:
        doc = json.load(fh)
    for key in ("name", "schema", "rows"):
        if key not in doc:
            raise DataGenerationError(f"{path}: missing key {key!r}")
    return Relation(
        doc["name"],
        doc["schema"],
        doc["rows"],
        caption=doc.get("caption", ""),
        metadata=doc.get("metadata"),
    )
