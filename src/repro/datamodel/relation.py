"""Attributes, rows, relations, datasets and federations.

Follows the paper's formal model (Sec 3): an attribute is a
(name, value) pair; a tuple (here :class:`Row`, to avoid clashing with
Python's ``tuple``) is a sequence of attributes; a relation is a finite
set of same-schema tuples; a dataset is a set of relations; a
federation is a finite set of datasets.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import NamedTuple

from repro.errors import ConfigurationError

__all__ = ["Attribute", "Row", "Relation", "Dataset", "Federation"]


class Attribute(NamedTuple):
    """A (name, value) pair; values are stored as strings.

    The paper defines values as alphanumeric; numeric cells keep their
    textual form so the encoder can treat numbers in context.
    """

    name: str
    value: str


class Row:
    """One tuple of a relation: attribute values aligned with a schema."""

    __slots__ = ("schema", "values")

    def __init__(self, schema: Sequence[str], values: Sequence[str]) -> None:
        if len(schema) != len(values):
            raise ConfigurationError(
                f"row has {len(values)} values for schema of {len(schema)}"
            )
        self.schema = tuple(schema)
        self.values = tuple(str(v) for v in values)

    @property
    def cardinality(self) -> int:
        """Number of attributes in the tuple."""
        return len(self.values)

    def attributes(self) -> Iterator[Attribute]:
        """Iterate (name, value) attribute pairs."""
        for name, value in zip(self.schema, self.values):
            yield Attribute(name, value)

    def __getitem__(self, name: str) -> str:
        try:
            return self.values[self.schema.index(name)]
        except ValueError:
            raise KeyError(name) from None

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.schema == other.schema and self.values == other.values

    def __hash__(self) -> int:
        return hash((self.schema, self.values))

    def __repr__(self) -> str:
        cells = ", ".join(f"{n}={v!r}" for n, v in self.attributes())
        return f"Row({cells})"


class Relation:
    """A named relation: a schema and its rows, plus optional context.

    ``caption`` and ``metadata`` carry the contextual elements
    (page/section titles, captions, descriptions) that both corpora in
    the paper's evaluation provide; baseline methods use these as
    separate ranking fields.
    """

    def __init__(
        self,
        name: str,
        schema: Sequence[str],
        rows: Sequence[Sequence[str]] = (),
        caption: str = "",
        metadata: dict[str, str] | None = None,
    ) -> None:
        if not name:
            raise ConfigurationError("relation name must be non-empty")
        if len(set(schema)) != len(schema):
            raise ConfigurationError(f"duplicate attribute names in schema {schema}")
        self.name = name
        self.schema = tuple(schema)
        self.caption = caption
        self.metadata = dict(metadata or {})
        self._rows: list[Row] = []
        for values in rows:
            self.add_row(values)

    # -- mutation -----------------------------------------------------

    def add_row(self, values: Sequence[str]) -> None:
        """Append a tuple; it must match the relation schema."""
        self._rows.append(Row(self.schema, values))

    # -- access -------------------------------------------------------

    @property
    def rows(self) -> list[Row]:
        return list(self._rows)

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    @property
    def num_columns(self) -> int:
        return len(self.schema)

    @property
    def num_cells(self) -> int:
        """Total attribute values (the unit the methods embed)."""
        return len(self._rows) * len(self.schema)

    def column(self, name: str) -> list[str]:
        """All values of one attribute."""
        try:
            idx = self.schema.index(name)
        except ValueError:
            raise KeyError(name) from None
        return [row.values[idx] for row in self._rows]

    def attributes(self) -> Iterator[Attribute]:
        """Every (name, value) pair of every tuple, row-major."""
        for row in self._rows:
            yield from row.attributes()

    def values(self) -> list[str]:
        """Every cell value, row-major — what gets embedded."""
        return [value for row in self._rows for value in row.values]

    def text_fields(self) -> dict[str, str]:
        """Context fields for multi-field baselines (MDR/WS/TCS)."""
        fields = {"caption": self.caption, "schema": " ".join(self.schema)}
        fields.update(self.metadata)
        return fields

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, {self.num_rows}x{self.num_columns}, "
            f"caption={self.caption!r})"
        )


class Dataset:
    """A named set of relations."""

    def __init__(self, name: str, relations: Sequence[Relation] = ()):
        if not name:
            raise ConfigurationError("dataset name must be non-empty")
        self.name = name
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.add_relation(relation)

    def add_relation(self, relation: Relation) -> None:
        if relation.name in self._relations:
            raise ConfigurationError(
                f"dataset {self.name!r} already has relation {relation.name!r}"
            )
        self._relations[relation.name] = relation

    @property
    def relations(self) -> list[Relation]:
        return list(self._relations.values())

    def relation(self, name: str) -> Relation:
        return self._relations[name]

    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())


class Federation:
    """A finite set of datasets; the search space of dataset discovery.

    Relations are addressed by qualified id ``"dataset/relation"``.
    :meth:`from_relations` wraps plain relations as single-relation
    datasets, matching the paper's convention of using *dataset* and
    *relation* interchangeably.
    """

    def __init__(self, name: str = "federation", datasets: Sequence[Dataset] = ()):
        self.name = name
        self._datasets: dict[str, Dataset] = {}
        for dataset in datasets:
            self.add_dataset(dataset)

    @classmethod
    def from_relations(
        cls, relations: Sequence[Relation], name: str = "federation"
    ) -> "Federation":
        """Build a federation of single-relation datasets."""
        federation = cls(name)
        for relation in relations:
            federation.add_dataset(Dataset(relation.name, [relation]))
        return federation

    def add_dataset(self, dataset: Dataset) -> None:
        if dataset.name in self._datasets:
            raise ConfigurationError(
                f"federation already has dataset {dataset.name!r}"
            )
        self._datasets[dataset.name] = dataset

    @property
    def datasets(self) -> list[Dataset]:
        return list(self._datasets.values())

    def dataset(self, name: str) -> Dataset:
        return self._datasets[name]

    def relations(self) -> Iterator[tuple[str, Relation]]:
        """Iterate (qualified_id, relation) over the whole federation."""
        for dataset in self._datasets.values():
            for relation in dataset:
                yield f"{dataset.name}/{relation.name}", relation

    def relation(self, qualified_id: str) -> Relation:
        """Look up a relation by its ``dataset/relation`` id."""
        dataset_name, _, relation_name = qualified_id.partition("/")
        return self._datasets[dataset_name].relation(relation_name)

    @property
    def num_relations(self) -> int:
        return sum(len(d) for d in self._datasets.values())

    def __len__(self) -> int:
        return len(self._datasets)

    def __iter__(self) -> Iterator[Dataset]:
        return iter(self._datasets.values())
