"""Ranking quality metrics: MAP, MRR, NDCG@k, precision/recall@k.

Conventions (matching the paper's evaluation, Sec 5.1):

* relevance is graded 0 / 1 / 2 (irrelevant / partial / full);
* for the binary metrics (AP, RR, P@k, R@k) any grade > 0 counts as
  relevant;
* NDCG uses the exponential gain ``2^grade - 1`` with log2 discounting
  and is reported at cut-offs 5, 10, 15, 20.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.errors import EvaluationError

__all__ = [
    "average_precision",
    "mean_average_precision",
    "reciprocal_rank",
    "mean_reciprocal_rank",
    "ndcg_at_k",
    "precision_at_k",
    "recall_at_k",
]

Grades = Mapping[str, int]


def _grade(qrels: Grades, doc_id: str) -> int:
    return int(qrels.get(doc_id, 0))


def average_precision(ranking: Sequence[str], qrels: Grades) -> float:
    """AP of one ranking; 0.0 when the query has no relevant documents."""
    n_relevant = sum(1 for g in qrels.values() if g > 0)
    if n_relevant == 0:
        return 0.0
    hits = 0
    total = 0.0
    for rank, doc_id in enumerate(ranking, start=1):
        if _grade(qrels, doc_id) > 0:
            hits += 1
            total += hits / rank
    return total / n_relevant


def reciprocal_rank(ranking: Sequence[str], qrels: Grades) -> float:
    """1/rank of the first relevant document (0.0 if none retrieved)."""
    for rank, doc_id in enumerate(ranking, start=1):
        if _grade(qrels, doc_id) > 0:
            return 1.0 / rank
    return 0.0


def precision_at_k(ranking: Sequence[str], qrels: Grades, k: int) -> float:
    """Fraction of the top-k that is relevant."""
    if k < 1:
        raise EvaluationError("k must be >= 1")
    top = ranking[:k]
    if not top:
        return 0.0
    return sum(1 for d in top if _grade(qrels, d) > 0) / k


def recall_at_k(ranking: Sequence[str], qrels: Grades, k: int) -> float:
    """Fraction of relevant documents found in the top-k."""
    if k < 1:
        raise EvaluationError("k must be >= 1")
    n_relevant = sum(1 for g in qrels.values() if g > 0)
    if n_relevant == 0:
        return 0.0
    return sum(1 for d in ranking[:k] if _grade(qrels, d) > 0) / n_relevant


def ndcg_at_k(ranking: Sequence[str], qrels: Grades, k: int) -> float:
    """Normalized discounted cumulative gain at cut-off ``k``.

    Gain ``2^grade - 1``, discount ``log2(rank + 1)``; the ideal DCG
    normalizer uses the best possible ordering of the judged documents.
    """
    if k < 1:
        raise EvaluationError("k must be >= 1")
    dcg = 0.0
    for rank, doc_id in enumerate(ranking[:k], start=1):
        gain = (2 ** _grade(qrels, doc_id)) - 1
        if gain:
            dcg += gain / math.log2(rank + 1)
    ideal = sorted((g for g in qrels.values() if g > 0), reverse=True)[:k]
    idcg = sum((2**g - 1) / math.log2(r + 1) for r, g in enumerate(ideal, start=1))
    return dcg / idcg if idcg > 0 else 0.0


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def mean_average_precision(
    rankings: Mapping[str, Sequence[str]], qrels_by_query: Mapping[str, Grades]
) -> float:
    """MAP over the queries present in ``qrels_by_query``."""
    return _mean(
        [average_precision(rankings.get(q, ()), qrels_by_query[q]) for q in qrels_by_query]
    )


def mean_reciprocal_rank(
    rankings: Mapping[str, Sequence[str]], qrels_by_query: Mapping[str, Grades]
) -> float:
    """MRR over the queries present in ``qrels_by_query``."""
    return _mean(
        [reciprocal_rank(rankings.get(q, ()), qrels_by_query[q]) for q in qrels_by_query]
    )
