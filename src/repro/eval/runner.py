"""Evaluate a retrieval method against qrels.

Produces the metric bundle the paper reports per (dataset, query
category, method) cell: MAP, MRR and NDCG at cut-offs 5/10/15/20.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.metrics import average_precision, ndcg_at_k, reciprocal_rank
from repro.eval.qrels import Qrels

__all__ = ["MethodReport", "evaluate_method"]

NDCG_CUTOFFS = (5, 10, 15, 20)


@dataclass
class MethodReport:
    """Aggregated quality metrics of one method on one query set."""

    method: str
    map: float
    mrr: float
    ndcg: dict[int, float]
    n_queries: int
    per_query_ap: dict[str, float] = field(default_factory=dict)

    def row(self) -> list[float]:
        """Values in the paper's column order: MAP MRR NDCG@5/10/15/20."""
        return [self.map, self.mrr] + [self.ndcg[k] for k in NDCG_CUTOFFS]


def evaluate_method(
    searcher,
    qrels: Qrels,
    k: int = 20,
    h: float | None = None,
    method_name: str | None = None,
) -> MethodReport:
    """Run every judged query through ``searcher`` and aggregate metrics.

    ``searcher`` is anything with ``search(query, k=..., h=...) ->
    SearchResult`` (the core methods and the baselines both qualify).
    ``h`` of None uses the searcher's own default threshold.
    """
    total_ap = 0.0
    total_rr = 0.0
    total_ndcg = {cutoff: 0.0 for cutoff in NDCG_CUTOFFS}
    per_query_ap: dict[str, float] = {}
    queries = qrels.queries()
    for query in queries:
        kwargs = {"k": k}
        if h is not None:
            kwargs["h"] = h
        result = searcher.search(query, **kwargs)
        ranking = result.relation_ids()
        grades = qrels.judgments(query).as_dict()
        ap = average_precision(ranking, grades)
        per_query_ap[query] = ap
        total_ap += ap
        total_rr += reciprocal_rank(ranking, grades)
        for cutoff in NDCG_CUTOFFS:
            total_ndcg[cutoff] += ndcg_at_k(ranking, grades, cutoff)
    n = max(len(queries), 1)
    return MethodReport(
        method=method_name or getattr(searcher, "name", type(searcher).__name__),
        map=total_ap / n,
        mrr=total_rr / n,
        ndcg={cutoff: v / n for cutoff, v in total_ndcg.items()},
        n_queries=len(queries),
        per_query_ap=per_query_ap,
    )
