"""Graded relevance judgments (qrels) in the WikiTables style.

The WikiTables benchmark ships query-table pairs graded on a
three-point scale — 0 irrelevant, 1 partially relevant, 2 fully
relevant — and the paper uses 3,117 such pairs (1,918 to tune ranking
weights, 1,199 to evaluate).  :class:`Qrels` stores judgments keyed by
query text.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import EvaluationError

__all__ = ["QueryJudgments", "Qrels"]

VALID_GRADES = (0, 1, 2)


class QueryJudgments:
    """Judgments of one query: relation_id -> grade."""

    def __init__(self, query: str, grades: dict[str, int] | None = None) -> None:
        self.query = query
        self._grades: dict[str, int] = {}
        for relation_id, grade in (grades or {}).items():
            self.judge(relation_id, grade)

    def judge(self, relation_id: str, grade: int) -> None:
        if grade not in VALID_GRADES:
            raise EvaluationError(f"grade must be one of {VALID_GRADES}, got {grade}")
        self._grades[relation_id] = grade

    def grade(self, relation_id: str) -> int:
        return self._grades.get(relation_id, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._grades)

    @property
    def n_relevant(self) -> int:
        return sum(1 for g in self._grades.values() if g > 0)

    def relevant_ids(self) -> set[str]:
        return {rid for rid, g in self._grades.items() if g > 0}

    def __len__(self) -> int:
        return len(self._grades)


class Qrels:
    """All judgments of a benchmark: query text -> QueryJudgments."""

    def __init__(self) -> None:
        self._by_query: dict[str, QueryJudgments] = {}

    def add(self, query: str, relation_id: str, grade: int) -> None:
        if query not in self._by_query:
            self._by_query[query] = QueryJudgments(query)
        self._by_query[query].judge(relation_id, grade)

    def judgments(self, query: str) -> QueryJudgments:
        if query not in self._by_query:
            raise EvaluationError(f"no judgments for query {query!r}")
        return self._by_query[query]

    def queries(self) -> list[str]:
        return sorted(self._by_query)

    def __contains__(self, query: str) -> bool:
        return query in self._by_query

    def __len__(self) -> int:
        return len(self._by_query)

    def __iter__(self) -> Iterator[QueryJudgments]:
        for query in self.queries():
            yield self._by_query[query]

    @property
    def n_pairs(self) -> int:
        """Total judged (query, relation) pairs."""
        return sum(len(j) for j in self._by_query.values())

    def pairs(self) -> list[tuple[str, str, int]]:
        """Flat (query, relation_id, grade) triples, deterministic order."""
        out = []
        for query in self.queries():
            judgments = self._by_query[query]
            for relation_id in sorted(judgments.as_dict()):
                out.append((query, relation_id, judgments.grade(relation_id)))
        return out

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[str, str, int]]) -> "Qrels":
        qrels = cls()
        for query, relation_id, grade in pairs:
            qrels.add(query, relation_id, grade)
        return qrels

    def restrict_to(self, relation_ids: set[str]) -> "Qrels":
        """Qrels filtered to a relation subset (for SD/MD partitions)."""
        out = Qrels()
        for query, relation_id, grade in self.pairs():
            if relation_id in relation_ids:
                out.add(query, relation_id, grade)
        return out

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        with open(path, "w") as fh:
            json.dump(
                {q: self._by_query[q].as_dict() for q in self.queries()}, fh, indent=1
            )

    @classmethod
    def load(cls, path: str | Path) -> "Qrels":
        with open(path) as fh:
            doc = json.load(fh)
        qrels = cls()
        for query, grades in doc.items():
            for relation_id, grade in grades.items():
                qrels.add(query, relation_id, int(grade))
        return qrels
