"""Train/test splitting of judged pairs.

The paper divides its 3,117 query-table pairs into 1,918 training
pairs (used to tune multi-field ranking weights and the trainable
baselines) and 1,199 evaluation pairs.  Splitting is by *query* so no
query's judgments leak across the boundary.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError
from repro.eval.qrels import Qrels

__all__ = ["train_test_split_pairs"]


def train_test_split_pairs(
    qrels: Qrels, train_fraction: float = 1918 / 3117, seed: int = 0
) -> tuple[Qrels, Qrels]:
    """Split qrels into train/test by query.

    ``train_fraction`` defaults to the paper's 1,918 / 3,117 pair
    ratio; queries are shuffled deterministically and assigned to the
    training side until its pair budget is filled.
    """
    if not 0.0 < train_fraction < 1.0:
        raise EvaluationError("train_fraction must be in (0, 1)")
    queries = qrels.queries()
    if len(queries) < 2:
        raise EvaluationError("need at least 2 queries to split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(queries))

    target_pairs = train_fraction * qrels.n_pairs
    train, test = Qrels(), Qrels()
    taken = 0
    for pos in order:
        query = queries[pos]
        judgments = qrels.judgments(query)
        side = train if taken < target_pairs else test
        if side is train:
            taken += len(judgments)
        for relation_id, grade in judgments.as_dict().items():
            side.add(query, relation_id, grade)
    if len(test) == 0:
        # Degenerate split (tiny benchmark): move the last query over.
        last_query = queries[order[-1]]
        moved = train.judgments(last_query)
        rebuilt = Qrels()
        for query, relation_id, grade in train.pairs():
            if query != last_query:
                rebuilt.add(query, relation_id, grade)
        for relation_id, grade in moved.as_dict().items():
            test.add(last_query, relation_id, grade)
        train = rebuilt
    return train, test
