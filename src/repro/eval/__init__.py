"""Evaluation substrate: graded relevance, IR metrics, splits, runners."""

from repro.eval.metrics import (
    average_precision,
    mean_average_precision,
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.eval.qrels import Qrels, QueryJudgments
from repro.eval.runner import MethodReport, evaluate_method
from repro.eval.significance import (
    SignificanceResult,
    compare_reports,
    paired_bootstrap,
    paired_t_test,
)
from repro.eval.splits import train_test_split_pairs
from repro.eval.timing import TimingReport, time_queries

__all__ = [
    "MethodReport",
    "Qrels",
    "SignificanceResult",
    "QueryJudgments",
    "TimingReport",
    "average_precision",
    "compare_reports",
    "evaluate_method",
    "mean_average_precision",
    "mean_reciprocal_rank",
    "ndcg_at_k",
    "paired_bootstrap",
    "paired_t_test",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
    "time_queries",
    "train_test_split_pairs",
]
