"""Query latency measurement (paper Sec 5.4, Table 4 and Figure 3)."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

__all__ = ["TimingReport", "time_queries"]


@dataclass
class TimingReport:
    """Latency statistics of one method over a query set."""

    method: str
    mean_ms: float
    median_ms: float
    p95_ms: float
    min_ms: float
    max_ms: float
    n_queries: int

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"{self.method}: mean {self.mean_ms:.1f}ms median {self.median_ms:.1f}ms "
            f"p95 {self.p95_ms:.1f}ms over {self.n_queries} queries"
        )


def time_queries(
    searcher,
    queries: list[str],
    k: int = 20,
    warmup: int = 1,
    repeats: int = 1,
    method_name: str | None = None,
) -> TimingReport:
    """Measure per-query search latency.

    ``warmup`` unmeasured passes populate caches (matching the paper's
    warm-index setting); each query is then timed ``repeats`` times and
    every measurement contributes to the statistics.
    """
    if not queries:
        raise ValueError("need at least one query to time")
    for _ in range(warmup):
        for query in queries:
            searcher.search(query, k=k)
    samples: list[float] = []
    for _ in range(repeats):
        for query in queries:
            start = time.perf_counter()
            searcher.search(query, k=k)
            samples.append((time.perf_counter() - start) * 1000.0)
    samples.sort()
    p95_index = min(len(samples) - 1, int(round(0.95 * (len(samples) - 1))))
    return TimingReport(
        method=method_name or getattr(searcher, "name", type(searcher).__name__),
        mean_ms=statistics.fmean(samples),
        median_ms=statistics.median(samples),
        p95_ms=samples[p95_index],
        min_ms=samples[0],
        max_ms=samples[-1],
        n_queries=len(queries),
    )
