"""Statistical significance of quality differences between methods.

The paper reports point estimates only; a careful reproduction should
say which gaps are meaningful.  Two standard IR tests over per-query
average-precision scores:

* paired t-test (via scipy) — the classic choice;
* paired bootstrap — distribution-free, preferred for small query sets
  like the 60-query benchmark here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import EvaluationError
from repro.eval.runner import MethodReport

__all__ = ["SignificanceResult", "paired_t_test", "paired_bootstrap", "compare_reports"]


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of one paired comparison (method A minus method B)."""

    method_a: str
    method_b: str
    mean_difference: float
    p_value: float
    n_queries: int
    test: str

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < alpha

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        marker = "*" if self.significant() else " "
        return (
            f"{self.method_a} - {self.method_b}: "
            f"dMAP={self.mean_difference:+.3f} p={self.p_value:.3f}{marker} "
            f"({self.test}, n={self.n_queries})"
        )


def _paired_scores(
    a: dict[str, float], b: dict[str, float]
) -> tuple[np.ndarray, np.ndarray]:
    shared = sorted(set(a) & set(b))
    if len(shared) < 2:
        raise EvaluationError("need at least 2 shared queries for a paired test")
    return (
        np.array([a[q] for q in shared]),
        np.array([b[q] for q in shared]),
    )


def paired_t_test(
    per_query_a: dict[str, float],
    per_query_b: dict[str, float],
    name_a: str = "A",
    name_b: str = "B",
) -> SignificanceResult:
    """Two-sided paired t-test on per-query scores."""
    scores_a, scores_b = _paired_scores(per_query_a, per_query_b)
    diff = scores_a - scores_b
    if np.allclose(diff, 0.0):
        # identical rankings: no evidence of any difference
        return SignificanceResult(name_a, name_b, 0.0, 1.0, len(diff), "paired-t")
    t_stat, p_value = stats.ttest_rel(scores_a, scores_b)
    return SignificanceResult(
        method_a=name_a,
        method_b=name_b,
        mean_difference=float(diff.mean()),
        p_value=float(p_value),
        n_queries=len(diff),
        test="paired-t",
    )


def paired_bootstrap(
    per_query_a: dict[str, float],
    per_query_b: dict[str, float],
    name_a: str = "A",
    name_b: str = "B",
    n_resamples: int = 2000,
    seed: int = 0,
) -> SignificanceResult:
    """Two-sided paired bootstrap test on the mean difference.

    Resamples queries with replacement; the p-value is twice the
    fraction of resampled mean differences whose sign disagrees with
    the observed one (clamped to 1).
    """
    scores_a, scores_b = _paired_scores(per_query_a, per_query_b)
    diff = scores_a - scores_b
    observed = float(diff.mean())
    if np.allclose(diff, 0.0):
        return SignificanceResult(name_a, name_b, 0.0, 1.0, len(diff), "bootstrap")
    rng = np.random.default_rng(seed)
    samples = rng.choice(diff, size=(n_resamples, diff.shape[0]), replace=True)
    means = samples.mean(axis=1)
    if observed >= 0:
        disagree = float(np.mean(means <= 0.0))
    else:
        disagree = float(np.mean(means >= 0.0))
    p_value = min(1.0, 2.0 * disagree)
    return SignificanceResult(
        method_a=name_a,
        method_b=name_b,
        mean_difference=observed,
        p_value=p_value,
        n_queries=len(diff),
        test="bootstrap",
    )


def compare_reports(
    report_a: MethodReport, report_b: MethodReport, test: str = "bootstrap"
) -> SignificanceResult:
    """Compare two MethodReports on their shared per-query AP scores."""
    if test == "bootstrap":
        return paired_bootstrap(
            report_a.per_query_ap, report_b.per_query_ap, report_a.method, report_b.method
        )
    if test == "t":
        return paired_t_test(
            report_a.per_query_ap, report_b.per_query_ap, report_a.method, report_b.method
        )
    raise EvaluationError(f"unknown test {test!r}; expected 'bootstrap' or 't'")
