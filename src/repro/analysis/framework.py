"""The invariant-linter framework: rules, findings, suppressions.

A :class:`Rule` inspects one parsed module (:class:`SourceModule`) and
yields :class:`Finding` objects; the :class:`Analyzer` parses files,
runs every rule and filters findings through ``repro-lint`` suppression
comments:

* ``# repro-lint: disable=RL001 -- reason`` silences the named rule(s)
  on that source line — or, when the comment stands on a line of its
  own, on the line that follows it;
* ``# repro-lint: disable-file=RL003 -- reason`` silences the rule(s)
  for the whole file (used when an entire module opts out of an
  invariant by design, e.g. PQ's float64 training pipeline).

Suppressions without a ``-- reason`` are honored but discouraged; the
repo convention is that every suppression says *why* the invariant does
not apply.
"""

from __future__ import annotations

import abc
import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

__all__ = [
    "Analyzer",
    "FileReport",
    "Finding",
    "Report",
    "Rule",
    "SourceModule",
    "Suppressions",
    "parse_suppressions",
]

#: ``# repro-lint: disable=RL001,RL002 -- optional reason``
_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>RL\d{3}(?:\s*,\s*RL\d{3})*)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)

#: Rule id used for findings about unparsable files.
PARSE_ERROR_RULE = "RL000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class SourceModule:
    """A parsed source file handed to every rule."""

    path: str
    text: str
    tree: ast.Module

    @property
    def posix_path(self) -> str:
        return self.path.replace("\\", "/")


@dataclass
class Suppressions:
    """Which rules are silenced where, parsed from lint comments."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule_id in self.file_wide:
            return True
        return finding.rule_id in self.by_line.get(finding.line, set())


def parse_suppressions(text: str) -> Suppressions:
    """Extract suppression directives from a module's comments.

    Comments are found with :mod:`tokenize` (not a regex over lines) so
    ``repro-lint:`` inside string literals never counts as a directive.
    """
    out = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for token in comments:
        match = _DIRECTIVE_RE.search(token.string)
        if match is None:
            continue
        rules = {r.strip() for r in match.group("rules").split(",")}
        if match.group("scope") == "disable-file":
            out.file_wide |= rules
        else:
            out.by_line.setdefault(token.start[0], set()).update(rules)
            # A directive standing alone on its line covers the next
            # line too, so long statements can carry a full reason.
            if token.line.lstrip().startswith("#"):
                out.by_line.setdefault(token.start[0] + 1, set()).update(rules)
    return out


class Rule(abc.ABC):
    """One invariant, checked per module.

    Subclasses set ``rule_id`` (``RLxxx``) and ``title`` and implement
    :meth:`check`; :meth:`finding` is the convenience constructor that
    anchors a message to an AST node.
    """

    rule_id: str = "RL999"
    title: str = ""

    @abc.abstractmethod
    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass(frozen=True)
class FileReport:
    """One file's outcome: surviving findings + how many were silenced."""

    findings: tuple[Finding, ...]
    n_suppressed: int


@dataclass(frozen=True)
class Report:
    """A whole run: every unsuppressed finding across the scanned files."""

    findings: tuple[Finding, ...]
    n_files: int
    n_suppressed: int

    @property
    def ok(self) -> bool:
        return not self.findings


class Analyzer:
    """Run a rule set over source text or file trees."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules: tuple[Rule, ...] = tuple(rules)

    def check_source(self, text: str, path: str) -> FileReport:
        """Lint one module given as text (``path`` scopes path-aware
        rules and labels findings — it need not exist on disk)."""
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            finding = Finding(
                rule_id=PARSE_ERROR_RULE,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
            return FileReport(findings=(finding,), n_suppressed=0)
        module = SourceModule(path=path, text=text, tree=tree)
        suppressions = parse_suppressions(text)
        kept: list[Finding] = []
        n_suppressed = 0
        for rule in self.rules:
            for finding in rule.check(module):
                if suppressions.is_suppressed(finding):
                    n_suppressed += 1
                else:
                    kept.append(finding)
        kept.sort(key=lambda f: (f.line, f.col, f.rule_id))
        return FileReport(findings=tuple(kept), n_suppressed=n_suppressed)

    def check_paths(self, paths: Iterable[str | Path]) -> Report:
        """Lint files and directory trees (``.py`` files, recursively)."""
        files = sorted(self._collect(paths))
        findings: list[Finding] = []
        n_suppressed = 0
        for file_path in files:
            report = self.check_source(
                file_path.read_text(encoding="utf-8"), str(file_path)
            )
            findings.extend(report.findings)
            n_suppressed += report.n_suppressed
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return Report(
            findings=tuple(findings), n_files=len(files), n_suppressed=n_suppressed
        )

    @staticmethod
    def _collect(paths: Iterable[str | Path]) -> Iterator[Path]:
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                for file_path in path.rglob("*.py"):
                    if "__pycache__" not in file_path.parts:
                        yield file_path
            elif path.suffix == ".py":
                yield path
            else:
                raise FileNotFoundError(f"not a .py file or directory: {path}")
