"""The invariant-linter framework: rules, findings, suppressions.

A :class:`Rule` inspects one parsed module (:class:`SourceModule`) and
yields :class:`Finding` objects; the :class:`Analyzer` parses files,
runs every rule and filters findings through ``repro-lint`` suppression
comments:

* ``# repro-lint: disable=RL001 -- reason`` silences the named rule(s)
  on that source line — or, when the comment stands on a line of its
  own, on the line that follows it;
* ``# repro-lint: disable-file=RL003 -- reason`` silences the rule(s)
  for the whole file (used when an entire module opts out of an
  invariant by design, e.g. PQ's float64 training pipeline).

Suppressions without a ``-- reason`` are honored but discouraged; the
repo convention is that every suppression says *why* the invariant does
not apply.
"""

from __future__ import annotations

import abc
import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.analysis.cache import AnalysisCache
    from repro.analysis.callgraph import CallGraph

__all__ = [
    "Analyzer",
    "FileReport",
    "Finding",
    "ProjectRule",
    "Report",
    "Rule",
    "RunResult",
    "RunStats",
    "SourceModule",
    "SuppressionRecord",
    "Suppressions",
    "parse_suppressions",
]

#: Directive shape: ``repro-lint: disable=RLxxx[,RLyyy] -- optional reason``
#: (written as a ``#`` comment; ``disable-file`` widens scope to the file).
_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>RL\d{3}(?:\s*,\s*RL\d{3})*)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)

#: Rule id used for findings about unparsable files.
PARSE_ERROR_RULE = "RL000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class SourceModule:
    """A parsed source file handed to every rule."""

    path: str
    text: str
    tree: ast.Module

    @property
    def posix_path(self) -> str:
        return self.path.replace("\\", "/")


@dataclass
class SuppressionRecord:
    """One ``# repro-lint: disable…`` directive, with its reason."""

    line: int
    scope: str  #: ``"disable"`` or ``"disable-file"``
    rules: frozenset[str]
    reason: str | None
    used: bool = False  #: did this directive silence a finding this run?


@dataclass
class Suppressions:
    """Which rules are silenced where, parsed from lint comments."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)
    records: list[SuppressionRecord] = field(default_factory=list)
    _line_records: dict[tuple[int, str], SuppressionRecord] = field(
        default_factory=dict, repr=False
    )
    _file_records: dict[str, SuppressionRecord] = field(default_factory=dict, repr=False)

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule_id in self.file_wide:
            record = self._file_records.get(finding.rule_id)
            if record is not None:
                record.used = True
            return True
        if finding.rule_id in self.by_line.get(finding.line, set()):
            record = self._line_records.get((finding.line, finding.rule_id))
            if record is not None:
                record.used = True
            return True
        return False


def parse_suppressions(text: str) -> Suppressions:
    """Extract suppression directives from a module's comments.

    Comments are found with :mod:`tokenize` (not a regex over lines) so
    ``repro-lint:`` inside string literals never counts as a directive.
    """
    out = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for token in comments:
        match = _DIRECTIVE_RE.search(token.string)
        if match is None:
            continue
        rules = {r.strip() for r in match.group("rules").split(",")}
        record = SuppressionRecord(
            line=token.start[0],
            scope=match.group("scope"),
            rules=frozenset(rules),
            reason=match.group("reason"),
        )
        out.records.append(record)
        if match.group("scope") == "disable-file":
            out.file_wide |= rules
            for rule_id in rules:
                out._file_records.setdefault(rule_id, record)
        else:
            out.by_line.setdefault(token.start[0], set()).update(rules)
            for rule_id in rules:
                out._line_records.setdefault((token.start[0], rule_id), record)
            # A directive standing alone on its line covers the next
            # line too, so long statements can carry a full reason.
            if token.line.lstrip().startswith("#"):
                out.by_line.setdefault(token.start[0] + 1, set()).update(rules)
                for rule_id in rules:
                    out._line_records.setdefault((token.start[0] + 1, rule_id), record)
    return out


class Rule(abc.ABC):
    """One invariant, checked per module.

    Subclasses set ``rule_id`` (``RLxxx``) and ``title`` and implement
    :meth:`check`; :meth:`finding` is the convenience constructor that
    anchors a message to an AST node.
    """

    rule_id: str = "RL999"
    title: str = ""

    @abc.abstractmethod
    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(abc.ABC):
    """One invariant checked over the whole project at once.

    Project rules see the :class:`~repro.analysis.callgraph.CallGraph`
    built from every scanned module's summary, so they can chase an
    obligation across files (RL007's lock discipline, RL008's event-loop
    reachability).  Findings anchor to a path+line like any other and
    pass through the same per-file suppression machinery.
    """

    rule_id: str = "RL999"
    title: str = ""

    @abc.abstractmethod
    def check_project(self, graph: "CallGraph") -> Iterator[Finding]:
        """Yield every violation across the project call graph."""

    def finding_at(self, path: str, line: int, col: int, message: str) -> Finding:
        return Finding(rule_id=self.rule_id, path=path, line=line, col=col, message=message)


@dataclass(frozen=True)
class FileReport:
    """One file's outcome: surviving findings + how many were silenced."""

    findings: tuple[Finding, ...]
    n_suppressed: int


@dataclass(frozen=True)
class RunStats:
    """Where a run spent its time, and what the cache did for it."""

    n_files: int
    cache_hits: int
    cache_misses: int
    parse_ms: float  #: parse + per-module rules + summaries (cacheable)
    project_ms: float  #: call-graph build + project rules
    total_ms: float

    def format(self) -> str:
        return (
            f"{self.n_files} file(s): parse+local {self.parse_ms:.1f} ms, "
            f"call-graph+flow {self.project_ms:.1f} ms, total {self.total_ms:.1f} ms "
            f"(cache: {self.cache_hits} hit(s), {self.cache_misses} miss(es))"
        )


@dataclass(frozen=True)
class Report:
    """A whole run: every unsuppressed finding across the scanned files."""

    findings: tuple[Finding, ...]
    n_files: int
    n_suppressed: int
    stats: RunStats | None = None

    @property
    def ok(self) -> bool:
        return not self.findings


@dataclass(frozen=True)
class RunResult:
    """A report plus the per-file suppression state behind it."""

    report: Report
    suppressions: dict[str, Suppressions]


class Analyzer:
    """Run per-module rules and project (call-graph) rules over a tree."""

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        project_rules: "Sequence[ProjectRule] | None" = None,
    ) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        if project_rules is None:
            from repro.analysis.flowrules import default_project_rules

            project_rules = default_project_rules()
        self.rules: tuple[Rule, ...] = tuple(rules)
        self.project_rules: tuple[ProjectRule, ...] = tuple(project_rules)

    def signature(self) -> str:
        """Fingerprint of the active rule set (keys the analysis cache)."""
        names = [f"{r.rule_id}:{type(r).__name__}" for r in self.rules]
        names += [f"{r.rule_id}:{type(r).__name__}" for r in self.project_rules]
        return ",".join(sorted(names))

    def check_source(self, text: str, path: str) -> FileReport:
        """Lint one module given as text (``path`` scopes path-aware
        rules and labels findings — it need not exist on disk).

        Project rules run over a single-module call graph, so fixtures
        exercise RL007+ as long as caller and callee share the file.
        """
        from repro.analysis.callgraph import CallGraph, summarize_module

        posix = path.replace("\\", "/")
        module, parse_findings = self._parse(text, posix)
        suppressions = parse_suppressions(text)
        raw: list[Finding] = list(parse_findings)
        if module is not None:
            for rule in self.rules:
                raw.extend(rule.check(module))
            graph = CallGraph([summarize_module(module)])
            for project_rule in self.project_rules:
                raw.extend(project_rule.check_project(graph))
        kept: list[Finding] = []
        n_suppressed = 0
        for finding in raw:
            if suppressions.is_suppressed(finding):
                n_suppressed += 1
            else:
                kept.append(finding)
        kept.sort(key=lambda f: (f.line, f.col, f.rule_id))
        return FileReport(findings=tuple(kept), n_suppressed=n_suppressed)

    @staticmethod
    def _parse(
        text: str, path: str
    ) -> "tuple[SourceModule | None, tuple[Finding, ...]]":
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            finding = Finding(
                rule_id=PARSE_ERROR_RULE,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
            return None, (finding,)
        return SourceModule(path=path, text=text, tree=tree), ()

    def check_paths(
        self, paths: Iterable[str | Path], cache: "AnalysisCache | None" = None
    ) -> Report:
        """Lint files and directory trees (``.py`` files, recursively)."""
        return self.run(paths, cache=cache).report

    def run(
        self, paths: Iterable[str | Path], cache: "AnalysisCache | None" = None
    ) -> RunResult:
        """Full two-phase run, keeping per-file suppression state.

        Phase one parses each file, runs the per-module rules and
        extracts its call-graph summary — all keyed by content hash in
        the optional ``cache``, so unchanged files skip the parse
        entirely.  Phase two builds the project call graph from the
        summaries and runs the project rules.  Suppressions are always
        re-read from the live text (they are comments; the cached
        findings are pre-suppression).
        """
        from repro.analysis.callgraph import CallGraph, ModuleSummary, summarize_module

        started = time.perf_counter()
        files = sorted(self._collect(paths))
        suppressions: dict[str, Suppressions] = {}
        raw_findings: list[Finding] = []
        summaries: list[ModuleSummary] = []
        hits = misses = 0
        for file_path in files:
            text = file_path.read_text(encoding="utf-8")
            posix = str(file_path).replace("\\", "/")
            suppressions[posix] = parse_suppressions(text)
            cached = cache.lookup(posix, text, self.signature()) if cache else None
            if cached is not None:
                hits += 1
                file_findings, summary = cached
            else:
                misses += 1
                module, file_findings_t = self._parse(text, posix)
                file_findings = list(file_findings_t)
                summary = None
                if module is not None:
                    for rule in self.rules:
                        file_findings.extend(rule.check(module))
                    summary = summarize_module(module)
                if cache is not None:
                    cache.store(posix, text, self.signature(), file_findings, summary)
            raw_findings.extend(file_findings)
            if summary is not None:
                summaries.append(summary)
        parse_done = time.perf_counter()

        graph = CallGraph(summaries)
        for project_rule in self.project_rules:
            raw_findings.extend(project_rule.check_project(graph))
        project_done = time.perf_counter()

        if cache is not None:
            cache.save()
        kept: list[Finding] = []
        n_suppressed = 0
        for finding in raw_findings:
            sup = suppressions.get(finding.path)
            if sup is not None and sup.is_suppressed(finding):
                n_suppressed += 1
            else:
                kept.append(finding)
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        stats = RunStats(
            n_files=len(files),
            cache_hits=hits,
            cache_misses=misses,
            parse_ms=(parse_done - started) * 1000.0,
            project_ms=(project_done - parse_done) * 1000.0,
            total_ms=(time.perf_counter() - started) * 1000.0,
        )
        report = Report(
            findings=tuple(kept),
            n_files=len(files),
            n_suppressed=n_suppressed,
            stats=stats,
        )
        return RunResult(report=report, suppressions=suppressions)

    @staticmethod
    def _collect(paths: Iterable[str | Path]) -> Iterator[Path]:
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                for file_path in path.rglob("*.py"):
                    if "__pycache__" not in file_path.parts:
                        yield file_path
            elif path.suffix == ".py":
                yield path
            else:
                raise FileNotFoundError(f"not a .py file or directory: {path}")
