"""Project-wide call-graph extraction for the flow rules.

Each module is summarised once into a :class:`ModuleSummary` — every
function/method with its concurrency annotations, ``async``-ness and
call sites (including the strongest lifecycle-lock ``with`` block each
call sits under).  Summaries are plain data: they serialise to JSON for
the analysis cache, so warm ``repro-lint`` runs rebuild the project
:class:`CallGraph` without re-parsing unchanged files.

Resolution is name-based and deliberately conservative (this is Python:
no types, no linker):

* bare calls (``helper(x)``) resolve within the defining module only;
* ``self.m(...)`` resolves to ``m`` in the caller's own class when the
  class defines it, else to any method named ``m`` project-wide
  (inheritance);
* ``<expr>.m(...)`` resolves to every method named ``m`` in the
  project — over-approximate, which is the right direction for
  reachability rules;
* a *bare function reference* passed as an argument
  (``executor.submit(self._run_batch, ...)``) creates **no** edge: the
  callable crosses an executor boundary, which is exactly the hop
  RL008 treats as leaving the event loop.

Soundness limits — dynamic dispatch through stored callables
(``self._dispatch(...)`` where ``_dispatch`` is a constructor
argument), ``getattr`` indirection and monkey-patching — are
documented in DESIGN.md; the rules built on top are tuned so the
approximation errs toward silence, with suppressions for the rest.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.analysis.framework import SourceModule

__all__ = ["CallGraph", "CallSite", "FunctionInfo", "ModuleSummary", "summarize_module"]

#: ``with`` items treated as taking the lifecycle lock, by mode.
_LOCK_ENTER_MODES: Mapping[str, str] = {
    "read": "read",
    "read_lock": "read",
    "write": "write",
}


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    name: str  #: final identifier: ``m`` for ``x.y.m(...)`` and ``m(...)``
    receiver: str | None  #: dotted receiver text (``self``, ``self.engine``) or None
    line: int
    col: int
    lock_ctx: str | None  #: strongest enclosing lock ``with`` ("read"/"write")
    in_withitem: bool  #: the call is itself a ``with`` item (lock acquisition)

    @property
    def bare(self) -> bool:
        return self.receiver is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "receiver": self.receiver,
            "line": self.line,
            "col": self.col,
            "lock_ctx": self.lock_ctx,
            "in_withitem": self.in_withitem,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CallSite":
        return cls(
            name=data["name"],
            receiver=data["receiver"],
            line=data["line"],
            col=data["col"],
            lock_ctx=data["lock_ctx"],
            in_withitem=data["in_withitem"],
        )


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method, as the flow rules see it."""

    module: str  #: posix path of the defining module
    qualname: str  #: ``Class.method`` / ``func`` / ``outer.<locals>.inner``
    name: str
    cls: str | None
    line: int
    is_async: bool
    requires_lock: str | None
    calls: tuple[CallSite, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "cls": self.cls,
            "line": self.line,
            "is_async": self.is_async,
            "requires_lock": self.requires_lock,
            "calls": [c.to_dict() for c in self.calls],
        }

    @classmethod
    def from_dict(cls, module: str, data: Mapping[str, Any]) -> "FunctionInfo":
        return cls(
            module=module,
            qualname=data["qualname"],
            name=data["name"],
            cls=data["cls"],
            line=data["line"],
            is_async=data["is_async"],
            requires_lock=data["requires_lock"],
            calls=tuple(CallSite.from_dict(c) for c in data["calls"]),
        )


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the project pass needs to know about one module."""

    path: str  #: posix path
    functions: tuple[FunctionInfo, ...]

    def to_dict(self) -> dict[str, Any]:
        return {"path": self.path, "functions": [f.to_dict() for f in self.functions]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModuleSummary":
        path = data["path"]
        return cls(
            path=path,
            functions=tuple(FunctionInfo.from_dict(path, f) for f in data["functions"]),
        )


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` rendered as text; None for anything non-trivial."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _requires_lock(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> str | None:
    for decorator in func.decorator_list:
        call = decorator if isinstance(decorator, ast.Call) else None
        if call is None:
            continue
        name = None
        if isinstance(call.func, ast.Name):
            name = call.func.id
        elif isinstance(call.func, ast.Attribute):
            name = call.func.attr
        if name == "requires_lock" and call.args:
            arg = call.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
    return None


def _withitem_lock_mode(item: ast.withitem) -> str | None:
    """``<expr>.read()`` / ``.write()`` / ``.read_lock()`` as a with item."""
    ctx = item.context_expr
    if isinstance(ctx, ast.Call) and isinstance(ctx.func, ast.Attribute):
        return _LOCK_ENTER_MODES.get(ctx.func.attr)
    return None


def _strongest(*modes: str | None) -> str | None:
    if "write" in modes:
        return "write"
    if "read" in modes:
        return "read"
    return None


class _FunctionCollector:
    """Collects the call sites of one function body."""

    def __init__(self) -> None:
        self.calls: list[CallSite] = []
        self.nested: list[tuple[ast.AST, str]] = []  # (def node, qual prefix)

    def block(self, stmts: Sequence[ast.stmt], qual: str, ctx: str | None) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.nested.append((stmt, qual))
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = ctx
                for item in stmt.items:
                    self._expr(item.context_expr, ctx, withitem=True)
                    if item.optional_vars is not None:
                        self._expr(item.optional_vars, ctx)
                    inner = _strongest(inner, _withitem_lock_mode(item))
                self.block(stmt.body, qual, inner)
                continue
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._expr(value, ctx)
                elif isinstance(value, ast.withitem):  # pragma: no cover - handled above
                    self._expr(value.context_expr, ctx, withitem=True)
            for block_name in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, block_name, None)
                if isinstance(nested, list) and nested and isinstance(nested[0], ast.stmt):
                    self.block(nested, qual, ctx)
            for handler in getattr(stmt, "handlers", []) or []:
                if handler.type is not None:
                    self._expr(handler.type, ctx)
                self.block(handler.body, qual, ctx)
            for case in getattr(stmt, "cases", []) or []:
                self.block(case.body, qual, ctx)

    def _expr(self, expr: ast.expr, ctx: str | None, withitem: bool = False) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                name, receiver = func.id, None
            elif isinstance(func, ast.Attribute):
                name = func.attr
                receiver = _dotted(func.value) or "<expr>"
            else:
                continue
            self.calls.append(
                CallSite(
                    name=name,
                    receiver=receiver,
                    line=node.lineno,
                    col=node.col_offset,
                    lock_ctx=ctx,
                    in_withitem=withitem and node is expr,
                )
            )


def _collect_function(
    module_path: str,
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
    qualname: str,
    cls: str | None,
) -> Iterator[FunctionInfo]:
    collector = _FunctionCollector()
    collector.block(node.body, qualname, None)
    yield FunctionInfo(
        module=module_path,
        qualname=qualname,
        name=node.name,
        cls=cls,
        line=node.lineno,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        requires_lock=_requires_lock(node),
        calls=tuple(collector.calls),
    )
    for nested, prefix in collector.nested:
        yield from _collect_defs(module_path, nested, f"{prefix}.<locals>", cls)


def _collect_defs(
    module_path: str, node: ast.AST, prefix: str, cls: str | None
) -> Iterator[FunctionInfo]:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        qual = f"{prefix}.{node.name}" if prefix else node.name
        yield from _collect_function(module_path, node, qual, cls)
    elif isinstance(node, ast.ClassDef):
        qual = f"{prefix}.{node.name}" if prefix else node.name
        for item in node.body:
            yield from _collect_defs(module_path, item, qual, node.name)


def summarize_module(module: SourceModule) -> ModuleSummary:
    """Extract the call-graph summary of one parsed module."""
    functions: list[FunctionInfo] = []
    for node in module.tree.body:
        functions.extend(_collect_defs(module.posix_path, node, "", None))
    return ModuleSummary(path=module.posix_path, functions=tuple(functions))


class CallGraph:
    """Name-based resolution over every module summary in a run."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.summaries = tuple(summaries)
        self.functions: tuple[FunctionInfo, ...] = tuple(
            f for s in self.summaries for f in s.functions
        )
        self._methods: dict[str, list[FunctionInfo]] = {}
        self._by_class: dict[tuple[str, str, str], FunctionInfo] = {}
        self._module_local: dict[tuple[str, str], list[FunctionInfo]] = {}
        for info in self.functions:
            if info.cls is not None:
                self._methods.setdefault(info.name, []).append(info)
                self._by_class.setdefault((info.module, info.cls, info.name), info)
            else:
                self._module_local.setdefault((info.module, info.name), []).append(info)

    def methods_named(self, name: str) -> Sequence[FunctionInfo]:
        """Every method (class-scoped function) with this bare name."""
        return self._methods.get(name, ())

    def class_method(self, caller: FunctionInfo, name: str) -> FunctionInfo | None:
        """``name`` defined on the caller's own class, if any."""
        if caller.cls is None:
            return None
        return self._by_class.get((caller.module, caller.cls, name))

    def resolve(self, caller: FunctionInfo, call: CallSite) -> Sequence[FunctionInfo]:
        """Candidate callees for one call site (possibly empty)."""
        if call.bare:
            return self._module_local.get((caller.module, call.name), ())
        if call.receiver == "self":
            own = self.class_method(caller, call.name)
            if own is not None:
                return (own,)
        return self.methods_named(call.name)
