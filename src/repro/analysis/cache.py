"""Content-hash-keyed per-file analysis cache for ``repro-lint``.

Phase one of a run (parse + per-module rules + call-graph summary) is
embarrassingly per-file, so its results are cached under
``sha256(file text)`` — not path + mtime, so a ``git checkout`` that
restores an old file is still a hit, and a touched-but-unchanged file
never re-parses.  The active rule set's signature is part of the key:
adding or removing a rule invalidates everything, silently stale
results are impossible.

Cached per file: the *pre-suppression* local findings (suppressions are
comments, re-read from the live text every run — editing only a
``# repro-lint:`` line must take effect without a cache miss) and the
serialized :class:`~repro.analysis.callgraph.ModuleSummary` feeding the
project phase.  Project rules (RL007/RL008) always run — they are
cross-file by construction — but on a warm cache they are the *only*
work left.

The store is one JSON file, written atomically (tmp + rename) so a
crashed run never leaves a torn cache, and versioned so format changes
invalidate cleanly.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.analysis.callgraph import ModuleSummary
from repro.analysis.framework import Finding

__all__ = ["AnalysisCache"]

#: Bump when the on-disk layout changes; old caches are dropped whole.
_FORMAT = 2


class AnalysisCache:
    """Per-file (findings, module summary) memo keyed by content hash."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if isinstance(raw, dict) and raw.get("format") == _FORMAT:
            entries = raw.get("entries")
            if isinstance(entries, dict):
                self._entries = entries

    @staticmethod
    def _key(path: str, text: str, signature: str) -> str:
        digest = hashlib.sha256()
        digest.update(signature.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(text.encode("utf-8"))
        return digest.hexdigest()

    def lookup(
        self, path: str, text: str, signature: str
    ) -> "tuple[list[Finding], ModuleSummary | None] | None":
        """The cached (pre-suppression findings, summary), or None.

        ``path`` re-labels cached findings, so a file moved without
        content changes stays a hit with correctly-pathed findings.
        """
        entry = self._entries.get(self._key(path, text, signature))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        findings = [
            Finding(
                rule_id=f["rule_id"],
                path=path,
                line=f["line"],
                col=f["col"],
                message=f["message"],
            )
            for f in entry["findings"]
        ]
        summary = None
        if entry["summary"] is not None:
            summary = ModuleSummary.from_dict({**entry["summary"], "path": path})
        return findings, summary

    def store(
        self,
        path: str,
        text: str,
        signature: str,
        findings: "list[Finding]",
        summary: "ModuleSummary | None",
    ) -> None:
        self._entries[self._key(path, text, signature)] = {
            "findings": [
                {
                    "rule_id": f.rule_id,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                }
                for f in findings
            ],
            "summary": summary.to_dict() if summary is not None else None,
        }
        self._dirty = True

    def save(self) -> None:
        """Atomically persist (tmp + rename); no-op when unchanged."""
        if not self._dirty:
            return
        payload = json.dumps({"format": _FORMAT, "entries": self._entries})
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + f".tmp-{os.getpid()}")
        tmp.write_text(payload, encoding="utf-8")
        tmp.replace(self.path)
        self._dirty = False
