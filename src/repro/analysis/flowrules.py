"""Flow-sensitive and interprocedural rules (RL007-RL010).

These rules ride on :mod:`repro.analysis.callgraph` (project-wide,
name-based call resolution) and :mod:`repro.analysis.flow` (per-function
CFGs + a forward dataflow solver):

* **RL007** — interprocedural lock discipline: every call into a
  function annotated ``@requires_lock("read"/"write")`` must come from
  a context that holds the right lock side — an enclosing
  ``with <lock>.read()/.write():`` block, or a caller itself annotated
  at least as strongly.  The obligation propagates *up* the call graph:
  the fix is either to take the lock at the call site or to annotate
  the calling function and push the obligation to *its* callers.
* **RL008** — event-loop hygiene: nothing blocking (``time.sleep``,
  file/storage I/O, lifecycle-lock acquisition, GEMM-sized linear
  algebra, ``ExecutionBackend.map``) may be reachable from an
  ``async def`` body in :mod:`repro.serving` without an executor hop
  (``submit``/``run_in_executor``/``to_thread`` — and bare function
  references passed as arguments never create call edges, so executor
  dispatch breaks the path automatically).
* **RL009** — buffer/resource lifecycle: every acquisition of a
  ``SharedBuffer``/``MappedBuffer``/``SegmentWriter`` handle must reach
  a ``close()``/``release()``/``commit()``/context-manager exit on all
  CFG paths, *including exceptional edges* (``SegmentWriter`` is exempt
  on exceptional paths: an uncommitted segment is crash-safe by
  design — readers never see it).
* **RL010** — generation monotonicity: fields declared via
  ``@monotonic("field", ...)`` may only be written as an increment
  (``+= <positive literal>``) or a publish derived from the field's own
  prior value, and only under the writer lock.

RL007/RL008 are :class:`~repro.analysis.framework.ProjectRule`\\ s (they
need the whole call graph); RL009/RL010 are per-module rules and join
:func:`repro.analysis.rules.default_rules`, so they participate in the
per-file analysis cache.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Iterator, Mapping, Sequence

from repro.analysis.callgraph import CallGraph, CallSite, FunctionInfo
from repro.analysis.flow import CFG, build_cfg, solve_forward
from repro.analysis.framework import Finding, ProjectRule, Rule, SourceModule

__all__ = [
    "EventLoopHygieneRule",
    "GenerationMonotonicityRule",
    "InterproceduralLockRule",
    "ResourceLifecycleRule",
    "default_project_rules",
]

_MODE_RANK: Mapping[str, int] = {"read": 1, "write": 2}


def default_project_rules() -> "tuple[ProjectRule, ...]":
    """The shipped project (call-graph) rule set, in id order."""
    return (InterproceduralLockRule(), EventLoopHygieneRule())


def _satisfies(held: str | None, required: str) -> bool:
    return held is not None and _MODE_RANK[held] >= _MODE_RANK[required]


class InterproceduralLockRule(ProjectRule):
    """RL007: calls into ``@requires_lock`` functions must hold the lock.

    Resolution is conservative about name collisions: a call is only
    checked when every *annotated* definition of the callee name agrees
    on one mode (``self.m()`` resolving to the caller's own class uses
    that definition directly).  Unannotated same-name definitions in
    unrelated classes neither trigger nor veto the check.
    """

    rule_id = "RL007"
    title = "interprocedural lock discipline (@requires_lock through the call graph)"

    def check_project(self, graph: CallGraph) -> Iterator[Finding]:
        for caller in graph.functions:
            for call in caller.calls:
                required = self._required_mode(graph, caller, call)
                if required is None:
                    continue
                if _satisfies(call.lock_ctx, required):
                    continue
                if _satisfies(caller.requires_lock, required):
                    continue
                yield self.finding_at(
                    caller.module,
                    call.line,
                    call.col,
                    f"call to {call.name}() requires the {required} side of the "
                    f"federation lock, but {caller.qualname} holds "
                    f"{'only the ' + call.lock_ctx + ' side' if call.lock_ctx else 'no lock'} "
                    f"here; wrap the call in `with <lock>.{required}():` or annotate "
                    f"{caller.qualname} with @requires_lock({required!r}) to move the "
                    "obligation to its callers",
                )

    @staticmethod
    def _required_mode(
        graph: CallGraph, caller: FunctionInfo, call: CallSite
    ) -> str | None:
        if call.receiver == "self":
            own = graph.class_method(caller, call.name)
            if own is not None:
                return own.requires_lock
        candidates = graph.resolve(caller, call)
        annotated = {c.requires_lock for c in candidates if c.requires_lock}
        if len(annotated) != 1:
            # Nothing annotated, or annotated defs disagree (a name
            # collision across unrelated classes): stay silent.
            return None
        return next(iter(annotated))


#: Call names that hand work to an executor — the path leaves the loop.
_EXECUTOR_HOPS = frozenset({"submit", "run_in_executor", "to_thread"})

#: Callee names never traversed: shutdown/teardown may block by design.
_SHUTDOWN_EXEMPT = frozenset({"close", "shutdown", "aclose"})

#: Attribute calls that block regardless of receiver.
_BLOCKING_ATTR_CALLS = frozenset(
    {
        "open_snapshot",
        "save_index",
        "load_index",
        "save_federation_embeddings",
        "load_federation_embeddings",
        "read_text",
        "read_bytes",
        "write_text",
        "write_bytes",
        "acquire_read",
        "acquire_write",
        "read_lock",
        "map",
        "cosine_similarity",
        "segment_scores",
        "adc_scores_batch",
        "search",
        "search_batch",
        "search_batch_locked",
        "search_all_methods",
    }
)

#: Lock-entry names that block only when used as a ``with`` item.
_BLOCKING_WITH_ITEMS = frozenset({"read", "write", "read_lock"})

#: Bare (imported-name) calls that block: the GEMM entry points and the
#: module-level storage round-trips are imported, not attribute calls.
_BLOCKING_BARE_CALLS = frozenset(
    {
        "cosine_similarity",
        "segment_scores",
        "adc_scores_batch",
        "open_snapshot",
        "save_federation_embeddings",
        "load_federation_embeddings",
    }
)

#: Receivers whose calls never block and never create edges: the
#: lockset tracker's hooks (``lockset.write`` would otherwise resolve,
#: by name, to ``RWLock.write``).
_INERT_RECEIVERS = frozenset({"lockset"})


def _blocking_reason(call: CallSite) -> str | None:
    """Why this call site blocks the event loop, or None."""
    if call.name == "sleep" and call.receiver == "time":
        return "time.sleep()"
    if call.bare:
        if call.name == "open":
            return "open()"
        if call.name in _BLOCKING_BARE_CALLS:
            return f"{call.name}()"
        return None
    if call.receiver in _INERT_RECEIVERS:
        return None
    if call.in_withitem and call.name in _BLOCKING_WITH_ITEMS:
        return f"blocking lock acquisition .{call.name}()"
    if call.name in _BLOCKING_ATTR_CALLS:
        return f".{call.name}()"
    return None


class EventLoopHygieneRule(ProjectRule):
    """RL008: no blocking call reachable from async serving code.

    BFS over the call graph from every ``async def`` defined under
    ``repro/serving/``.  Edges through executor dispatch
    (:data:`_EXECUTOR_HOPS`, and bare callable references passed as
    arguments — which produce no call edge at all) do not propagate;
    shutdown paths (:data:`_SHUTDOWN_EXEMPT`) are exempt.  Findings
    anchor at the call site *inside the async function* that starts the
    blocking path, which is also where a suppression belongs.
    """

    rule_id = "RL008"
    title = "event-loop hygiene (no blocking calls reachable from async serving code)"

    def check_project(self, graph: CallGraph) -> Iterator[Finding]:
        for root in graph.functions:
            if not root.is_async or "repro/serving/" not in root.module:
                continue
            yield from self._check_root(graph, root)

    def _check_root(self, graph: CallGraph, root: FunctionInfo) -> Iterator[Finding]:
        # Queue frames: (function, anchor call-site in the root, path).
        queue: "deque[tuple[FunctionInfo, CallSite | None, tuple[str, ...]]]"
        queue = deque([(root, None, (root.qualname,))])
        visited: set[tuple[str, str]] = {(root.module, root.qualname)}
        reported: set[str] = set()
        while queue:
            func, anchor, path = queue.popleft()
            for call in func.calls:
                if call.name in _SHUTDOWN_EXEMPT or call.name in _EXECUTOR_HOPS:
                    continue
                if call.receiver in _INERT_RECEIVERS:
                    continue
                reason = _blocking_reason(call)
                if reason is not None and reason not in reported:
                    reported.add(reason)
                    site = anchor or call
                    via = " -> ".join(path + (reason,))
                    yield self.finding_at(
                        root.module,
                        site.line,
                        site.col,
                        f"async {root.qualname} can reach blocking {reason} "
                        f"(path: {via}); dispatch through the executor "
                        "(run_in_executor / backend.submit) or make the path async",
                    )
                if reason is not None:
                    continue
                for callee in graph.resolve(func, call):
                    key = (callee.module, callee.qualname)
                    if key in visited or callee.is_async:
                        continue
                    visited.add(key)
                    queue.append((callee, anchor or call, path + (callee.qualname,)))


#: ``Classname.classmethod`` acquisition constructors, by class.
_BUFFER_CONSTRUCTORS: Mapping[str, frozenset[str]] = {
    "SharedBuffer": frozenset({"from_array", "attach"}),
    "MappedBuffer": frozenset({"from_file", "attach"}),
}

#: Receiver-independent acquisition methods (always yield a new handle).
_BUFFER_METHODS = frozenset({"addref", "mapped"})

#: Methods that release/retire a tracked handle.
_RELEASE_METHODS = frozenset({"close", "release", "commit", "abort", "unlink"})


def _acquisition_kind(call: ast.Call) -> str | None:
    """'buffer' / 'writer' when the call acquires a tracked resource."""
    func = call.func
    if isinstance(func, ast.Name):
        return "writer" if func.id == "SegmentWriter" else None
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "SegmentWriter":  # pragma: no cover - module-qualified
        return "writer"
    if isinstance(func.value, ast.Name) and func.attr in _BUFFER_CONSTRUCTORS.get(
        func.value.id, frozenset()
    ):
        return "buffer"
    if isinstance(func.value, ast.Attribute) and func.attr in _BUFFER_CONSTRUCTORS.get(
        func.value.attr, frozenset()
    ):
        return "buffer"
    if func.attr in _BUFFER_METHODS:
        return "buffer"
    if func.attr == "SegmentWriter":
        return "writer"
    return None


def _walk_functions(
    tree: ast.Module,
) -> "Iterator[ast.FunctionDef | ast.AsyncFunctionDef]":
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class ResourceLifecycleRule(Rule):
    """RL009: acquired buffers/writers must be released on every path."""

    rule_id = "RL009"
    title = "buffer/segment lifecycle (handles released on all CFG paths)"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in _walk_functions(module.tree):
            yield from self._check_function(module, func)

    def _check_function(
        self, module: SourceModule, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Finding]:
        tracked = self._tracked_vars(func)
        discarded = self._discarded_acquisitions(func)
        for call in discarded:
            yield self.finding(
                module,
                call,
                "acquired handle is discarded immediately — nothing can ever "
                "release it; bind it and close it, or use a with block",
            )
        if not tracked:
            return
        cfg = build_cfg(func)
        names = frozenset(tracked)

        def transfer(node: int, state: frozenset[str]) -> frozenset[str]:
            stmt = cfg.nodes[node]
            gen, kill = self._gen_kill(stmt, names)
            return (state - kill) | gen

        def exc_transfer(node: int, state: frozenset[str]) -> frozenset[str]:
            # If the statement raised, its acquisition never bound, but
            # a best-effort release still counts as released.
            stmt = cfg.nodes[node]
            _, kill = self._gen_kill(stmt, names)
            return state - kill

        states = solve_forward(cfg, transfer, exc_transfer=exc_transfer)
        for var in sorted(states.get(CFG.EXIT, frozenset())):
            kind, line, col = tracked[var]
            yield Finding(
                rule_id=self.rule_id,
                path=module.path,
                line=line,
                col=col,
                message=(
                    f"{kind} handle {var!r} acquired here may never be "
                    "released: a path reaches the end of the function without "
                    f"calling {var}.close()/.release()/.commit(); release in a "
                    "finally block or use a with block"
                ),
            )
        exc_live = states.get(CFG.EXC_EXIT, frozenset()) - states.get(
            CFG.EXIT, frozenset()
        )
        for var in sorted(exc_live):
            kind, line, col = tracked[var]
            if kind == "writer":
                # An uncommitted SegmentWriter is crash-safe by design:
                # readers never observe it, so exceptional leaks are
                # cheap (a temp file) and deliberate.
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=module.path,
                line=line,
                col=col,
                message=(
                    f"{kind} handle {var!r} acquired here leaks if an "
                    "exception escapes before it is released; wrap the use in "
                    "try/finally or a with block"
                ),
            )

    @staticmethod
    def _tracked_vars(
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> dict[str, tuple[str, int, int]]:
        """Vars bound to an acquisition that never escape the function."""
        acquired: dict[str, tuple[str, int, int]] = {}
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
                kind = _acquisition_kind(node.value)
                if kind is not None:
                    acquired[target.id] = (kind, node.lineno, node.col_offset)
        if not acquired:
            return {}
        escaped = ResourceLifecycleRule._escaped_names(func, set(acquired))
        return {k: v for k, v in acquired.items() if k not in escaped}

    @staticmethod
    def _escaped_names(
        func: "ast.FunctionDef | ast.AsyncFunctionDef", candidates: set[str]
    ) -> set[str]:
        """Names whose handle leaves the function's hands.

        A handle escapes when it is passed as an argument (someone else
        may own it now), stored into an attribute/subscript/another
        name, put in a container literal, or returned/yielded — tracking
        stops, the owner is elsewhere.  Calling a method *on* the handle
        (``buf.close()``, ``buf.view()``) is not an escape.
        """
        escaped: set[str] = set()

        def name_of(expr: ast.expr) -> str | None:
            return expr.id if isinstance(expr, ast.Name) else None

        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if (n := name_of(arg)) in candidates:
                        escaped.add(n)  # type: ignore[arg-type]
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    for sub in ast.walk(node.value):
                        if (n := name_of(sub)) in candidates:
                            escaped.add(n)  # type: ignore[arg-type]
            elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
                for element in node.elts:
                    if (n := name_of(element)) in candidates:
                        escaped.add(n)  # type: ignore[arg-type]
            elif isinstance(node, ast.Dict):
                for value in node.values:
                    if value is not None and (n := name_of(value)) in candidates:
                        escaped.add(n)  # type: ignore[arg-type]
            elif isinstance(node, ast.Assign):
                # Aliasing (`other = buf`) and stores (`self.x = buf`,
                # `cache[k] = buf`) both show the handle on the value
                # side; target shapes need no separate handling.
                value_name = name_of(node.value)
                if value_name in candidates:
                    escaped.add(value_name)  # type: ignore[arg-type]
        return escaped

    @staticmethod
    def _gen_kill(
        stmt: ast.stmt, names: frozenset[str]
    ) -> tuple[frozenset[str], frozenset[str]]:
        gen: set[str] = set()
        kill: set[str] = set()
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and target.id in names:
                kill.add(target.id)  # rebinding retires the old handle
                if isinstance(stmt.value, ast.Call) and _acquisition_kind(stmt.value):
                    gen.add(target.id)
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id in names:
                    kill.add(target.id)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx = item.context_expr
                if isinstance(ctx, ast.Name) and ctx.id in names:
                    kill.add(ctx.id)  # __exit__ releases it
        # A release call anywhere in the statement frees the handle.
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RELEASE_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in names
            ):
                kill.add(node.func.value.id)
        return frozenset(gen), frozenset(kill)

    @staticmethod
    def _discarded_acquisitions(
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> list[ast.Call]:
        discarded: list[ast.Call] = []
        for stmt in ast.walk(func):
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and _acquisition_kind(stmt.value) is not None
            ):
                discarded.append(stmt.value)
        return discarded


def _monotonic_fields(cls: ast.ClassDef) -> frozenset[str]:
    fields: set[str] = set()
    for decorator in cls.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = None
        if isinstance(decorator.func, ast.Name):
            name = decorator.func.id
        elif isinstance(decorator.func, ast.Attribute):
            name = decorator.func.attr
        if name != "monotonic":
            continue
        for arg in decorator.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                fields.add(arg.value)
    return frozenset(fields)


def _method_requires_write(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    for decorator in func.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and isinstance(decorator.func, (ast.Name, ast.Attribute))
            and (
                decorator.func.id
                if isinstance(decorator.func, ast.Name)
                else decorator.func.attr
            )
            == "requires_lock"
            and decorator.args
            and isinstance(decorator.args[0], ast.Constant)
            and decorator.args[0].value == "write"
        ):
            return True
    return False


def _is_write_lock_item(item: ast.withitem) -> bool:
    ctx = item.context_expr
    return (
        isinstance(ctx, ast.Call)
        and isinstance(ctx.func, ast.Attribute)
        and ctx.func.attr == "write"
    )


class GenerationMonotonicityRule(Rule):
    """RL010: ``@monotonic`` fields only move forward, under the writer lock."""

    rule_id = "RL010"
    title = "generation monotonicity (@monotonic fields: increment-or-publish, write-locked)"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                fields = _monotonic_fields(node)
                if fields:
                    yield from self._check_class(module, node, fields)

    def _check_class(
        self, module: SourceModule, cls: ast.ClassDef, fields: frozenset[str]
    ) -> Iterator[Finding]:
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                continue  # construction establishes the initial value
            locked = _method_requires_write(item)
            yield from self._check_block(module, item.body, fields, locked)

    def _check_block(
        self,
        module: SourceModule,
        stmts: Sequence[ast.stmt],
        fields: frozenset[str],
        locked: bool,
    ) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = locked or any(_is_write_lock_item(i) for i in stmt.items)
                yield from self._check_block(module, stmt.body, fields, inner)
                continue
            field = self._written_field(stmt, fields)
            if field is not None:
                if not locked:
                    yield self.finding(
                        module,
                        stmt,
                        f"monotonic field self.{field} is written outside the "
                        "writer lock; hold `with <lock>.write():` or annotate "
                        "the method with @requires_lock('write')",
                    )
                if not self._is_monotonic_write(stmt, field):
                    yield self.finding(
                        module,
                        stmt,
                        f"monotonic field self.{field} is overwritten with an "
                        "unrelated value; only `+= <positive literal>` or a "
                        "publish derived from its own prior value keeps "
                        "generation counts monotonic",
                    )
            for block_name in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, block_name, None)
                if isinstance(nested, list) and nested and isinstance(nested[0], ast.stmt):
                    yield from self._check_block(module, nested, fields, locked)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from self._check_block(module, handler.body, fields, locked)

    @staticmethod
    def _written_field(stmt: ast.stmt, fields: frozenset[str]) -> str | None:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr in fields
            ):
                return target.attr
        return None

    @staticmethod
    def _is_monotonic_write(stmt: ast.stmt, field: str) -> bool:
        if isinstance(stmt, ast.AugAssign):
            return (
                isinstance(stmt.op, ast.Add)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, int)
                and stmt.value.value > 0
            )
        value = getattr(stmt, "value", None)
        if value is None:
            return True  # bare annotation, no write
        for node in ast.walk(value):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == field
                and isinstance(node.value, ast.Name)
            ):
                return True  # publish computed from the prior value
        return False
