"""Static analysis: the repo's invariants, machine-checked.

Five PRs of serving-stack work rest on conventions nothing enforced —
until now.  This package is a small AST-based lint framework
(:class:`Rule` / :class:`Finding` / :class:`Analyzer`, with
``# repro-lint: disable=RLxxx -- reason`` suppression comments and a
``python -m repro.analysis`` / ``repro-lint`` CLI) plus the rule set
encoding the real invariants:

* **RL001 lock discipline** — attributes declared with
  :func:`~repro.core.annotations.guarded_by` mutate only under the
  writer side of the RWLock; public ``search*`` entry points take the
  reader side.
* **RL002 metrics vocabulary** — every literal/f-string metric name
  recorded into a :class:`~repro.obs.MetricsRegistry` matches
  :mod:`repro.obs.vocabulary` (name *and* instrument kind).
* **RL003 dtype discipline** — no dtype-less numpy allocations and no
  unannotated float64 coercions inside the dtype-preserving kernel
  packages (``repro.linalg`` / ``repro.ann`` / ``repro.vectordb`` /
  ``repro.core.exhaustive``).
* **RL004 concurrency hygiene** — no raw ``threading.Lock`` beside an
  RWLock, no ``except Exception: pass``, no mutable class defaults.
* **RL005 executor construction** — raw ``ThreadPoolExecutor`` /
  ``ProcessPoolExecutor`` only inside :mod:`repro.exec`; every other
  parallel site runs on the engine's
  :class:`~repro.exec.ExecutionBackend`.
* **RL006 raw array persistence** — ``np.save`` / ``np.load`` /
  ``np.memmap`` and friends only inside :mod:`repro.storage`; every
  other persistence path goes through the checksummed, atomically
  committed segment snapshot layer.

The flow rules (:mod:`repro.analysis.flowrules`) add a project-wide
call graph (:mod:`repro.analysis.callgraph`) and per-function CFGs with
a forward dataflow solver (:mod:`repro.analysis.flow`):

* **RL007 interprocedural lock discipline** — every path into a
  function annotated :func:`~repro.core.annotations.requires_lock`
  holds the right lock side, resolved through the call graph across
  modules; un-annotated intermediate frames get a propagation
  suggestion.
* **RL008 event-loop hygiene** — no blocking call (``time.sleep``,
  file/storage I/O, lock acquisition, GEMM-sized linalg entry points,
  ``ExecutionBackend.map``) reachable from an ``async def`` body in
  :mod:`repro.serving` without an executor hop.
* **RL009 buffer/resource lifecycle** — every
  ``SharedBuffer``/``MappedBuffer``/``SegmentWriter`` acquisition
  reaches close/release/commit/context-exit on all CFG paths,
  including exceptional edges.
* **RL010 generation monotonicity** — fields declared
  :func:`~repro.core.annotations.monotonic` are only written via
  increment-or-publish, under the writer lock.

The runtime complement lives in :mod:`repro.sanitize`:
``REPRO_SANITIZE=1`` arms operand guards and the
:class:`~repro.core.lifecycle.InstrumentedRWLock`; ``REPRO_SANITIZE=2``
additionally arms the Eraser-style lockset race detector in
:mod:`repro.sanitize.lockset`.
"""

from repro.analysis.framework import (
    Analyzer,
    FileReport,
    Finding,
    ProjectRule,
    Report,
    Rule,
    RunResult,
    RunStats,
    SourceModule,
    SuppressionRecord,
)
from repro.analysis.rules import default_rules

__all__ = [
    "Analyzer",
    "FileReport",
    "Finding",
    "ProjectRule",
    "Report",
    "Rule",
    "RunResult",
    "RunStats",
    "SourceModule",
    "SuppressionRecord",
    "default_rules",
]
