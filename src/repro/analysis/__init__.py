"""Static analysis: the repo's invariants, machine-checked.

Four PRs of serving-stack work rest on conventions nothing enforced —
until now.  This package is a small AST-based lint framework
(:class:`Rule` / :class:`Finding` / :class:`Analyzer`, with
``# repro-lint: disable=RLxxx -- reason`` suppression comments and a
``python -m repro.analysis`` / ``repro-lint`` CLI) plus the rule set
encoding the real invariants:

* **RL001 lock discipline** — attributes declared with
  :func:`~repro.core.lifecycle.guarded_by` mutate only under the
  writer side of the RWLock; public ``search*`` entry points take the
  reader side.
* **RL002 metrics vocabulary** — every literal/f-string metric name
  recorded into a :class:`~repro.obs.MetricsRegistry` matches
  :mod:`repro.obs.vocabulary` (name *and* instrument kind).
* **RL003 dtype discipline** — no dtype-less numpy allocations and no
  unannotated float64 coercions inside the dtype-preserving kernel
  packages (``repro.linalg`` / ``repro.ann`` / ``repro.vectordb`` /
  ``repro.core.exhaustive``).
* **RL004 concurrency hygiene** — no raw ``threading.Lock`` beside an
  RWLock, no ``except Exception: pass``, no mutable class defaults.
* **RL005 executor construction** — raw ``ThreadPoolExecutor`` /
  ``ProcessPoolExecutor`` only inside :mod:`repro.exec`; every other
  parallel site runs on the engine's
  :class:`~repro.exec.ExecutionBackend`.
* **RL006 raw array persistence** — ``np.save`` / ``np.load`` /
  ``np.memmap`` and friends only inside :mod:`repro.storage`; every
  other persistence path goes through the checksummed, atomically
  committed segment snapshot layer.

The runtime complement (``REPRO_SANITIZE=1``) lives in
:mod:`repro.sanitize` and :class:`repro.core.lifecycle.InstrumentedRWLock`.
"""

from repro.analysis.framework import (
    Analyzer,
    FileReport,
    Finding,
    Report,
    Rule,
    SourceModule,
)
from repro.analysis.rules import default_rules

__all__ = [
    "Analyzer",
    "FileReport",
    "Finding",
    "Report",
    "Rule",
    "SourceModule",
    "default_rules",
]
