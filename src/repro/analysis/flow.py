"""Per-function control-flow graphs and a small forward dataflow engine.

The CFG is statement-level: every simple statement is a node, compound
statements contribute their header (the ``if``/``while`` test, the
``for`` iterable, the ``with`` enter) plus their nested blocks.  Two
sentinel nodes terminate every function: :data:`CFG.EXIT` (normal
return / fall-off) and :data:`CFG.EXC_EXIT` (an exception escaping the
function).  Exceptional edges are conservative — *any* statement may
raise — and route to the innermost enclosing handler, through
``finally`` blocks, and finally to ``EXC_EXIT``.  That is exactly the
pessimism a resource-leak rule wants: a buffer acquired before a
statement that might raise is live on the exceptional edge unless a
``finally``/context manager releases it.

:func:`solve_forward` is a classic worklist solver over finite
lattices: states are ``frozenset``\\ s joined by union (may-analysis),
and the per-statement transfer function is supplied by the rule.  It
iterates to fixpoint; monotone transfers over finite sets terminate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Iterable, Mapping, Sequence

__all__ = ["CFG", "build_cfg", "solve_forward"]

#: Statements that transfer control and never fall through.
_JUMPS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


@dataclass
class CFG:
    """One function's control-flow graph.

    ``nodes[i]`` is the AST statement for node ``i``; ``succ[i]`` its
    normal successors and ``exc_succ[i]`` where control goes if the
    statement raises.  Sentinels: ``EXIT`` (normal) and ``EXC_EXIT``
    (escaping exception) appear only as successors.
    """

    EXIT: ClassVar[int] = -1
    EXC_EXIT: ClassVar[int] = -2

    nodes: list[ast.stmt] = field(default_factory=list)
    succ: dict[int, set[int]] = field(default_factory=dict)
    exc_succ: dict[int, set[int]] = field(default_factory=dict)
    entry: set[int] = field(default_factory=set)

    def successors(self, node: int) -> Iterable[int]:
        yield from self.succ.get(node, ())
        yield from self.exc_succ.get(node, ())


@dataclass
class _Ctx:
    """Where break/continue/raise go from the current block."""

    break_to: "list[int] | None" = None  # filled after the loop is built
    continue_target: int | None = None
    handlers: tuple[int, ...] = ()  # innermost-first exception targets


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()

    def new_node(self, stmt: ast.stmt, preds: set[int], exc_to: tuple[int, ...]) -> int:
        node = len(self.cfg.nodes)
        self.cfg.nodes.append(stmt)
        self.cfg.succ[node] = set()
        self.cfg.exc_succ[node] = set(exc_to) if exc_to else {CFG.EXC_EXIT}
        self.link(preds, node)
        return node

    def link(self, preds: set[int], node: int) -> None:
        if not preds:
            return
        for pred in preds:
            if pred == _ENTRY:
                self.cfg.entry.add(node)
            else:
                self.cfg.succ[pred].add(node)

    def block(self, stmts: Sequence[ast.stmt], preds: set[int], ctx: _Ctx) -> set[int]:
        """Build a statement list; returns the nodes that fall through."""
        current = set(preds)
        for stmt in stmts:
            if not current:
                # Unreachable code after a jump: still build the nodes
                # (a rule may anchor findings there) with no preds.
                current = set()
            current = self.statement(stmt, current, ctx)
        return current

    def statement(self, stmt: ast.stmt, preds: set[int], ctx: _Ctx) -> set[int]:
        exc = ctx.handlers
        if isinstance(stmt, ast.If):
            test = self.new_node(stmt, preds, exc)
            body_exit = self.block(stmt.body, {test}, ctx)
            else_exit = self.block(stmt.orelse, {test}, ctx) if stmt.orelse else {test}
            return body_exit | else_exit
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self.new_node(stmt, preds, exc)
            loop_ctx = _Ctx(break_to=[], continue_target=head, handlers=ctx.handlers)
            body_exit = self.block(stmt.body, {head}, loop_ctx)
            self.link(body_exit, head)
            out: set[int] = {head}
            if stmt.orelse:
                out = self.block(stmt.orelse, {head}, ctx)
            assert loop_ctx.break_to is not None
            return out | set(loop_ctx.break_to)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            enter = self.new_node(stmt, preds, exc)
            return self.block(stmt.body, {enter}, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds, ctx)
        if isinstance(stmt, ast.Match):
            subject = self.new_node(stmt, preds, exc)
            out: set[int] = {subject}  # no case may match
            for case in stmt.cases:
                out |= self.block(case.body, {subject}, ctx)
            return out
        # Simple statement (including nested def/class: opaque here).
        node = self.new_node(stmt, preds, exc)
        if isinstance(stmt, ast.Return):
            self.cfg.succ[node].add(CFG.EXIT)
            return set()
        if isinstance(stmt, ast.Raise):
            self.cfg.succ[node].clear()
            # control only leaves via the exception edge
            return set()
        if isinstance(stmt, ast.Break):
            if ctx.break_to is not None:
                ctx.break_to.append(node)
            return set()
        if isinstance(stmt, ast.Continue):
            if ctx.continue_target is not None:
                self.cfg.succ[node].add(ctx.continue_target)
            return set()
        return {node}

    def _try(self, stmt: ast.Try, preds: set[int], ctx: _Ctx) -> set[int]:
        outer: set[int] = set(ctx.handlers) if ctx.handlers else {CFG.EXC_EXIT}

        # Build the finally block *first* (node order carries no
        # meaning) so the body's exceptional edges can enter it.  One
        # shared copy serves both routes: its exits fall through on the
        # normal path AND carry exceptional edges outward, so the solver
        # sees the re-raise continuation too.  Over-approximate — the
        # normal-exit state also reaches the exceptional edge — which is
        # the right direction for may-leak analyses.
        final_entry: int | None = None
        final_exits: set[int] = set()
        if stmt.finalbody:
            final_entry = len(self.cfg.nodes)
            final_exits = self.block(stmt.finalbody, set(), ctx)
            for node in final_exits:
                self.cfg.exc_succ.setdefault(node, set()).update(outer)

        # Each ExceptHandler gets a node of its own; exceptions leaving
        # a handler (no match / re-raise / raise in its body) route
        # through the finally when there is one, else outward.
        handler_nodes: list[int] = []
        for handler in stmt.handlers:
            node = len(self.cfg.nodes)
            self.cfg.nodes.append(handler)  # type: ignore[arg-type]
            self.cfg.succ[node] = set()
            self.cfg.exc_succ[node] = {final_entry} if final_entry is not None else set(outer)
            handler_nodes.append(node)

        # Exceptions in the try body go to every handler (any may
        # match) and — since none may match — into finally / outward.
        body_exc = set(handler_nodes)
        if final_entry is not None:
            body_exc.add(final_entry)
        if not body_exc:
            body_exc = set(outer)
        body_ctx = _Ctx(
            break_to=ctx.break_to,
            continue_target=ctx.continue_target,
            handlers=tuple(sorted(body_exc)),
        )
        body_exit = self.block(stmt.body, preds, body_ctx)
        if stmt.orelse:
            body_exit = self.block(stmt.orelse, body_exit, body_ctx)

        handler_ctx = _Ctx(
            break_to=ctx.break_to,
            continue_target=ctx.continue_target,
            handlers=(final_entry,) if final_entry is not None else ctx.handlers,
        )
        handler_exits: set[int] = set()
        for node, handler in zip(handler_nodes, stmt.handlers):
            handler_exits |= self.block(handler.body, {node}, handler_ctx)

        normal_exit = body_exit | handler_exits
        if final_entry is not None:
            self.link(normal_exit, final_entry)
            return final_exits
        return normal_exit


_ENTRY = -3


def build_cfg(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> CFG:
    """The statement-level CFG of one function body."""
    builder = _Builder()
    exits = builder.block(func.body, {_ENTRY}, _Ctx())
    for node in exits:
        if node != _ENTRY:
            builder.cfg.succ[node].add(CFG.EXIT)
    if not builder.cfg.nodes:
        builder.cfg.entry.clear()
    return builder.cfg


def solve_forward(
    cfg: CFG,
    transfer: Callable[[int, frozenset[str]], frozenset[str]],
    entry_state: frozenset[str] = frozenset(),
    exc_transfer: "Callable[[int, frozenset[str]], frozenset[str]] | None" = None,
) -> Mapping[int, frozenset[str]]:
    """Worklist fixpoint of a forward may-analysis over ``cfg``.

    ``transfer(node, state_in)`` returns the state after executing the
    node.  Returns the joined *in* states, keyed by node id — plus the
    sentinel keys ``CFG.EXIT`` / ``CFG.EXC_EXIT`` holding the joined
    states reaching each exit.  ``exc_transfer`` (default: same as
    ``transfer``) produces the state propagated along *exception* edges;
    a resource rule passes "in-state minus kills" there, because a
    statement that raises did not complete its acquisition but a
    best-effort release still counts.
    """
    n = len(cfg.nodes)
    state_in: dict[int, frozenset[str]] = {i: frozenset() for i in range(n)}
    state_in[CFG.EXIT] = frozenset()
    state_in[CFG.EXC_EXIT] = frozenset()
    for node in cfg.entry:
        state_in[node] = entry_state
    # Seed with every node (chaotic iteration): a transfer that *gains*
    # state (an acquisition) must run even when its in-state never
    # changes from the initial bottom.
    worklist = list(range(n))
    iterations = 0
    limit = max(64, 16 * (n + 2) * (n + 2))
    while worklist:
        iterations += 1
        if iterations > limit:  # pragma: no cover - safety valve
            break
        node = worklist.pop()
        state_out = transfer(node, state_in[node])
        state_exc = (
            state_out if exc_transfer is None else exc_transfer(node, state_in[node])
        )
        for edges, outgoing in ((cfg.succ, state_out), (cfg.exc_succ, state_exc)):
            for succ in edges.get(node, ()):
                merged = state_in.get(succ, frozenset()) | outgoing
                if merged != state_in.get(succ, frozenset()):
                    state_in[succ] = merged
                    if succ >= 0:
                        worklist.append(succ)
    return state_in
