"""Minimal SARIF 2.1.0 rendering of a lint report.

Just enough of the schema for GitHub code scanning: one run, one
driver, one rule descriptor per rule id that actually fired (plus the
full shipped rule set so empty reports still describe the tool), and
one result per finding with a physical location.  Paths are emitted
relative as-is — ``repro-lint`` is always invoked from the repo root in
CI, which is what the upload action expects.
"""

from __future__ import annotations

import json

from repro.analysis.framework import Analyzer, Report

__all__ = ["render_sarif"]

_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"


def render_sarif(report: Report, analyzer: "Analyzer | None" = None) -> str:
    """The report as a SARIF 2.1.0 JSON document."""
    titles: dict[str, str] = {}
    if analyzer is not None:
        for rule in (*analyzer.rules, *analyzer.project_rules):
            titles[rule.rule_id] = rule.title
    for finding in report.findings:
        titles.setdefault(finding.rule_id, "")
    rule_ids = sorted(titles)
    rules = [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": titles[rule_id] or rule_id},
        }
        for rule_id in rule_ids
    ]
    index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = [
        {
            "ruleId": finding.rule_id,
            "ruleIndex": index[finding.rule_id],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]
    document = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
