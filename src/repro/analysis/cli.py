"""Command-line entry point: ``python -m repro.analysis`` / ``repro-lint``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.framework import Analyzer, Report


def _render_text(report: Report) -> str:
    lines = [finding.format() for finding in report.findings]
    lines.append(
        f"{len(report.findings)} finding(s), {report.n_suppressed} suppressed, "
        f"{report.n_files} file(s) scanned"
    )
    return "\n".join(lines)


def _render_json(report: Report) -> str:
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in report.findings],
            "n_findings": len(report.findings),
            "n_suppressed": report.n_suppressed,
            "n_files": report.n_files,
            "ok": report.ok,
        },
        indent=2,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the repro codebase: lock discipline "
            "(RL001), metrics vocabulary (RL002), dtype discipline (RL003) and "
            "concurrency hygiene (RL004).  Suppress one finding with "
            "'# repro-lint: disable=RLxxx -- reason', a whole file with "
            "'# repro-lint: disable-file=RLxxx -- reason'."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule set and exit",
    )
    args = parser.parse_args(argv)

    analyzer = Analyzer()
    if args.list_rules:
        for rule in analyzer.rules:
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    try:
        report = analyzer.check_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    print(_render_json(report) if args.format == "json" else _render_text(report))
    return 0 if report.ok else 1
