"""Command-line entry point: ``python -m repro.analysis`` / ``repro-lint``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.framework import Analyzer, Report, RunResult


def _render_text(report: Report) -> str:
    lines = [finding.format() for finding in report.findings]
    lines.append(
        f"{len(report.findings)} finding(s), {report.n_suppressed} suppressed, "
        f"{report.n_files} file(s) scanned"
    )
    return "\n".join(lines)


def _render_json(report: Report) -> str:
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in report.findings],
            "n_findings": len(report.findings),
            "n_suppressed": report.n_suppressed,
            "n_files": report.n_files,
            "ok": report.ok,
        },
        indent=2,
    )


def _render_suppressions(result: RunResult) -> str:
    """Every suppression directive in the scanned files, with usage.

    ``unused`` directives silence nothing this run — candidates for
    removal (the invariant they excused may have been fixed since).
    """
    lines: list[str] = []
    n_total = n_unused = 0
    for path in sorted(result.suppressions):
        for record in result.suppressions[path].records:
            n_total += 1
            status = "used" if record.used else "UNUSED"
            if not record.used:
                n_unused += 1
            rules = ",".join(sorted(record.rules))
            reason = record.reason or "(no reason given)"
            lines.append(
                f"{path}:{record.line}: {status:<6} {record.scope:<4} {rules}  -- {reason}"
            )
    lines.append(f"{n_total} suppression(s), {n_unused} unused")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the repro codebase: per-module "
            "rules (RL001-RL006, RL009, RL010) plus interprocedural call-graph "
            "rules (RL007 lock discipline, RL008 event-loop hygiene).  "
            "Suppress one finding with '# repro-lint: disable=RLxxx -- reason', "
            "a whole file with '# repro-lint: disable-file=RLxxx -- reason'."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        help="per-file analysis cache file (content-hash keyed; created on first run)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print a timing/cache summary to stderr",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule set and exit",
    )
    parser.add_argument(
        "--list-suppressions",
        action="store_true",
        help="audit every suppression directive (and whether it still silences anything)",
    )
    args = parser.parse_args(argv)

    analyzer = Analyzer()
    if args.rules:
        wanted = {rule_id.strip() for rule_id in args.rules.split(",") if rule_id.strip()}
        known = {r.rule_id for r in analyzer.rules} | {
            r.rule_id for r in analyzer.project_rules
        }
        unknown = wanted - known
        if unknown:
            print(f"repro-lint: unknown rule id(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        analyzer = Analyzer(
            rules=[r for r in analyzer.rules if r.rule_id in wanted],
            project_rules=[r for r in analyzer.project_rules if r.rule_id in wanted],
        )
    if args.list_rules:
        for rule in (*analyzer.rules, *analyzer.project_rules):
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    cache = None
    if args.cache:
        from repro.analysis.cache import AnalysisCache

        cache = AnalysisCache(args.cache)
    try:
        result = analyzer.run(args.paths, cache=cache)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    report = result.report

    if args.list_suppressions:
        print(_render_suppressions(result))
        return 0
    if args.format == "sarif":
        from repro.analysis.sarif import render_sarif

        print(render_sarif(report, analyzer))
    elif args.format == "json":
        print(_render_json(report))
    else:
        print(_render_text(report))
    if args.stats and report.stats is not None:
        print(f"repro-lint: {report.stats.format()}", file=sys.stderr)
    return 0 if report.ok else 1
