"""The repo's invariants as lint rules (RL001-RL006).

Each rule encodes a convention the serving stack's correctness actually
rests on; the module docstring of :mod:`repro.analysis` has the index.
Rules are deliberately syntactic — they read the AST, never import the
code under analysis — so the linter runs on any tree, including broken
checkouts, and cannot be fooled by import-time side effects.

The flow-sensitive rules (RL009/RL010) and the interprocedural project
rules (RL007/RL008) live in :mod:`repro.analysis.flowrules`; the local
pair joins :func:`default_rules` here so they share the per-file cache.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.framework import Finding, Rule, SourceModule
from repro.obs import vocabulary

__all__ = [
    "ConcurrencyHygieneRule",
    "DtypeDisciplineRule",
    "ExecutorConstructionRule",
    "LockDisciplineRule",
    "MetricsVocabularyRule",
    "RawArrayPersistenceRule",
    "default_rules",
]


def default_rules() -> "tuple[Rule, ...]":
    """The shipped per-module rule set, in id order."""
    from repro.analysis.flowrules import (
        GenerationMonotonicityRule,
        ResourceLifecycleRule,
    )

    return (
        LockDisciplineRule(),
        MetricsVocabularyRule(),
        DtypeDisciplineRule(),
        ConcurrencyHygieneRule(),
        ExecutorConstructionRule(),
        RawArrayPersistenceRule(),
        ResourceLifecycleRule(),
        GenerationMonotonicityRule(),
    )


def _decorator_call(node: ast.expr) -> "tuple[str, ast.Call] | None":
    """(name, call) when a decorator is a simple/attribute call."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id, node
    if isinstance(func, ast.Attribute):
        return func.attr, node
    return None


def _const_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _is_self_attr(node: ast.expr, attr: str | None = None) -> bool:
    """``self.<attr>`` (any attribute when ``attr`` is None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


class LockDisciplineRule(Rule):
    """RL001: ``@guarded_by`` attributes mutate only under the writer lock.

    A class decorated ``@guarded_by("<lock>", "<attr>", ...)`` declares
    that the named ``self`` attributes are protected by the RWLock at
    ``self.<lock>``.  The rule then enforces, per method:

    * any assignment / augmented assignment / delete / known mutating
      call (``.clear()``, ``.append()``, subscript stores, ...) on a
      guarded attribute must sit inside a ``with self.<lock>.write():``
      block, or in a method declared ``@requires_lock("write")``
      (``__init__`` is construction and exempt);
    * public ``search*`` entry points must take the reader (or writer)
      side of the lock somewhere in their body, unless they declare
      ``@requires_lock`` themselves.
    """

    rule_id = "RL001"
    title = "lock discipline on @guarded_by state"

    _MUTATORS = frozenset(
        {
            "add",
            "append",
            "clear",
            "discard",
            "extend",
            "insert",
            "pop",
            "popitem",
            "remove",
            "setdefault",
            "update",
        }
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: SourceModule, cls: ast.ClassDef) -> Iterator[Finding]:
        guarded = self._guarded_decl(cls)
        if guarded is None:
            return
        lock_attr, attrs = guarded
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            mode = self._requires_lock(item)
            if item.name != "__init__":
                yield from self._check_mutations(
                    module, item, lock_attr, attrs, held_write=(mode == "write")
                )
            if (
                item.name.startswith("search")
                and not item.name.startswith("_")
                and mode is None
                and not self._takes_lock(item, lock_attr)
            ):
                yield self.finding(
                    module,
                    item,
                    f"public search entry point {item.name}() never takes "
                    f"self.{lock_attr}.read() — a concurrent delta can tear the "
                    "state it reads",
                )

    @staticmethod
    def _guarded_decl(cls: ast.ClassDef) -> "tuple[str, frozenset[str]] | None":
        for decorator in cls.decorator_list:
            named = _decorator_call(decorator)
            if named is None or named[0] != "guarded_by":
                continue
            args = [_const_str(a) for a in named[1].args]
            if not args or args[0] is None:
                continue
            return args[0], frozenset(a for a in args[1:] if a is not None)
        return None

    @staticmethod
    def _requires_lock(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> str | None:
        for decorator in func.decorator_list:
            named = _decorator_call(decorator)
            if named is not None and named[0] == "requires_lock" and named[1].args:
                return _const_str(named[1].args[0])
        return None

    @staticmethod
    def _is_lock_enter(node: ast.withitem, lock_attr: str, sides: Sequence[str]) -> bool:
        """``self.<lock_attr>.read()`` / ``.write()`` as a with-item."""
        ctx = node.context_expr
        return (
            isinstance(ctx, ast.Call)
            and isinstance(ctx.func, ast.Attribute)
            and ctx.func.attr in sides
            and _is_self_attr(ctx.func.value, lock_attr)
        )

    def _takes_lock(
        self, func: "ast.FunctionDef | ast.AsyncFunctionDef", lock_attr: str
    ) -> bool:
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)) and any(
                self._is_lock_enter(item, lock_attr, ("read", "write"))
                for item in node.items
            ):
                return True
        return False

    def _check_mutations(
        self,
        module: SourceModule,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        lock_attr: str,
        attrs: frozenset[str],
        held_write: bool,
    ) -> Iterator[Finding]:
        yield from self._walk_block(module, func.body, lock_attr, attrs, held_write)

    def _walk_block(
        self,
        module: SourceModule,
        body: Sequence[ast.stmt],
        lock_attr: str,
        attrs: frozenset[str],
        held: bool,
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner_held = held or any(
                    self._is_lock_enter(item, lock_attr, ("write",))
                    for item in stmt.items
                )
                yield from self._walk_block(module, stmt.body, lock_attr, attrs, inner_held)
                continue
            # Nested defs get their own discipline; don't descend.
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if not held:
                yield from self._mutations_in(module, stmt, attrs)
            # Recurse into compound statements' nested blocks.
            for block_field in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, block_field, None)
                if isinstance(nested, list) and nested and isinstance(nested[0], ast.stmt):
                    yield from self._walk_block(module, nested, lock_attr, attrs, held)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from self._walk_block(module, handler.body, lock_attr, attrs, held)

    def _mutations_in(
        self, module: SourceModule, stmt: ast.stmt, attrs: frozenset[str]
    ) -> Iterator[Finding]:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            attr = self._guarded_target(target, attrs)
            if attr is not None:
                yield self.finding(
                    module,
                    stmt,
                    f"self.{attr} is declared @guarded_by but is mutated outside "
                    "the writer lock",
                )
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in self._MUTATORS
                and isinstance(call.func.value, ast.Attribute)
                and _is_self_attr(call.func.value)
                and call.func.value.attr in attrs
            ):
                yield self.finding(
                    module,
                    stmt,
                    f"self.{call.func.value.attr}.{call.func.attr}() mutates "
                    "@guarded_by state outside the writer lock",
                )

    @staticmethod
    def _guarded_target(target: ast.expr, attrs: frozenset[str]) -> str | None:
        if isinstance(target, ast.Attribute) and _is_self_attr(target) and target.attr in attrs:
            return target.attr
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Attribute) and _is_self_attr(base) and base.attr in attrs:
                return base.attr
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                found = LockDisciplineRule._guarded_target(element, attrs)
                if found is not None:
                    return found
        return None


class MetricsVocabularyRule(Rule):
    """RL002: metric names must be in the declared vocabulary.

    Every literal or f-string first argument of a
    ``metrics.counter/gauge/histogram/timer(...)`` call is checked
    against :data:`repro.obs.vocabulary.VOCABULARY` — including that
    the instrument kind agrees (a gauge name recorded through
    ``counter()`` is drift even though the name exists).  F-string
    interpolations are treated as wildcards that any declared
    ``{placeholder}`` accepts, so ``f"{self.name}.scan"`` passes and
    ``f"{self.name}.sacn"`` fails.  Dynamic (non-literal) names are
    skipped — they cannot be checked syntactically.
    """

    rule_id = "RL002"
    title = "metric names stay inside the declared vocabulary"

    _REGISTRY_CALLS = frozenset({"counter", "gauge", "histogram", "timer"})

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in self._REGISTRY_CALLS:
                continue
            if not self._is_metrics_receiver(func.value):
                continue
            template = self._name_template(node.args[0])
            if template is None:
                continue
            if not vocabulary.matches(template, call_kind=func.attr):
                shown = template.replace(vocabulary.WILDCARD, "{…}")
                yield self.finding(
                    module,
                    node,
                    f"metric name {shown!r} (via .{func.attr}()) is not in the "
                    "declared vocabulary — fix the name or declare it in "
                    "repro/obs/vocabulary.py",
                )

    @staticmethod
    def _is_metrics_receiver(node: ast.expr) -> bool:
        """``metrics.…`` or ``<anything>.metrics.…``."""
        if isinstance(node, ast.Name):
            return node.id == "metrics"
        if isinstance(node, ast.Attribute):
            return node.attr == "metrics"
        return False

    @staticmethod
    def _name_template(node: ast.expr) -> str | None:
        literal = _const_str(node)
        if literal is not None:
            return literal
        if isinstance(node, ast.JoinedStr):
            parts: list[str] = []
            for value in node.values:
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    parts.append(value.value)
                else:
                    parts.append(vocabulary.WILDCARD)
            return "".join(parts)
        return None


class DtypeDisciplineRule(Rule):
    """RL003: no silent float64 in the dtype-preserving kernel packages.

    Inside ``repro.linalg``, ``repro.ann``, ``repro.vectordb`` and
    ``repro.core.exhaustive`` — the packages that promise float32
    stores pay float32 bandwidth end to end — the rule flags:

    * ``np.asarray`` / ``np.zeros`` / ``np.empty`` / ``np.array``
      without an explicit dtype (``zeros``/``empty`` silently allocate
      float64; dtype-less ``asarray`` hides whether preservation is
      intended);
    * literal float64 coercions: ``.astype(np.float64)`` and
      ``dtype=np.float64`` keywords.

    Deliberate float64 state (accumulators like the ExS weight vector,
    PQ's training pipeline) is *annotated* with a suppression comment
    carrying the reason, not rewritten.
    """

    rule_id = "RL003"
    title = "dtype discipline in the numeric kernel packages"

    _SCOPES = (
        "repro/linalg/",
        "repro/ann/",
        "repro/vectordb/",
        "repro/core/exhaustive.py",
    )
    _ALLOC_CALLS = frozenset({"asarray", "zeros", "empty", "array"})

    def check(self, module: SourceModule) -> Iterator[Finding]:
        posix = module.posix_path
        if not any(scope in posix for scope in self._SCOPES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._ALLOC_CALLS
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
                and not self._has_explicit_dtype(node)
            ):
                yield self.finding(
                    module,
                    node,
                    f"np.{func.attr}() without an explicit dtype= (silently "
                    "float64 / hides intent) in a dtype-preserving package",
                )
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "astype"
                and node.args
                and self._is_np_float64(node.args[0])
            ):
                yield self.finding(
                    module,
                    node,
                    "literal .astype(np.float64) coercion in a dtype-preserving "
                    "package — preserve the storage dtype or annotate why not",
                )
            for keyword in node.keywords:
                if keyword.arg == "dtype" and self._is_np_float64(keyword.value):
                    yield self.finding(
                        module,
                        keyword.value,
                        "literal dtype=np.float64 in a dtype-preserving package — "
                        "derive the dtype from the store or annotate why not",
                    )

    @staticmethod
    def _has_explicit_dtype(call: ast.Call) -> bool:
        # dtype is the second positional parameter of all four callables.
        return len(call.args) >= 2 or any(k.arg == "dtype" for k in call.keywords)

    @staticmethod
    def _is_np_float64(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "float64"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy")
        )


class ConcurrencyHygieneRule(Rule):
    """RL004: concurrency and error-handling hygiene.

    * a class whose ``__init__`` stores an ``RWLock`` must not also
      stash a raw ``threading.Lock()`` — two lock hierarchies on one
      object invite ordering deadlocks (suppress with a reason when the
      second lock provably guards disjoint state);
    * ``except Exception: pass`` (and bare ``except: pass``) swallows
      programming errors silently;
    * mutable class-level defaults (list/dict/set literals) are shared
      across instances.
    """

    rule_id = "RL004"
    title = "concurrency and error-handling hygiene"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_lock_mix(module, node)
                yield from self._check_class_defaults(module, node)
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_swallow(module, node)

    def _check_lock_mix(self, module: SourceModule, cls: ast.ClassDef) -> Iterator[Finding]:
        init = next(
            (
                item
                for item in cls.body
                if isinstance(item, ast.FunctionDef) and item.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        rwlock_found = False
        raw_locks: list[ast.stmt] = []
        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign):
                continue
            # Walk the whole RHS: conditional constructions like
            # ``InstrumentedRWLock() if sanitize else RWLock()`` count.
            for call in ast.walk(stmt.value):
                if not isinstance(call, ast.Call):
                    continue
                callee = call.func
                name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr
                    if isinstance(callee, ast.Attribute)
                    else None
                )
                if name in ("RWLock", "InstrumentedRWLock"):
                    rwlock_found = True
                elif name == "Lock" or (
                    isinstance(callee, ast.Attribute)
                    and callee.attr in ("Lock", "RLock")
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id == "threading"
                ):
                    raw_locks.append(stmt)
        if rwlock_found:
            for stmt in raw_locks:
                yield self.finding(
                    module,
                    stmt,
                    f"raw threading lock on class {cls.name}, which already carries "
                    "an RWLock — route shared state through the RWLock, or suppress "
                    "with the reason the two locks guard disjoint state",
                )

    def _check_class_defaults(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, (ast.List, ast.Dict, ast.Set)
            ):
                yield self.finding(
                    module,
                    stmt,
                    f"mutable class-level default on {cls.name} is shared across "
                    "every instance — assign it in __init__",
                )

    def _check_swallow(
        self, module: SourceModule, handler: ast.ExceptHandler
    ) -> Iterator[Finding]:
        broad = handler.type is None or (
            isinstance(handler.type, ast.Name) and handler.type.id == "Exception"
        )
        only_pass = all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in handler.body
        )
        if broad and only_pass:
            caught = "bare except" if handler.type is None else "except Exception"
            yield self.finding(
                module,
                handler,
                f"{caught}: pass swallows every error silently — narrow the "
                "exception, handle it, or log and re-raise",
            )


class ExecutorConstructionRule(Rule):
    """RL005: thread/process pools are constructed only in ``repro.exec``.

    Every parallel site runs on the engine's
    :class:`~repro.exec.ExecutionBackend`; a raw ``ThreadPoolExecutor``
    or ``ProcessPoolExecutor`` constructed anywhere else resurrects the
    per-call pool churn the execution layer exists to end — pools that
    are born and torn down per batch, invisible to ``exec.*`` metrics
    and to the engine's ``close()`` lifecycle.  Use
    ``resolve_backend()`` / the injected ``executor`` instead; a
    deliberate exception carries a suppression comment with its reason.
    """

    rule_id = "RL005"
    title = "thread/process pools constructed only in repro.exec"

    _POOLS = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor"})
    _HOME = "repro/exec/"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if self._HOME in module.posix_path:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name in self._POOLS:
                yield self.finding(
                    module,
                    node,
                    f"raw {name} constructed outside repro.exec — run this "
                    "on the ExecutionBackend (resolve_backend() or the "
                    "injected executor) so pools are persistent, metered "
                    "and closed with the engine",
                )


class RawArrayPersistenceRule(Rule):
    """RL006: raw numpy array I/O happens only in ``repro.storage``.

    Persistence goes through the segment snapshot layer — checksummed
    payloads, atomic manifest commits, mmap-able raw bytes.  A stray
    ``np.save`` / ``np.load`` / ``np.memmap`` anywhere else creates a
    file no digest covers and no manifest commits: a torn write there
    surfaces as garbage rankings, not a
    :class:`~repro.errors.StorageError`.  Use
    :class:`~repro.storage.SegmentWriter` / ``open_snapshot()`` (or the
    quarantined ``repro.storage.npz`` legacy shims) instead; a
    deliberate exception carries a suppression comment with its reason.
    """

    rule_id = "RL006"
    title = "raw numpy array I/O only in repro.storage"

    _CALLS = frozenset({"save", "savez", "savez_compressed", "load", "memmap"})
    _HOME = "repro/storage/"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if self._HOME in module.posix_path:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in self._CALLS
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
            ):
                continue
            yield self.finding(
                module,
                node,
                f"np.{func.attr}() outside repro.storage — persist through "
                "SegmentWriter/open_snapshot (checksummed, atomically "
                "committed, mmap-able) so a torn write raises StorageError "
                "instead of scoring garbage",
            )
