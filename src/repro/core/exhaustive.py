"""Exhaustive Search (ExS) — Algorithm 1 of the paper.

Embed the query, compare it against *every* attribute-value vector of
every relation, average per relation, sort, threshold, top-k.  Accurate
but linear in the total number of values — and, as Sec 5.3 observes,
averaging over all attributes dilutes relevance on focused queries.

The scan state is one stacked ``(n_total, dim)`` matrix plus per-block
bookkeeping (which contiguous row block belongs to which relation).
Federation deltas patch those arrays in place — removed/updated blocks
are masked out, fresh blocks appended — so absorbing a delta never
re-embeds or re-stacks untouched relations.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.base import SearchMethod, even_chunks
from repro.core.results import RelationMatch
from repro.core.semimg import RelationEmbedding

__all__ = ["ExhaustiveSearch"]


class ExhaustiveSearch(SearchMethod):
    """Brute-force value-level semantic matching.

    Parameters
    ----------
    aggregate:
        ``"mean"`` (the paper's average over all attribute scores) or
        ``"max_mean"`` — the mean of each relation's ``top_fraction``
        best scores, an ablation knob for the dilution effect.
    top_fraction:
        Only used by ``"max_mean"``.
    vectorized:
        Algorithm 1 computes "the similarity score s between q' and
        each attribute vector" one attribute at a time; the default
        mirrors that per-attribute loop (and its cost profile — ExS is
        the paper's slowest method by an order of magnitude).  Set
        True for a batched matrix scan that produces identical scores.
        :meth:`search_batch` always scans in matrix form: it scores the
        whole ``(Q, d)`` query block against each relation in one GEMM.
    """

    name = "exs"

    def __init__(
        self,
        aggregate: str = "mean",
        top_fraction: float = 0.1,
        vectorized: bool = False,
    ):
        super().__init__()
        if aggregate not in ("mean", "max_mean"):
            raise ValueError("aggregate must be 'mean' or 'max_mean'")
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError("top_fraction must be in (0, 1]")
        self.aggregate = aggregate
        self.top_fraction = top_fraction
        self.vectorized = vectorized
        self._matrix: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        self._block_ids: list[str] = []
        self._block_sizes: list[int] = []
        self._block_cells: dict[str, int] = {}

    def _build(self) -> None:
        # Stack every relation's vectors once; queries scan the blocks.
        relations = self.embeddings.relations
        self._matrix = np.vstack([r.vectors for r in relations])
        self._counts = np.concatenate([r.counts for r in relations])
        self._block_ids = [r.relation_id for r in relations]
        self._block_sizes = [r.n_unique for r in relations]
        self._block_cells = {r.relation_id: r.n_cells for r in relations}

    def _apply_delta(
        self,
        added: list[RelationEmbedding],
        updated: list[RelationEmbedding],
        removed: list[str],
    ) -> None:
        """Patch the stacked matrix: mask out retired blocks, append
        fresh ones.  Untouched rows are moved, never recomputed."""
        assert self._matrix is not None and self._counts is not None
        drop = set(removed) | {r.relation_id for r in updated}
        if drop:
            keep = np.ones(self._matrix.shape[0], dtype=bool)
            kept_ids: list[str] = []
            kept_sizes: list[int] = []
            start = 0
            for rid, size in zip(self._block_ids, self._block_sizes):
                if rid in drop:
                    keep[start : start + size] = False
                    self._block_cells.pop(rid, None)
                else:
                    kept_ids.append(rid)
                    kept_sizes.append(size)
                start += size
            self._matrix = self._matrix[keep]
            self._counts = self._counts[keep]
            self._block_ids = kept_ids
            self._block_sizes = kept_sizes
        fresh = updated + added
        if fresh:
            self._matrix = np.vstack([self._matrix] + [r.vectors for r in fresh])
            self._counts = np.concatenate([self._counts] + [r.counts for r in fresh])
            for rel in fresh:
                self._block_ids.append(rel.relation_id)
                self._block_sizes.append(rel.n_unique)
                self._block_cells[rel.relation_id] = rel.n_cells

    def _blocks(self) -> list[tuple[str, int, int]]:
        """(relation_id, start_row, stop_row) per stacked block."""
        out: list[tuple[str, int, int]] = []
        start = 0
        for rid, size in zip(self._block_ids, self._block_sizes):
            out.append((rid, start, start + size))
            start += size
        return out

    def _aggregate_block(self, sims: np.ndarray, counts: np.ndarray) -> float:
        if self.aggregate == "mean":
            # Multiplicity-weighted mean == mean over all occurrences.
            return float(np.average(sims, weights=counts))
        keep = max(1, int(np.ceil(self.top_fraction * sims.shape[0])))
        top = np.partition(sims, sims.shape[0] - keep)[-keep:]
        return float(top.mean())

    def _score_all(self, query: str) -> list[RelationMatch]:
        with self.metrics.timer(f"{self.name}.encode"):
            q = self.embeddings.encode_query(query)
        assert self._matrix is not None and self._counts is not None
        matches = []
        with self.metrics.timer(f"{self.name}.scan"):
            for rid, start, stop in self._blocks():
                block = self._matrix[start:stop]
                if self.vectorized:
                    sims = block @ q  # unit vectors: dot == cosine
                else:
                    # Algorithm 1: "foreach Attribute v in r: compute the
                    # similarity score s between q' and w".
                    sims = np.fromiter(
                        (float(np.dot(block[i], q)) for i in range(block.shape[0])),
                        dtype=np.float64,
                        count=block.shape[0],
                    )
                matches.append(
                    RelationMatch(
                        relation_id=rid,
                        score=self._aggregate_block(sims, self._counts[start:stop]),
                        details={"n_values": self._block_cells[rid]},
                    )
                )
        return matches

    # -- batched scan ------------------------------------------------------

    def _encode_block(self, queries: Sequence[str]) -> np.ndarray:
        """The ``(Q, d)`` matrix of encoded query vectors."""
        with self.metrics.timer(f"{self.name}.encode"):
            return np.stack([self.embeddings.encode_query(q) for q in queries])

    def _scan_blocks(
        self, query_block: np.ndarray, blocks: Sequence[tuple[str, int, int]]
    ) -> list[list[RelationMatch]]:
        """Score every query against ``blocks``, one GEMM per relation.

        ``matrix[start:stop] @ query_block.T`` is an ``(n_unique, Q)``
        product: the per-query columns see exactly the values the
        sequential scan sees, but the hardware sees one matrix-matrix
        multiply instead of Q matrix-vector passes over the same memory.
        """
        assert self._matrix is not None and self._counts is not None
        block_t = np.ascontiguousarray(query_block.T)
        n_queries = query_block.shape[0]
        per_query: list[list[RelationMatch]] = [[] for _ in range(n_queries)]
        with self.metrics.timer(f"{self.name}.scan"):
            for rid, start, stop in blocks:
                sims = self._matrix[start:stop] @ block_t  # (n_unique, Q)
                if self.aggregate == "mean":
                    scores = np.average(sims, weights=self._counts[start:stop], axis=0)
                else:
                    keep = max(1, int(np.ceil(self.top_fraction * sims.shape[0])))
                    top = np.partition(sims, sims.shape[0] - keep, axis=0)
                    scores = top[sims.shape[0] - keep :].mean(axis=0)
                n_values = self._block_cells[rid]
                for b in range(n_queries):
                    per_query[b].append(
                        RelationMatch(
                            relation_id=rid,
                            score=float(scores[b]),
                            details={"n_values": n_values},
                        )
                    )
        return per_query

    def _score_batch(self, queries: Sequence[str]) -> list[list[RelationMatch]]:
        return self._scan_blocks(self._encode_block(queries), self._blocks())

    def _score_batch_parallel(
        self, queries: Sequence[str], workers: int
    ) -> list[list[RelationMatch]]:
        """Chunk the *relations* (not the queries) across the pool.

        ExS work scales with federation size, not query count, so the
        scan parallelizes along relations; each worker runs the batched
        GEMM over its slice and the per-query score lists are stitched
        back together in relation order.
        """
        blocks = self._blocks()
        chunks = even_chunks(len(blocks), workers)
        block = self._encode_block(queries)
        if len(chunks) < 2:
            return self._scan_blocks(block, blocks)
        with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            parts = list(
                pool.map(
                    lambda c: self._scan_blocks(block, [blocks[i] for i in c]),
                    chunks,
                )
            )
        merged: list[list[RelationMatch]] = [[] for _ in queries]
        for part in parts:
            for b, matches in enumerate(part):
                merged[b].extend(matches)
        return merged
