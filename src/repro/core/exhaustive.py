"""Exhaustive Search (ExS) — Algorithm 1 of the paper.

Embed the query, compare it against *every* attribute-value vector of
every relation, average per relation, sort, threshold, top-k.  Accurate
but linear in the total number of values — and, as Sec 5.3 observes,
averaging over all attributes dilutes relevance on focused queries.

The scan state is one stacked ``(n_total, dim)`` matrix plus per-block
bookkeeping (which contiguous row block belongs to which relation).
Federation deltas patch those arrays in place — removed/updated blocks
are masked out, fresh blocks appended — so absorbing a delta never
re-embeds or re-stacks untouched relations.

The serving kernel is *fused*: instead of one small GEMM per relation
(O(#relations) Python dispatch per query block), the whole stacked
matrix is multiplied against the query block in one GEMM and the
per-relation means fall out of a single ``np.add.reduceat`` segment
reduction over precomputed block offsets, with the count weights
pre-folded into a per-row weight vector at build/delta time.  The
``max_mean`` ablation takes a segmented-partition path over the same
fused similarity matrix.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.base import SearchMethod, even_chunks
from repro.core.results import RelationMatch
from repro.core.semimg import RelationEmbedding
from repro.exec import ShardScanSpec
from repro.linalg import ArrayBuffer, SharedBuffer, segment_scores
from repro.sanitize import guard_operands

__all__ = ["ExhaustiveSearch"]


class ExhaustiveSearch(SearchMethod):
    """Brute-force value-level semantic matching.

    Parameters
    ----------
    aggregate:
        ``"mean"`` (the paper's average over all attribute scores) or
        ``"max_mean"`` — the mean of each relation's ``top_fraction``
        best scores, an ablation knob for the dilution effect.
    top_fraction:
        Only used by ``"max_mean"``.
    vectorized:
        Algorithm 1 computes "the similarity score s between q' and
        each attribute vector" one attribute at a time; the default
        mirrors that per-attribute loop (and its cost profile — ExS is
        the paper's slowest method by an order of magnitude).  Set
        True to serve single queries through the fused matrix kernel.
    fused:
        Whether :meth:`search_batch` scans with the fused
        federation-wide kernel (one GEMM over the whole stacked matrix
        plus a segment reduction).  ``False`` falls back to the legacy
        per-relation GEMM loop — kept as the reference implementation
        for rank-identity tests and the fused-vs-per-block benchmark.
    dtype:
        Storage/compute dtype of the stacked matrix.  ``float32`` (the
        encoder's native precision) halves memory and bandwidth;
        ``float64`` is the compat mode matching the historical
        upcast-everything behavior.  Aggregation weights stay float64
        in both modes so segment means lose no precision beyond the
        similarity dtype itself.
    shared_buffers:
        Store the stacked matrix in a named shared-memory segment
        (:class:`~repro.linalg.SharedBuffer`) so process-backend shard
        workers can map the same bytes zero-copy.  An engine running a
        :class:`~repro.exec.ProcessBackend` turns this on; the default
        keeps the matrix an ordinary ndarray.
    """

    name = "exs"

    def __init__(
        self,
        aggregate: str = "mean",
        top_fraction: float = 0.1,
        vectorized: bool = False,
        fused: bool = True,
        dtype: "str | np.dtype[Any] | type" = np.float32,
        shared_buffers: bool = False,
    ):
        super().__init__()
        if aggregate not in ("mean", "max_mean"):
            raise ValueError("aggregate must be 'mean' or 'max_mean'")
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError("top_fraction must be in (0, 1]")
        self.aggregate = aggregate
        self.top_fraction = top_fraction
        self.vectorized = vectorized
        self.fused = fused
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("dtype must be float32 or float64")
        self.shared_buffers = shared_buffers
        self._matrix: np.ndarray | None = None
        self._buffer: ArrayBuffer | None = None
        self._counts: np.ndarray | None = None
        self._block_ids: list[str] = []
        self._block_sizes: list[int] = []
        self._block_cells: dict[str, int] = {}
        #: Start row of each stacked block (``np.add.reduceat`` offsets).
        self._offsets: np.ndarray = np.empty(0, dtype=np.intp)
        #: Per-row weight = count / block count-sum, so a segment sum of
        #: ``weight * sim`` IS the multiplicity-weighted block mean.
        # repro-lint: disable=RL003 -- deliberate float64 accumulator: weights stay exact regardless of storage dtype
        self._row_weights: np.ndarray = np.empty(0, dtype=np.float64)

    def index_bytes(self) -> int:
        """Resident bytes of the stacked vector matrix."""
        return int(self._matrix.nbytes) if self._matrix is not None else 0

    def _store_matrix(self, stacked: np.ndarray) -> None:
        """Publish ``stacked`` as the scan matrix.

        In ``shared_buffers`` mode the rows are copied into a fresh
        named segment and the previous segment is released *after* the
        swap — deltas run under the engine's writer lock, so no inline
        scan can be reading the old buffer, and worker processes hold
        their own mapping until the re-publish replaces it.
        """
        stacked = stacked.astype(self.dtype, copy=False)
        if not self.shared_buffers:
            # A previously adopted snapshot backing is stale once the
            # layout changed; drop our reference along with the swap.
            old, self._buffer = self._buffer, None
            self._matrix = stacked
            if old is not None:
                old.close()
            return
        old, self._buffer = self._buffer, SharedBuffer.from_array(stacked)
        self._matrix = self._buffer.array
        if old is not None:
            old.close()

    def _adopt_backing(self) -> bool:
        """Serve directly off the store's snapshot backing when possible.

        A store materialized from a segment snapshot already holds the
        stacked matrix — eagerly or as a read-only mapping — so
        re-stacking it would copy every byte for nothing.  Adoption
        needs the dtypes to agree and, in ``shared_buffers`` mode, a
        cross-process :meth:`~repro.linalg.ArrayBuffer.spec` (a mapped
        file qualifies: workers map the same segment and no
        ``shared_memory`` is allocated at all).  An eager process-local
        backing under a process backend falls back to the copy path so
        workers still get a shareable segment.
        """
        backing = self.embeddings.stack_buffer()
        if backing is None or backing.array.dtype != self.dtype:
            return False
        if self.shared_buffers and backing.spec() is None:
            return False
        old, self._buffer = self._buffer, backing.addref()
        self._matrix = backing.array
        if old is not None:
            old.close()
        return True

    def _build(self) -> None:
        # Stack every relation's vectors once; queries scan the blocks.
        relations = self.embeddings.relations
        if not self._adopt_backing():
            self._store_matrix(np.vstack([r.vectors for r in relations]))
        self._counts = np.concatenate([r.counts for r in relations])
        self._block_ids = [r.relation_id for r in relations]
        self._block_sizes = [r.n_unique for r in relations]
        self._block_cells = {r.relation_id: r.n_cells for r in relations}
        self._refresh_segments()

    def _refresh_segments(self) -> None:
        """Recompute the reduceat offsets and pre-folded mean weights.

        Called whenever the stacked layout changes (build or delta).
        Weights are float64 regardless of the storage dtype: they cost
        8 bytes/row but keep the segment reduction's normalization
        exact, so float32 mode loses precision only where the GEMM
        already did.
        """
        assert self._counts is not None
        sizes = np.asarray(self._block_sizes, dtype=np.intp)
        self._offsets = np.concatenate(
            [np.zeros(1, dtype=np.intp), np.cumsum(sizes)[:-1]]
        )
        # repro-lint: disable=RL003 -- deliberate float64 accumulator (exact normalization, see docstring)
        counts = self._counts.astype(np.float64)
        if counts.size:
            totals = np.add.reduceat(counts, self._offsets)
            self._row_weights = counts / np.repeat(totals, sizes)
        else:
            # repro-lint: disable=RL003 -- deliberate float64 accumulator (empty weight vector)
            self._row_weights = np.empty(0, dtype=np.float64)

    def _apply_delta(
        self,
        added: list[RelationEmbedding],
        updated: list[RelationEmbedding],
        removed: list[str],
    ) -> None:
        """Patch the stacked matrix: mask out retired blocks, append
        fresh ones.  Untouched rows are moved, never recomputed.  The
        final layout is published once through :meth:`_store_matrix`,
        so shared-buffer mode swaps segments exactly once per delta."""
        assert self._matrix is not None and self._counts is not None
        matrix = self._matrix
        drop = set(removed) | {r.relation_id for r in updated}
        if drop:
            keep = np.ones(matrix.shape[0], dtype=bool)
            kept_ids: list[str] = []
            kept_sizes: list[int] = []
            start = 0
            for rid, size in zip(self._block_ids, self._block_sizes):
                if rid in drop:
                    keep[start : start + size] = False
                    self._block_cells.pop(rid, None)
                else:
                    kept_ids.append(rid)
                    kept_sizes.append(size)
                start += size
            matrix = matrix[keep]
            self._counts = self._counts[keep]
            self._block_ids = kept_ids
            self._block_sizes = kept_sizes
        fresh = updated + added
        if fresh:
            matrix = np.vstack(
                [matrix] + [r.vectors.astype(self.dtype, copy=False) for r in fresh]
            )
            self._counts = np.concatenate([self._counts] + [r.counts for r in fresh])
            for rel in fresh:
                self._block_ids.append(rel.relation_id)
                self._block_sizes.append(rel.n_unique)
                self._block_cells[rel.relation_id] = rel.n_cells
        if drop or fresh:
            self._store_matrix(matrix)
        self._refresh_segments()

    def _blocks(self) -> list[tuple[str, int, int]]:
        """(relation_id, start_row, stop_row) per stacked block."""
        out: list[tuple[str, int, int]] = []
        start = 0
        for rid, size in zip(self._block_ids, self._block_sizes):
            out.append((rid, start, start + size))
            start += size
        return out

    def _aggregate_block(self, sims: np.ndarray, counts: np.ndarray) -> float:
        if self.aggregate == "mean":
            # Multiplicity-weighted mean == mean over all occurrences.
            return float(np.average(sims, weights=counts))
        keep = max(1, int(np.ceil(self.top_fraction * sims.shape[0])))
        top = np.partition(sims, sims.shape[0] - keep)[-keep:]
        return float(top.mean())

    def _encode_query(self, query: str) -> np.ndarray:
        with self.metrics.timer(f"{self.name}.encode"):
            return self.embeddings.encode_query(query).astype(self.dtype, copy=False)

    def _score_all(self, query: str) -> list[RelationMatch]:
        q = self._encode_query(query)
        assert self._matrix is not None and self._counts is not None
        if self.vectorized:
            # Single query through the fused kernel (a (n, 1) GEMM).
            return self._scan_fused(np.ascontiguousarray(q[np.newaxis, :]))[0]
        matches = []
        with self.metrics.timer(f"{self.name}.scan"):
            for rid, start, stop in self._blocks():
                block = self._matrix[start:stop]
                # Algorithm 1: "foreach Attribute v in r: compute the
                # similarity score s between q' and w".
                sims = np.fromiter(
                    (float(np.dot(block[i], q)) for i in range(block.shape[0])),
                    # repro-lint: disable=RL003 -- per-attribute loop accumulates in float64 by design
                    dtype=np.float64,
                    count=block.shape[0],
                )
                matches.append(
                    RelationMatch(
                        relation_id=rid,
                        score=self._aggregate_block(sims, self._counts[start:stop]),
                        details={"n_values": self._block_cells[rid]},
                    )
                )
        return matches

    # -- batched scan ------------------------------------------------------

    def _encode_block(self, queries: Sequence[str]) -> np.ndarray:
        """The ``(Q, d)`` matrix of encoded query vectors."""
        with self.metrics.timer(f"{self.name}.encode"):
            block = np.stack([self.embeddings.encode_query(q) for q in queries])
        return block.astype(self.dtype, copy=False)

    def _segment_scores(
        self, sims: np.ndarray, offsets: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """Per-relation scores of a fused ``(rows, Q)`` similarity slab.

        ``mean``: one segment reduction of the weight-folded similarities
        (weights are float64, so the reduction upcasts float32 sims and
        the normalization is exact).  ``max_mean``: a segmented
        partition — the GEMM is already fused, only the per-segment
        top-fraction selection walks the blocks.

        Delegates to :func:`repro.linalg.segment_scores` — the very
        kernel process-backend shard workers run — so worker scores are
        bitwise identical to this inline path.
        """
        return segment_scores(
            sims,
            offsets,
            weights,
            aggregate=self.aggregate,
            top_fraction=self.top_fraction,
        )

    def _emit_matches(
        self, block_ids: Sequence[str], scores: np.ndarray
    ) -> list[list[RelationMatch]]:
        """Turn a ``(R, Q)`` score matrix into per-query match lists."""
        n_queries = scores.shape[1]
        cells = [self._block_cells[rid] for rid in block_ids]
        return [
            [
                RelationMatch(
                    relation_id=rid,
                    score=float(scores[r, b]),
                    details={"n_values": cells[r]},
                )
                for r, rid in enumerate(block_ids)
            ]
            for b in range(n_queries)
        ]

    def _scan_fused(
        self,
        query_block: np.ndarray,
        block_range: range | None = None,
    ) -> list[list[RelationMatch]]:
        """Fused scan: one GEMM over (a row range of) the stacked matrix.

        ``block_range`` restricts the scan to a contiguous range of
        relation blocks — the unit the parallel path chunks by, mapped
        to a row range so workers slice the matrix instead of looping
        relation lists.
        """
        assert self._matrix is not None
        if block_range is None:
            block_range = range(len(self._block_ids))
        if len(block_range) == 0:
            return [[] for _ in range(query_block.shape[0])]
        row_start = int(self._offsets[block_range.start])
        row_stop = (
            int(self._offsets[block_range.stop])
            if block_range.stop < len(self._block_ids)
            else self._matrix.shape[0]
        )
        offsets = self._offsets[block_range.start : block_range.stop] - row_start
        with self.metrics.timer(f"{self.name}.scan"):
            rows = self._matrix[row_start:row_stop]
            if self.sanitize:
                guard_operands(
                    rows,
                    query_block,
                    where=f"{self.name}._scan_fused",
                    expect_dtype=self.dtype,
                )
            sims = rows @ query_block.T  # (rows, Q), one GEMM
            self.metrics.counter(f"{self.name}.fused_rows").inc(
                rows.shape[0] * query_block.shape[0]
            )
            scores = self._segment_scores(
                sims, offsets, self._row_weights[row_start:row_stop]
            )
        block_ids = self._block_ids[block_range.start : block_range.stop]
        return self._emit_matches(block_ids, scores)

    def _scan_blocks(
        self, query_block: np.ndarray, blocks: Sequence[tuple[str, int, int]]
    ) -> list[list[RelationMatch]]:
        """Legacy scan: score ``blocks`` one per-relation GEMM at a time.

        Kept as the reference path (``fused=False``): rank-identity
        tests pin the fused kernel against it and the benchmark
        measures what the fusion buys.
        """
        assert self._matrix is not None and self._counts is not None
        block_t = np.ascontiguousarray(query_block.T)
        n_queries = query_block.shape[0]
        per_query: list[list[RelationMatch]] = [[] for _ in range(n_queries)]
        with self.metrics.timer(f"{self.name}.scan"):
            for rid, start, stop in blocks:
                sims = self._matrix[start:stop] @ block_t  # (n_unique, Q)
                if self.aggregate == "mean":
                    scores = np.average(sims, weights=self._counts[start:stop], axis=0)
                else:
                    keep = max(1, int(np.ceil(self.top_fraction * sims.shape[0])))
                    top = np.partition(sims, sims.shape[0] - keep, axis=0)
                    scores = top[sims.shape[0] - keep :].mean(axis=0)
                n_values = self._block_cells[rid]
                for b in range(n_queries):
                    per_query[b].append(
                        RelationMatch(
                            relation_id=rid,
                            score=float(scores[b]),
                            details={"n_values": n_values},
                        )
                    )
        return per_query

    def _score_batch(self, queries: Sequence[str]) -> list[list[RelationMatch]]:
        block = self._encode_block(queries)
        if self.fused:
            return self._scan_fused(block)
        return self._scan_blocks(block, self._blocks())

    # -- resident shard scans ----------------------------------------------

    def scan_spec(self) -> ShardScanSpec | None:
        """This method's fused-scan state for a worker process.

        Only the fused kernel has a resident form; the legacy
        per-relation loop (``fused=False``) returns ``None`` and the
        sharded path falls back to in-process scans.
        """
        if not self.fused or self._matrix is None:
            return None
        spec = self._buffer.spec() if self._buffer is not None else None
        return ShardScanSpec(
            generation=self.embeddings.generation,
            buffer=spec,
            matrix=None if spec is not None else self._matrix,
            offsets=self._offsets,
            weights=self._row_weights,
            aggregate=self.aggregate,
            top_fraction=self.top_fraction,
        )

    def matches_from_scores(self, scores: np.ndarray) -> list[list[RelationMatch]]:
        return self._emit_matches(self._block_ids, scores)

    def close(self) -> None:
        super().close()
        buffer, self._buffer = self._buffer, None
        self._matrix = None
        if buffer is not None:
            buffer.close()

    def _score_batch_parallel(
        self, queries: Sequence[str], workers: int
    ) -> list[list[RelationMatch]]:
        """Chunk the *relations* (not the queries) across the pool.

        ExS work scales with federation size, not query count, so the
        scan parallelizes along relations.  With the fused kernel each
        worker runs one GEMM + segment reduction over its contiguous
        *row range*; per-query score lists are stitched back together
        in relation order.
        """
        n_blocks = len(self._block_ids)
        chunks = even_chunks(n_blocks, workers)
        block = self._encode_block(queries)
        if len(chunks) < 2:
            return self._score_batch(queries)
        if self.fused:
            parts = self._backend().map(
                lambda c: self._scan_fused(block, c), chunks, cap=workers
            )
        else:
            blocks = self._blocks()
            parts = self._backend().map(
                lambda c: self._scan_blocks(block, [blocks[i] for i in c]),
                chunks,
                cap=workers,
            )
        merged: list[list[RelationMatch]] = [[] for _ in queries]
        for part in parts:
            for b, matches in enumerate(part):
                merged[b].extend(matches)
        return merged
