"""Exhaustive Search (ExS) — Algorithm 1 of the paper.

Embed the query, compare it against *every* attribute-value vector of
every relation, average per relation, sort, threshold, top-k.  Accurate
but linear in the total number of values — and, as Sec 5.3 observes,
averaging over all attributes dilutes relevance on focused queries.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.base import SearchMethod, even_chunks
from repro.core.results import RelationMatch
from repro.core.semimg import RelationEmbedding

__all__ = ["ExhaustiveSearch"]


class ExhaustiveSearch(SearchMethod):
    """Brute-force value-level semantic matching.

    Parameters
    ----------
    aggregate:
        ``"mean"`` (the paper's average over all attribute scores) or
        ``"max_mean"`` — the mean of each relation's ``top_fraction``
        best scores, an ablation knob for the dilution effect.
    top_fraction:
        Only used by ``"max_mean"``.
    vectorized:
        Algorithm 1 computes "the similarity score s between q' and
        each attribute vector" one attribute at a time; the default
        mirrors that per-attribute loop (and its cost profile — ExS is
        the paper's slowest method by an order of magnitude).  Set
        True for a batched matrix scan that produces identical scores.
        :meth:`search_batch` always scans in matrix form: it scores the
        whole ``(Q, d)`` query block against each relation in one GEMM.
    """

    name = "exs"

    def __init__(
        self,
        aggregate: str = "mean",
        top_fraction: float = 0.1,
        vectorized: bool = False,
    ):
        super().__init__()
        if aggregate not in ("mean", "max_mean"):
            raise ValueError("aggregate must be 'mean' or 'max_mean'")
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError("top_fraction must be in (0, 1]")
        self.aggregate = aggregate
        self.top_fraction = top_fraction
        self.vectorized = vectorized

    def _build(self) -> None:
        # ExS needs no auxiliary structures: the semantic representation
        # itself is scanned at query time.
        pass

    def _score_all(self, query: str) -> list[RelationMatch]:
        with self.metrics.timer("exs.encode"):
            q = self.embeddings.encode_query(query)
        matches = []
        with self.metrics.timer("exs.scan"):
            for rel in self.embeddings.relations:
                if self.vectorized:
                    sims = rel.vectors @ q  # unit vectors: dot == cosine
                else:
                    # Algorithm 1: "foreach Attribute v in r: compute the
                    # similarity score s between q' and w".
                    sims = np.fromiter(
                        (float(np.dot(rel.vectors[i], q)) for i in range(rel.n_unique)),
                        dtype=np.float64,
                        count=rel.n_unique,
                    )
                if self.aggregate == "mean":
                    # Multiplicity-weighted mean == mean over all occurrences.
                    score = float(np.average(sims, weights=rel.counts))
                else:
                    keep = max(1, int(np.ceil(self.top_fraction * sims.shape[0])))
                    top = np.partition(sims, sims.shape[0] - keep)[-keep:]
                    score = float(top.mean())
                matches.append(
                    RelationMatch(
                        relation_id=rel.relation_id,
                        score=score,
                        details={"n_values": rel.n_cells},
                    )
                )
        return matches

    # -- batched scan ------------------------------------------------------

    def _encode_block(self, queries: Sequence[str]) -> np.ndarray:
        """The ``(Q, d)`` matrix of encoded query vectors."""
        with self.metrics.timer("exs.encode"):
            return np.stack([self.embeddings.encode_query(q) for q in queries])

    def _scan_relations(
        self, query_block: np.ndarray, relations: Sequence[RelationEmbedding]
    ) -> list[list[RelationMatch]]:
        """Score every query against ``relations``, one GEMM per relation.

        ``rel.vectors @ query_block.T`` is an ``(n_unique, Q)`` product:
        the per-query columns see exactly the values the sequential scan
        sees, but the hardware sees one matrix-matrix multiply instead
        of Q matrix-vector passes over the same memory.
        """
        block_t = np.ascontiguousarray(query_block.T)
        n_queries = query_block.shape[0]
        per_query: list[list[RelationMatch]] = [[] for _ in range(n_queries)]
        with self.metrics.timer("exs.scan"):
            for rel in relations:
                sims = rel.vectors @ block_t  # (n_unique, Q)
                if self.aggregate == "mean":
                    scores = np.average(sims, weights=rel.counts, axis=0)
                else:
                    keep = max(1, int(np.ceil(self.top_fraction * sims.shape[0])))
                    top = np.partition(sims, sims.shape[0] - keep, axis=0)
                    scores = top[sims.shape[0] - keep :].mean(axis=0)
                for b in range(n_queries):
                    per_query[b].append(
                        RelationMatch(
                            relation_id=rel.relation_id,
                            score=float(scores[b]),
                            details={"n_values": rel.n_cells},
                        )
                    )
        return per_query

    def _score_batch(self, queries: Sequence[str]) -> list[list[RelationMatch]]:
        return self._scan_relations(self._encode_block(queries), self.embeddings.relations)

    def _score_batch_parallel(
        self, queries: Sequence[str], workers: int
    ) -> list[list[RelationMatch]]:
        """Chunk the *relations* (not the queries) across the pool.

        ExS work scales with federation size, not query count, so the
        scan parallelizes along relations; each worker runs the batched
        GEMM over its slice and the per-query score lists are stitched
        back together in relation order.
        """
        relations = self.embeddings.relations
        chunks = even_chunks(len(relations), workers)
        block = self._encode_block(queries)
        if len(chunks) < 2:
            return self._scan_relations(block, relations)
        with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            parts = list(
                pool.map(
                    lambda c: self._scan_relations(block, [relations[i] for i in c]),
                    chunks,
                )
            )
        merged: list[list[RelationMatch]] = [[] for _ in queries]
        for part in parts:
            for b, matches in enumerate(part):
                merged[b].extend(matches)
        return merged
