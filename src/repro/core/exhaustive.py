"""Exhaustive Search (ExS) — Algorithm 1 of the paper.

Embed the query, compare it against *every* attribute-value vector of
every relation, average per relation, sort, threshold, top-k.  Accurate
but linear in the total number of values — and, as Sec 5.3 observes,
averaging over all attributes dilutes relevance on focused queries.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SearchMethod
from repro.core.results import RelationMatch

__all__ = ["ExhaustiveSearch"]


class ExhaustiveSearch(SearchMethod):
    """Brute-force value-level semantic matching.

    Parameters
    ----------
    aggregate:
        ``"mean"`` (the paper's average over all attribute scores) or
        ``"max_mean"`` — the mean of each relation's ``top_fraction``
        best scores, an ablation knob for the dilution effect.
    top_fraction:
        Only used by ``"max_mean"``.
    vectorized:
        Algorithm 1 computes "the similarity score s between q' and
        each attribute vector" one attribute at a time; the default
        mirrors that per-attribute loop (and its cost profile — ExS is
        the paper's slowest method by an order of magnitude).  Set
        True for a batched matrix scan that produces identical scores.
    """

    name = "exs"

    def __init__(
        self,
        aggregate: str = "mean",
        top_fraction: float = 0.1,
        vectorized: bool = False,
    ):
        super().__init__()
        if aggregate not in ("mean", "max_mean"):
            raise ValueError("aggregate must be 'mean' or 'max_mean'")
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError("top_fraction must be in (0, 1]")
        self.aggregate = aggregate
        self.top_fraction = top_fraction
        self.vectorized = vectorized

    def _build(self) -> None:
        # ExS needs no auxiliary structures: the semantic representation
        # itself is scanned at query time.
        pass

    def _score_all(self, query: str) -> list[RelationMatch]:
        q = self.embeddings.encode_query(query)
        matches = []
        for rel in self.embeddings.relations:
            if self.vectorized:
                sims = rel.vectors @ q  # unit vectors: dot == cosine
            else:
                # Algorithm 1: "foreach Attribute v in r: compute the
                # similarity score s between q' and w".
                sims = np.fromiter(
                    (float(np.dot(rel.vectors[i], q)) for i in range(rel.n_unique)),
                    dtype=np.float64,
                    count=rel.n_unique,
                )
            if self.aggregate == "mean":
                # Multiplicity-weighted mean == mean over all occurrences.
                score = float(np.average(sims, weights=rel.counts))
            else:
                keep = max(1, int(np.ceil(self.top_fraction * sims.shape[0])))
                top = np.partition(sims, sims.shape[0] - keep)[-keep:]
                score = float(top.mean())
            matches.append(
                RelationMatch(
                    relation_id=rel.relation_id,
                    score=score,
                    details={"n_values": rel.n_cells},
                )
            )
        return matches
