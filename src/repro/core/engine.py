"""The :class:`DiscoveryEngine` facade (Figure 2's framework, as code).

The engine owns the encoder and the federation's semantic
representation, builds each method's index lazily and exactly once, and
serves queries through a single entry point — so ExS, ANNS and CTS are
always compared over identical embeddings.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.anns import ANNSearch
from repro.core.base import SearchMethod
from repro.core.cts import ClusteredTargetedSearch
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.results import BatchResult, SearchResult
from repro.core.semimg import (
    FederationEmbeddings,
    build_federation_embeddings,
    load_federation_embeddings,
    save_federation_embeddings,
)
from repro.datamodel.relation import Federation
from repro.embedding.base import SentenceEncoder
from repro.embedding.cache import CachingEncoder
from repro.embedding.semantic import SemanticHashEncoder
from repro.errors import ConfigurationError, NotFittedError
from repro.obs import MetricsRegistry

__all__ = ["DiscoveryEngine"]


class DiscoveryEngine:
    """Index a federation once, search it with any method.

    Parameters
    ----------
    encoder:
        Sentence encoder; defaults to a cached
        :class:`SemanticHashEncoder` at ``dim`` dimensions.
    dim:
        Dimensionality of the default encoder (ignored when ``encoder``
        is given). 768 matches the paper's model; experiments use
        smaller dims for speed.
    method_params:
        Per-method constructor overrides, e.g.
        ``{"cts": {"top_clusters": 3}, "anns": {"n_candidates": 64}}``.

    Example
    -------
    >>> engine = DiscoveryEngine(dim=128)
    >>> engine.index(federation)                        # doctest: +SKIP
    >>> result = engine.search("covid vaccine", method="cts")  # doctest: +SKIP
    """

    METHODS = ("exs", "anns", "cts")

    def __init__(
        self,
        encoder: SentenceEncoder | None = None,
        dim: int = 768,
        method_params: dict[str, dict] | None = None,
    ) -> None:
        if encoder is None:
            encoder = CachingEncoder(SemanticHashEncoder(dim=dim))
        self.encoder = encoder
        self.method_params = dict(method_params or {})
        unknown = set(self.method_params) - set(self.METHODS)
        if unknown:
            raise ConfigurationError(f"unknown methods in method_params: {sorted(unknown)}")
        self._embeddings: FederationEmbeddings | None = None
        self._methods: dict[str, SearchMethod] = {}
        #: Shared observability registry: every method and its vector-db
        #: collections record counters and per-stage latencies here.
        self.metrics = MetricsRegistry()

    # -- indexing -----------------------------------------------------------

    def index(self, federation: Federation) -> "DiscoveryEngine":
        """Vectorize the federation (methods build lazily on first use)."""
        self._embeddings = build_federation_embeddings(federation, self.encoder)
        self._methods.clear()
        return self

    @property
    def embeddings(self) -> FederationEmbeddings:
        if self._embeddings is None:
            raise NotFittedError("DiscoveryEngine.index() has not been called")
        return self._embeddings

    @property
    def is_indexed(self) -> bool:
        return self._embeddings is not None

    def save_index(self, path) -> None:
        """Persist the federation embeddings (not the method indexes,
        which rebuild quickly relative to re-embedding)."""
        save_federation_embeddings(self.embeddings, path)

    def load_index(self, path) -> "DiscoveryEngine":
        """Restore embeddings saved by :meth:`save_index`.

        The engine must be configured with the same encoder settings
        that built the saved embeddings.
        """
        self._embeddings = load_federation_embeddings(path, self.encoder)
        self._methods.clear()
        return self

    def _make_method(self, name: str) -> SearchMethod:
        params = self.method_params.get(name, {})
        if name == "exs":
            return ExhaustiveSearch(**params)
        if name == "anns":
            return ANNSearch(**params)
        if name == "cts":
            return ClusteredTargetedSearch(**params)
        raise ConfigurationError(
            f"unknown method {name!r}; expected one of {self.METHODS}"
        )

    def method(self, name: str) -> SearchMethod:
        """Get (building if needed) a search method's index."""
        if name not in self._methods:
            method = self._make_method(name)
            # Share the engine's registry BEFORE index() so index-time
            # structures (vector-db collections) report into it too.
            method.metrics = self.metrics
            method.index(self.embeddings)
            self._methods[name] = method
        return self._methods[name]

    def build_all(self) -> "DiscoveryEngine":
        """Eagerly build every method's index (used before timing runs)."""
        for name in self.METHODS:
            self.method(name)
        return self

    # -- querying ---------------------------------------------------------------

    def search(
        self, query: str, method: str = "cts", k: int = 10, h: float = 0.0
    ) -> SearchResult:
        """Answer a keyword query with the chosen algorithm."""
        self.metrics.counter("engine.queries").inc()
        return self.method(method).search(query, k=k, h=h)

    def search_batch(
        self,
        queries: Iterable[str],
        method: str = "cts",
        k: int = 10,
        h: float = 0.0,
        workers: int = 1,
    ) -> BatchResult:
        """Answer many queries in one call, amortizing shared work.

        Rankings and scores are element-wise equivalent to calling
        :meth:`search` per query; the batched kernels encode the whole
        block up front, scan it with matrix-matrix products (ExS),
        batch candidate retrieval (ANNS) or medoid routing (CTS), and
        — with ``workers > 1`` — spread the scan over a thread pool.
        Per-stage latencies land in :attr:`metrics`.
        """
        queries = list(queries)
        self.metrics.counter("engine.queries").inc(len(queries))
        self.metrics.counter("engine.batches").inc()
        return self.method(method).search_batch(queries, k=k, h=h, workers=workers)

    def search_all_methods(
        self, query: str, k: int = 10, h: float = 0.0
    ) -> dict[str, SearchResult]:
        """Run the same query through ExS, ANNS and CTS (for comparisons)."""
        return {name: self.search(query, method=name, k=k, h=h) for name in self.METHODS}
