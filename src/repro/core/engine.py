"""The :class:`DiscoveryEngine` facade (Figure 2's framework, as code).

The engine owns the encoder and the federation's semantic
representation, builds each method's index lazily and exactly once, and
serves queries through a single entry point — so ExS, ANNS and CTS are
always compared over identical embeddings.

Federations churn in production, so the engine also owns the
incremental lifecycle: :meth:`add_relations`, :meth:`update_relations`
and :meth:`remove_relations` thread one delta through the semantic
store and every built method index atomically.  Mutations take the
writer side of a readers-writer lock while searches take the reader
side, so queries in flight — including batches spread over ``workers >
1`` thread pools — always observe a complete generation, never a torn
one.
"""

from __future__ import annotations

import threading
import time
import weakref

import numpy as np
from collections.abc import Iterable, Mapping, Sequence
from contextlib import AbstractContextManager
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.cache import CacheSignature, SemanticResultCache, resolve_query_cache
from repro.core.anns import ANNSearch
from repro.core.base import SearchMethod
from repro.core.cts import ClusteredTargetedSearch
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.lifecycle import (
    FederationDelta,
    InstrumentedRWLock,
    RWLock,
    guarded_by,
    requires_lock,
)
from repro.core.results import BatchResult, SearchResult
from repro.core.sharding import ShardMap, ShardedStore, make_sharded_method
from repro.core.semimg import (
    FederationEmbeddings,
    RelationEmbedding,
    build_federation_embeddings,
    build_relation_embedding,
    load_federation_embeddings,
    save_federation_embeddings,
)
from repro.datamodel.relation import Federation, Relation
from repro.embedding.base import SentenceEncoder
from repro.embedding.cache import CachingEncoder
from repro.embedding.semantic import SemanticHashEncoder
from repro.errors import ConfigurationError, NotFittedError, StorageError
from repro.exec import ExecutionBackend, resolve_backend
from repro.obs import MetricsRegistry
from repro.sanitize import lockset, sanitize_enabled
from repro.storage import (
    SegmentWriter,
    is_snapshot,
    live_mapped_nbytes,
    open_snapshot,
)

if TYPE_CHECKING:  # circular at runtime: repro.serving wraps this engine
    from repro.serving import ServingEngine

__all__ = ["DiscoveryEngine"]

#: Accepted shapes for the relation arguments of the lifecycle API.
RelationsLike = Mapping[str, Relation] | Iterable[tuple[str, Relation]]

#: ``meta["kind"]`` tag of a sharded index snapshot: a root manifest
#: describing the shard layout plus one ``shard-<i>/`` sub-snapshot per
#: shard, each an ordinary federation-embeddings snapshot.
SHARDED_SNAPSHOT_KIND = "sharded-index"


@guarded_by("_lifecycle_lock", "_embeddings", "_sharded", "_methods")
class DiscoveryEngine:
    """Index a federation once, search it with any method.

    Parameters
    ----------
    encoder:
        Sentence encoder; defaults to a cached
        :class:`SemanticHashEncoder` at ``dim`` dimensions.
    dim:
        Dimensionality of the default encoder (ignored when ``encoder``
        is given). 768 matches the paper's model; experiments use
        smaller dims for speed.
    method_params:
        Per-method constructor overrides, e.g.
        ``{"cts": {"top_clusters": 3}, "anns": {"n_candidates": 64}}``.
    dtype:
        Storage/compute dtype for the scan methods (ExS stacked matrix,
        ANNS values collection).  The default float32 matches the
        encoder's native precision, halving resident index memory and
        scan bandwidth; pass ``numpy.float64`` for the historical
        upcast-everything compat mode.  CTS's reduction/clustering
        pipeline stays float64 in both modes.  Per-method
        ``method_params`` overrides win over this knob.
    shards:
        Number of store shards.  The default ``1`` keeps today's
        monolithic layout; ``shards=N`` partitions the federation with
        a deterministic :class:`~repro.core.sharding.ShardMap`
        (rendezvous hashing over relation ids), builds one method
        index per shard, serves queries scatter-gather with an exact
        top-k merge, and routes each delta to the owning shards only.
        ExS and exact-index ANNS rankings are identical to the
        unsharded engine; CTS clusters and routes per shard.
    shard_seed:
        Seed of the rendezvous hash — must be stable across sessions
        that share a persisted index.
    executor:
        The execution backend running every parallel site — query
        fan-outs, sharded scatter-gather, fused-scan chunking.  Pass a
        backend name (``"inline"`` / ``"thread"`` / ``"process"``), a
        ready :class:`~repro.exec.ExecutionBackend` instance (the
        caller then owns its lifecycle), or ``None`` to defer to the
        ``REPRO_EXECUTOR`` environment variable (default ``thread``).
        A process backend additionally stores ExS scan matrices in
        shared memory and scans them in resident worker processes.
        The engine closes a backend it created itself at
        :meth:`close`.
    sanitize:
        Arm the runtime sanitizers: the lifecycle lock becomes an
        :class:`~repro.core.lifecycle.InstrumentedRWLock` (raises on
        write-while-reading reentrancy, double-release and
        reader-starvation instead of deadlocking) and the fused scan
        kernels guard their operands against NaN/Inf and silent dtype
        promotion.  ``None`` (the default) defers to the
        ``REPRO_SANITIZE`` environment variable, which is how the CI
        sanitizer shard runs the ordinary test suite instrumented.
    query_cache:
        Semantic query-result cache above the methods
        (:class:`~repro.cache.SemanticResultCache`): exact text hits
        plus near-duplicate embedding hits (cosine >= tau), invalidated
        precisely by the store's generation counter.  Pass a ready
        instance (its metrics rebind to this engine's registry), ``True``
        / a config string (``"tau=0.95,capacity=1024"``), or ``None`` to
        defer to the ``REPRO_QUERY_CACHE`` environment variable
        (default: off).

    Example
    -------
    >>> engine = DiscoveryEngine(dim=128)
    >>> engine.index(federation)                        # doctest: +SKIP
    >>> result = engine.search("covid vaccine", method="cts")  # doctest: +SKIP
    """

    METHODS = ("exs", "anns", "cts")

    # Lockset-tracked swap fields (REPRO_SANITIZE=2): readers are
    # lock-free by design, but every rebind must hold the writer side.
    _embeddings = lockset.TrackedField("publish")
    _sharded = lockset.TrackedField("publish")

    def __init__(
        self,
        encoder: SentenceEncoder | None = None,
        dim: int = 768,
        method_params: dict[str, dict[str, Any]] | None = None,
        shards: int = 1,
        shard_seed: int = 0,
        dtype: "str | np.dtype | type" = np.float32,
        executor: "ExecutionBackend | str | None" = None,
        sanitize: bool | None = None,
        query_cache: "SemanticResultCache | bool | str | None" = None,
    ) -> None:
        #: Shared observability registry: every method and its vector-db
        #: collections record counters and per-stage latencies here.
        self.metrics = MetricsRegistry()
        if encoder is None:
            encoder = CachingEncoder(SemanticHashEncoder(dim=dim), metrics=self.metrics)
        self.encoder = encoder
        self.method_params = dict(method_params or {})
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ConfigurationError("dtype must be float32 or float64")
        unknown = set(self.method_params) - set(self.METHODS)
        if unknown:
            raise ConfigurationError(f"unknown methods in method_params: {sorted(unknown)}")
        if shards < 1:
            raise ConfigurationError("shards must be >= 1")
        self.shards = shards
        self.shard_seed = shard_seed
        self.sanitize = sanitize_enabled() if sanitize is None else bool(sanitize)
        self._embeddings: FederationEmbeddings | None = None
        self._sharded: ShardedStore | None = None
        self._methods: dict[str, SearchMethod] = {}
        #: Semantic query-result cache above the methods; ``None`` when
        #: caching is off (the default — ``REPRO_QUERY_CACHE`` opts in).
        self.query_cache = resolve_query_cache(query_cache, metrics=self.metrics)
        #: One backend for every parallel site; ``exec.*`` metrics land
        #: in the shared registry.  Owned iff the engine resolved it
        #: from a name (an injected instance is the caller's to close).
        self._owns_executor = not isinstance(executor, ExecutionBackend)
        self._executor = resolve_backend(executor, metrics=self.metrics)
        if self._owns_executor:
            # close() is the deterministic path; the finalizer only
            # reaps pools of engines that were never closed.
            weakref.finalize(self, self._executor.close)
        # Readers (searches) overlap; a writer (delta) is exclusive.
        self._lifecycle_lock = InstrumentedRWLock() if self.sanitize else RWLock()
        # Serializes lazy method construction between reader threads.
        # The two locks guard disjoint state and never nest the other
        # way around, so no ordering deadlock is possible.
        self._build_lock = threading.Lock()  # repro-lint: disable=RL004 -- build serialization only; never taken around _lifecycle_lock

    # -- indexing -----------------------------------------------------------

    def index(self, federation: Federation) -> "DiscoveryEngine":
        """Vectorize the federation (methods build lazily on first use).

        Embedding runs outside the lifecycle lock; swapping the store
        and dropping the built methods happens under the writer side,
        so a re-``index()`` while queries are in flight can never leave
        a reader holding a half-replaced engine.  (Found by RL001: this
        path historically mutated guarded state with no lock at all.)
        """
        embeddings = build_federation_embeddings(federation, self.encoder)
        with self._lifecycle_lock.write():
            old_store, old_sharded = self._embeddings, self._sharded
            self._embeddings = embeddings
            self._close_methods()
            self._sharded = self._partition(embeddings)
            self._release_stores(old_store, old_sharded)
            self._reset_query_cache(embeddings.generation)
            self.metrics.gauge("engine.generation").set(embeddings.generation)
            self.metrics.gauge("storage.mapped_bytes").set(float(live_mapped_nbytes()))
        return self

    @requires_lock("write")
    def _reset_query_cache(self, generation: int) -> None:
        """Store swap: drop every cached answer and republish.

        A fresh build restarts generation numbering, so the cache's
        epoch-bumping ``invalidate_all`` is the only correct reset — a
        bare generation compare could serve pre-swap entries whose
        numbers happen to recur.
        """
        if self.query_cache is None:
            return
        self.query_cache.invalidate_all()
        for name in self.METHODS:
            self.query_cache.publish_generation(name, generation)

    def _partition(self, store: FederationEmbeddings) -> ShardedStore | None:
        """Shard the store (``shards > 1``) and publish shard sizes."""
        if self.shards == 1:
            return None
        sharded = ShardedStore(store, ShardMap(self.shards, seed=self.shard_seed))
        self._publish_shard_sizes(sharded)
        return sharded

    def _publish_shard_sizes(self, sharded: ShardedStore) -> None:
        """Per-shard relation counts, so placement skew is observable."""
        for shard, size in enumerate(sharded.shard_sizes()):
            self.metrics.gauge(f"engine.shard_sizes.{shard}").set(size)

    @property
    def embeddings(self) -> FederationEmbeddings:
        if self._embeddings is None:
            raise NotFittedError("DiscoveryEngine.index() has not been called")
        return self._embeddings

    @property
    def is_indexed(self) -> bool:
        return self._embeddings is not None

    def save_index(self, path: str | Path) -> None:
        """Persist the federation embeddings as a segment snapshot (not
        the method indexes, which rebuild quickly relative to
        re-embedding).

        Vectors are stored in this engine's scan ``dtype``, so a mapped
        reload serves the exact bytes a cold build would compute.  A
        sharded engine writes one ``shard-<i>/`` sub-snapshot per shard
        plus a root manifest carrying the shard layout — committed
        last, so a crash mid-save leaves the previous snapshot intact —
        and a reload with the same ``(shards, shard_seed)`` adopts the
        shard stores directly instead of re-partitioning.
        """
        path = Path(path)
        with self._lifecycle_lock.read():
            store = self.embeddings
            if self._sharded is None:
                save_federation_embeddings(
                    store, path, dtype=self.dtype, metrics=self.metrics
                )
                return
            for shard, shard_store in enumerate(self._sharded.shards):
                save_federation_embeddings(
                    shard_store,
                    path / f"shard-{shard}",
                    dtype=self.dtype,
                    metrics=self.metrics,
                )
            writer = SegmentWriter(
                path,
                generation=store.generation,
                meta={
                    "kind": SHARDED_SNAPSHOT_KIND,
                    "dim": int(self.encoder.dim),
                    "dtype": self.dtype.name,
                    "sharded": {
                        "shards": self.shards,
                        "seed": self.shard_seed,
                        "relation_order": store.relation_ids(),
                        "shard_generations": [
                            s.generation for s in self._sharded.shards
                        ],
                    },
                },
                metrics=self.metrics,
            )
            writer.commit()

    def _check_snapshot_dtype(self, meta: "dict[str, Any]", path: Path) -> None:
        """A snapshot's stored dtype must match this engine's scan dtype.

        Silently accepting a mismatch would either upcast every mapped
        byte (losing the zero-copy load) or serve float32 ranks from an
        engine promising float64 — both wrong quietly.
        """
        stored = meta.get("dtype")
        if stored is not None and np.dtype(stored) != self.dtype:
            raise ConfigurationError(
                f"snapshot at {path} stores {np.dtype(stored).name} vectors but "
                f"this engine is configured with dtype={self.dtype.name}; "
                f"construct DiscoveryEngine(dtype={np.dtype(stored).name!r}) or "
                "re-save the index from an engine with the desired dtype"
            )

    def _load_sharded_snapshot(
        self, path: Path, meta: "dict[str, Any]", generation: int, mmap: bool
    ) -> "tuple[FederationEmbeddings, ShardedStore | None]":
        """Materialize a sharded snapshot: per-shard stores plus the
        global store over the same relation objects.  When this engine's
        shard layout matches the saved one, the shard stores (and their
        mapped backings) are adopted as-is; otherwise the global store
        is re-partitioned and the per-shard backings are released."""
        info = meta["sharded"]
        n_shards = int(info["shards"])
        seed = int(info["seed"])
        order = [str(rid) for rid in info["relation_order"]]
        shard_stores = [
            load_federation_embeddings(
                path / f"shard-{shard}",
                self.encoder,
                mmap=mmap,
                metrics=self.metrics,
                allow_empty=True,
            )
            for shard in range(n_shards)
        ]
        expected = info.get("shard_generations")
        if expected is not None:
            for shard, (store, want) in enumerate(zip(shard_stores, expected)):
                if store.generation != int(want):
                    raise StorageError(
                        f"shard-{shard} of snapshot {path} is at generation "
                        f"{store.generation}, root manifest expects {want} — "
                        "torn multi-shard save?"
                    )
        by_id = {
            rel.relation_id: rel for store in shard_stores for rel in store.relations
        }
        if len(by_id) != len(order) or set(by_id) != set(order):
            raise StorageError(
                f"snapshot {path} shard contents disagree with the root "
                "manifest's relation order"
            )
        build_seconds = max(
            (store.build_seconds for store in shard_stores), default=0.0
        )
        loaded = FederationEmbeddings(
            relations=[by_id[rid] for rid in order],
            encoder=self.encoder,
            build_seconds=build_seconds,
            generation=generation,
        )
        if self.shards == n_shards and self.shard_seed == seed:
            sharded = ShardedStore(loaded, ShardMap(n_shards, seed=seed), shards=shard_stores)
            return loaded, sharded
        # Different layout: the relations (still viewing the mapped
        # pages) repartition under this engine's own shard map; the
        # per-shard buffer handles are no longer anyone's to hold.
        for store in shard_stores:
            store.release_backing()
        return loaded, self._partition(loaded)

    def load_index(self, path: str | Path, mmap: bool = False) -> "DiscoveryEngine":
        """Restore embeddings saved by :meth:`save_index`.

        The engine must be configured with the same encoder settings
        that built the saved embeddings; a snapshot whose embedding
        dimensionality — or stored ``dtype`` — disagrees with this
        engine is rejected with a :class:`ConfigurationError` here
        rather than surfacing later as a shape error (or silent
        precision change) deep inside a scan kernel.

        ``mmap=True`` maps the vector segments read-only instead of
        materializing them: the call returns in milliseconds with the
        scan matrices backed by the snapshot files, pages faulting in
        lazily on first access.  Rankings and scores are identical to
        an eager load; on a process backend, shard workers map the same
        files, so publishing scan state allocates no shared memory.
        """
        path = Path(path)
        sharded: ShardedStore | None = None
        if is_snapshot(path):
            snapshot = open_snapshot(path, metrics=self.metrics)
            self._check_snapshot_dtype(snapshot.meta, path)
            if snapshot.meta.get("kind") == SHARDED_SNAPSHOT_KIND:
                loaded, sharded = self._load_sharded_snapshot(
                    path, snapshot.meta, snapshot.generation, mmap
                )
            else:
                loaded = load_federation_embeddings(
                    path, self.encoder, mmap=mmap, metrics=self.metrics
                )
        else:
            # Legacy single-file .npz (or a StorageError for anything else).
            loaded = load_federation_embeddings(
                path, self.encoder, mmap=mmap, metrics=self.metrics
            )
        if loaded.n_relations and loaded.dim != self.encoder.dim:
            raise ConfigurationError(
                f"loaded embeddings are {loaded.dim}-dim but this engine's encoder "
                f"produces {self.encoder.dim}-dim vectors; configure the engine "
                "with the encoder settings that built the snapshot"
            )
        # Same writer-side swap as index(): loading is a store mutation.
        with self._lifecycle_lock.write():
            old_store, old_sharded = self._embeddings, self._sharded
            self._embeddings = loaded
            self._close_methods()
            self._sharded = sharded if sharded is not None else self._partition(loaded)
            if sharded is not None:
                self._publish_shard_sizes(sharded)
            self._release_stores(old_store, old_sharded)
            self._reset_query_cache(loaded.generation)
            self.metrics.gauge("engine.generation").set(loaded.generation)
            self.metrics.gauge("storage.mapped_bytes").set(float(live_mapped_nbytes()))
        return self

    @staticmethod
    def _release_stores(
        store: "FederationEmbeddings | None", sharded: "ShardedStore | None"
    ) -> None:
        """Drop snapshot backings a retired store (and its shard
        partitions) held; runs after the owning methods closed."""
        if sharded is not None:
            for shard_store in sharded.shards:
                shard_store.release_backing()
        if store is not None:
            store.release_backing()

    def _make_method(self, name: str) -> SearchMethod:
        params = self.method_params.get(name, {})
        if name == "exs":
            # A process backend scans ExS state in resident workers, so
            # the stacked matrix goes into a shared-memory segment the
            # workers map zero-copy.
            defaults: dict[str, Any] = {
                "dtype": self.dtype,
                "shared_buffers": self._executor.wants_shared_buffers,
            }
            return ExhaustiveSearch(**{**defaults, **params})
        if name == "anns":
            return ANNSearch(**{"dtype": self.dtype, **params})
        if name == "cts":
            return ClusteredTargetedSearch(**params)
        raise ConfigurationError(
            f"unknown method {name!r}; expected one of {self.METHODS}"
        )

    def _configure_method(self, method: SearchMethod) -> SearchMethod:
        """Inject the engine-level cross-cutting knobs into a method."""
        method.sanitize = self.sanitize
        method.executor = self._executor
        return method

    def method(self, name: str) -> SearchMethod:
        """Get (building if needed) a search method's index."""
        if name not in self._methods:
            with self._build_lock:
                if name not in self._methods:
                    if self._sharded is not None:
                        method: SearchMethod = make_sharded_method(
                            lambda: self._configure_method(self._make_method(name)),
                            self._sharded,
                        )
                    else:
                        method = self._make_method(name)
                    self._configure_method(method)
                    # Share the engine's registry BEFORE index() so
                    # index-time structures (vector-db collections)
                    # report into it too.
                    method.metrics = self.metrics
                    method.index(self.embeddings)
                    # Lazy build happens under the READER lock by design:
                    # _build_lock serializes builders, dict publication is
                    # atomic, and concurrent readers either see the built
                    # method or build it themselves.
                    lockset.write(self, "_methods", policy="anylock")
                    self._methods[name] = method  # repro-lint: disable=RL001 -- lazy publication serialized by _build_lock; readers tolerate either state
                    self._publish_index_bytes()
        return self._methods[name]

    def _publish_index_bytes(self) -> None:
        """Total resident vector/code bytes across built method indexes."""
        # Snapshot: another reader may lazily publish a method mid-sum.
        total = sum(method.index_bytes() for method in list(self._methods.values()))
        self.metrics.gauge("engine.index_bytes").set(float(total))

    def build_all(self) -> "DiscoveryEngine":
        """Eagerly build every method's index (used before timing runs)."""
        for name in self.METHODS:
            self.method(name)
        return self

    # -- execution & teardown ----------------------------------------------

    @property
    def executor(self) -> ExecutionBackend:
        """The backend running this engine's parallel work."""
        return self._executor

    @requires_lock("write")
    def _close_methods(self) -> None:
        """Close and drop every built method (caller holds the write
        lock): pools owned by standalone methods shut down, shared
        scan buffers unlink, worker-resident shard state drops."""
        lockset.write(self, "_methods", policy="anylock")
        for method in self._methods.values():
            method.close()
        self._methods.clear()

    def close(self) -> None:
        """Release everything the engine owns: method indexes (their
        shared-memory segments and worker-resident state) and — when
        the engine created it — the execution backend and its pools or
        worker processes.  Idempotent; the engine can be re-``index()``-d
        afterwards only with an injected, still-open backend."""
        with self._lifecycle_lock.write():
            self._close_methods()
            self._release_stores(self._embeddings, self._sharded)
            if self.query_cache is not None:
                self.query_cache.invalidate_all()
            self.metrics.gauge("storage.mapped_bytes").set(float(live_mapped_nbytes()))
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "DiscoveryEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- incremental lifecycle ---------------------------------------------

    @staticmethod
    def _relation_pairs(relations: RelationsLike) -> list[tuple[str, Relation]]:
        if isinstance(relations, Mapping):
            pairs = list(relations.items())
        else:
            pairs = list(relations)
        seen: set[str] = set()
        for relation_id, _ in pairs:
            if relation_id in seen:
                raise ConfigurationError(f"relation {relation_id!r} appears twice in one delta")
            seen.add(relation_id)
        return pairs

    def add_relations(self, relations: RelationsLike) -> FederationDelta:
        """Add new relations to the live federation.

        ``relations`` maps qualified ``dataset/relation`` ids to
        :class:`Relation` objects (a mapping or an iterable of pairs).
        Only the new relations are embedded — encoding happens before
        the write lock is taken, so in-flight queries are not blocked
        by it — then the store and every built method index absorb the
        delta atomically.
        """
        pairs = self._relation_pairs(relations)
        self.embeddings  # fail fast before paying for the encode
        embedded = [
            build_relation_embedding(relation_id, relation, self.encoder)
            for relation_id, relation in pairs
        ]
        with self._lifecycle_lock.write():
            # Re-read under the lock: a concurrent index() may have
            # swapped the store since the fail-fast check, and the delta
            # must land in the store readers actually see.
            store = self.embeddings
            for embedding in embedded:
                if embedding.relation_id in store:
                    raise ConfigurationError(
                        f"relation {embedding.relation_id!r} already in federation"
                    )
            for embedding in embedded:
                store.add_relation(embedding.relation_id, embedding)
            return self._propagate(added=embedded)

    def update_relations(self, relations: RelationsLike) -> FederationDelta:
        """Re-embed revised relations and patch every built index."""
        pairs = self._relation_pairs(relations)
        self.embeddings  # fail fast before paying for the encode
        embedded = [
            build_relation_embedding(relation_id, relation, self.encoder)
            for relation_id, relation in pairs
        ]
        with self._lifecycle_lock.write():
            store = self.embeddings  # re-read: index() may have swapped it
            for embedding in embedded:
                store.position(embedding.relation_id)  # validate before mutating
            for embedding in embedded:
                store.update_relation(embedding.relation_id, embedding)
            return self._propagate(updated=embedded)

    def remove_relations(self, relation_ids: Iterable[str]) -> FederationDelta:
        """Retire relations from the live federation."""
        ids = list(relation_ids)
        if len(ids) != len(set(ids)):
            raise ConfigurationError("duplicate relation ids in one delta")
        self.embeddings  # fail fast before taking the writer side
        with self._lifecycle_lock.write():
            store = self.embeddings  # re-read: index() may have swapped it
            for relation_id in ids:
                store.position(relation_id)  # validate before mutating
            if store.n_relations - len(ids) < 1:
                raise ConfigurationError("a delta may not empty the federation")
            for relation_id in ids:
                store.remove_relation(relation_id)
            return self._propagate(removed=ids)

    @requires_lock("write")
    def _propagate(
        self,
        added: Sequence[RelationEmbedding] = (),
        updated: Sequence[RelationEmbedding] = (),
        removed: Sequence[str] = (),
    ) -> FederationDelta:
        """Thread one (already stored) delta through every built method
        and record the lifecycle metrics.  Caller holds the write lock."""
        store = self.embeddings
        if self._sharded is not None:
            # Shard stores first, so per-shard method indexes absorb the
            # delta against already-mutated shard partitions (the same
            # store-then-index contract the unsharded path follows).
            self._sharded.apply_delta(list(added), list(updated), list(removed))
            self._publish_shard_sizes(self._sharded)
        for method in self._methods.values():
            method.apply_delta(added, updated, removed)
        if self.query_cache is not None:
            # Publishing from under the write lock is the invalidation:
            # entries stamped with the pre-delta generation stop matching
            # the moment readers can run again (per-method, lazily).
            # Every delta here mutates the store all methods share, so
            # all three publications advance together; the per-method
            # granularity matters for caches fed by several stores.
            for name in self.METHODS:
                self.query_cache.publish_generation(name, store.generation)
        self.metrics.counter("engine.deltas").inc()
        self.metrics.counter("engine.relations_added").inc(len(added))
        self.metrics.counter("engine.relations_updated").inc(len(updated))
        self.metrics.counter("engine.relations_removed").inc(len(removed))
        self.metrics.gauge("engine.generation").set(store.generation)
        self._publish_index_bytes()
        return FederationDelta(
            added=tuple(added),
            updated=tuple(updated),
            removed=tuple(removed),
            generation=store.generation,
        )

    # -- querying ---------------------------------------------------------------

    def _query_vector(self, query: str) -> np.ndarray:
        """The query's unit-normalized float32 embedding (cache key).

        Goes through the engine's encoder, so with the default
        :class:`CachingEncoder` the method's own encode of the same text
        is a dictionary hit, not a second embedding pass.
        """
        return np.asarray(self.embeddings.encode_query(query), dtype=np.float32)

    def search(
        self, query: str, method: str = "cts", k: int = 10, h: float = 0.0
    ) -> SearchResult:
        """Answer a keyword query with the chosen algorithm."""
        with self._lifecycle_lock.read():
            self.metrics.counter("engine.queries").inc()
            cache = self.query_cache
            if cache is None:
                return self.method(method).search(query, k=k, h=h)
            signature = CacheSignature(method=method, k=k, h=h)
            hit = cache.lookup(
                signature, query, encode=lambda: self._query_vector(query)
            )
            if hit is not None:
                return hit.as_result(query, method)
            result = self.method(method).search(query, k=k, h=h)
            cache.insert(
                signature,
                query,
                self._query_vector(query),
                result.matches,
                self.embeddings.generation,
            )
            return result

    def search_batch(
        self,
        queries: Iterable[str],
        method: str = "cts",
        k: int = 10,
        h: float = 0.0,
        workers: int = 1,
    ) -> BatchResult:
        """Answer many queries in one call, amortizing shared work.

        Rankings and scores are element-wise equivalent to calling
        :meth:`search` per query; the batched kernels encode the whole
        block up front, scan it with matrix-matrix products (ExS),
        batch candidate retrieval (ANNS) or medoid routing (CTS), and
        — with ``workers > 1`` — spread the scan over a thread pool.
        Per-stage latencies land in :attr:`metrics`.
        """
        queries = list(queries)
        with self._lifecycle_lock.read():
            return self.search_batch_locked(queries, method=method, k=k, h=h, workers=workers)

    # -- serving hooks ----------------------------------------------------

    def read_lock(self) -> "AbstractContextManager[None]":
        """The reader side of the lifecycle lock, for external dispatchers.

        The serving layer runs each coalesced window on an executor
        thread; wrapping the window in ``with engine.read_lock():``
        around :meth:`search_batch_locked` makes it synchronize with
        writer deltas exactly like a direct :meth:`search_batch` call —
        one complete federation generation per window, no new locks.
        """
        return self._lifecycle_lock.read()

    @requires_lock("read")
    def search_batch_locked(
        self,
        queries: Sequence[str],
        method: str = "cts",
        k: int = 10,
        h: float = 0.0,
        workers: int = 1,
    ) -> BatchResult:
        """:meth:`search_batch` body for callers already holding
        :meth:`read_lock` (the serving dispatch path, which may bracket
        several windows under one acquisition).

        With a query cache, the batch partitions into hits and misses:
        hits replay their cached rankings, the misses dispatch as ONE
        residual ``search_batch`` (an all-hit batch never reaches the
        method, so ``<method>.batches`` stays put), and the fresh
        answers backfill both the result and the cache.
        """
        self.metrics.counter("engine.queries").inc(len(queries))
        self.metrics.counter("engine.batches").inc()
        cache = self.query_cache
        if cache is None or not queries:
            return self.method(method).search_batch(queries, k=k, h=h, workers=workers)
        started = time.perf_counter()
        signature = CacheSignature(method=method, k=k, h=h)
        results: "list[SearchResult | None]" = [None] * len(queries)
        missing: list[int] = []
        for i, query in enumerate(queries):
            hit = cache.lookup(
                signature, query, encode=lambda q=query: self._query_vector(q)
            )
            if hit is None:
                missing.append(i)
            else:
                results[i] = hit.as_result(query, method)
        if missing:
            residual = self.method(method).search_batch(
                [queries[i] for i in missing], k=k, h=h, workers=workers
            )
            generation = self.embeddings.generation
            for i, fresh in zip(missing, residual):
                results[i] = fresh
                cache.insert(
                    signature, queries[i], self._query_vector(queries[i]),
                    fresh.matches, generation,
                )
        filled = [result for result in results if result is not None]
        assert len(filled) == len(queries)
        return BatchResult(filled, elapsed_ms=(time.perf_counter() - started) * 1000.0)

    def serving(self, **kwargs: Any) -> "ServingEngine":
        """An async micro-batching front end over this engine.

        Keyword arguments are forwarded to
        :class:`~repro.serving.ServingEngine` (window size, batch and
        queue bounds, tenant rate limits).  The serving layer shares
        this engine's metrics registry and lifecycle lock.
        """
        from repro.serving import ServingEngine

        return ServingEngine(self, **kwargs)

    def search_all_methods(
        self, query: str, k: int = 10, h: float = 0.0
    ) -> dict[str, SearchResult]:
        """Run the same query through ExS, ANNS and CTS (for comparisons).

        The read lock is held once across all three methods, so every
        result reflects the same federation generation — a concurrent
        delta can never land between the ExS and the CTS run.
        """
        with self._lifecycle_lock.read():
            results: dict[str, SearchResult] = {}
            for name in self.METHODS:
                self.metrics.counter("engine.queries").inc()
                results[name] = self.method(name).search(query, k=k, h=h)
            return results
