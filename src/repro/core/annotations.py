"""Zero-cost concurrency annotations checked by ``repro-lint``.

These decorators attach metadata and return their target unchanged —
no wrapper frame, no runtime cost on any call path.  They exist so the
static rules and the lockset sanitizer can reason about which lock
protects what:

* :func:`guarded_by` declares which ``self`` attributes a class guards
  with its RWLock (enforced per-method by RL001);
* :func:`requires_lock` declares that a function may only be entered
  with the named side of the lifecycle lock held (enforced through the
  project call graph by RL007);
* :func:`monotonic` declares generation-like counter fields that only
  move forward, via increment-or-publish writes under the writer lock
  (enforced by RL010).

This module is an import leaf on purpose: ``repro.core.semimg`` and
``repro.cache`` annotate their hot types without pulling in the
lifecycle machinery (which itself imports ``semimg``).  The historical
home :mod:`repro.core.lifecycle` re-exports everything here.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["guarded_by", "monotonic", "requires_lock"]

_T = TypeVar("_T", bound=type)
_F = TypeVar("_F", bound=Callable[..., object])


def guarded_by(lock_attr: str, *attrs: str) -> Callable[[_T], _T]:
    """Class decorator declaring attributes guarded by an RWLock.

    ``@guarded_by("_lifecycle_lock", "_store", "_index")`` records that
    ``self._store`` and ``self._index`` may only be mutated while the
    writer side of ``self._lifecycle_lock`` is held.  The declaration is
    free at runtime — it only stores the mapping on the class — and is
    the anchor the RL001 lock-discipline lint rule checks statically:
    mutations of a declared attribute outside a ``with
    self.<lock>.write():`` block (or a ``@requires_lock("write")``
    method) are flagged, as are public ``search*`` entry points that
    never take the reader lock.
    """

    def decorate(cls: _T) -> _T:
        declared = dict(getattr(cls, "__guarded_attrs__", {}))
        for attr in attrs:
            declared[attr] = lock_attr
        cls.__guarded_attrs__ = declared  # type: ignore[attr-defined]
        return cls

    return decorate


def requires_lock(mode: str) -> Callable[[_F], _F]:
    """Method decorator: the caller must already hold the lock.

    ``mode`` is ``"read"`` or ``"write"``.  Like :func:`guarded_by`
    this is a zero-cost declaration consumed by the lint rules: a
    ``@requires_lock("write")`` method is treated as statically holding
    the writer lock, so its guarded-attribute mutations pass (RL001),
    and the obligation moves to its callers — which RL007 then chases
    through the project call graph, across modules.
    """
    if mode not in ("read", "write"):
        raise ValueError("requires_lock mode must be 'read' or 'write'")

    def decorate(func: _F) -> _F:
        func.__requires_lock__ = mode  # type: ignore[attr-defined]
        return func

    return decorate


def monotonic(*fields: str) -> Callable[[_T], _T]:
    """Class decorator declaring generation-like fields.

    A ``@monotonic("generation")`` class promises that outside
    ``__init__`` the named fields are only written as an increment
    (``self.generation += 1``) or a publish of another generation value
    (``self.generation = store.generation``), and only with the writer
    side held — the invariant the query cache's generation-precise
    invalidation and the process workers' delta replay both rest on.
    RL010 enforces it statically; the declaration costs nothing at
    runtime.
    """

    def decorate(cls: _T) -> _T:
        declared = dict(getattr(cls, "__monotonic_fields__", {}))
        for name in fields:
            declared[name] = True
        cls.__monotonic_fields__ = declared  # type: ignore[attr-defined]
        return cls

    return decorate
