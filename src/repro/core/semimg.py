"""Semantic representations (``semImg``) of attributes, relations, federations.

The paper (Sec 4) defines the semantic representation of an attribute
``<n, v>`` as ``<n, semImg(v)>`` where ``semImg(v)`` is the encoder's
vector for the value, and the semantic representation of a relation as
the set of its tuples' representations.  This module materializes those
as numpy matrices.

Cells repeat heavily in tables (dates, categories, country names), so
each relation stores its *unique* ``(name, value)`` pairs together with
their multiplicities.  Averages weighted by multiplicity are exactly
the averages over all attribute occurrences that Algorithm 1 computes,
at a fraction of the memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.annotations import monotonic, requires_lock
from repro.datamodel.relation import Federation, Relation
from repro.embedding.base import SentenceEncoder
from repro.errors import ConfigurationError
from repro.linalg.distances import normalize_rows
from repro.linalg.sharedbuf import ArrayBuffer, PlainBuffer
from repro.obs import MetricsRegistry
from repro.storage import SegmentSnapshot, SegmentWriter, open_snapshot
from repro.storage import npz as legacy_npz

__all__ = [
    "RelationEmbedding",
    "FederationEmbeddings",
    "build_relation_embedding",
    "build_federation_embeddings",
    "load_federation_embeddings",
    "save_federation_embeddings",
    "save_federation_embeddings_npz",
]


@dataclass(frozen=True)
class RelationEmbedding:
    """semImg of one relation.

    Attributes
    ----------
    relation_id:
        Qualified ``dataset/relation`` id.
    values:
        The unique cell values, aligned with ``vectors`` rows.
    attr_names:
        Attribute name of each unique (name, value) pair.
    vectors:
        ``(n_unique, dim)`` float32 unit vectors.
    counts:
        Multiplicity of each unique pair in the relation.
    """

    relation_id: str
    values: tuple[str, ...]
    attr_names: tuple[str, ...]
    vectors: np.ndarray
    counts: np.ndarray

    @property
    def n_unique(self) -> int:
        return self.vectors.shape[0]

    @property
    def n_cells(self) -> int:
        """Total attribute occurrences represented."""
        return int(self.counts.sum())

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the embedding payload."""
        return int(self.vectors.nbytes + self.counts.nbytes)


def build_relation_embedding(
    relation_id: str, relation: Relation, encoder: SentenceEncoder
) -> RelationEmbedding:
    """Embed every attribute value of ``relation`` (deduplicated).

    Two pseudo attributes join the cell values:

    * ``__caption__`` — the caption, when present; both evaluation
      corpora provide captions and the paper consolidates body and
      caption for WikiTables.
    * ``__schema__`` — the header row as one string; in the web-table
      model headers are table content too, and attribute-style queries
      ("Irish counties area") often name a column rather than a value.
    """
    pair_counts: dict[tuple[str, str], int] = {}
    for attr in relation.attributes():
        key = (attr.name, attr.value)
        pair_counts[key] = pair_counts.get(key, 0) + 1
    if relation.caption:
        pair_counts[("__caption__", relation.caption)] = (
            pair_counts.get(("__caption__", relation.caption), 0) + 1
        )
    if relation.schema:
        header = " ".join(relation.schema)
        pair_counts[("__schema__", header)] = pair_counts.get(("__schema__", header), 0) + 1
    if not pair_counts:
        raise ConfigurationError(f"relation {relation_id!r} has no content to embed")
    names, values = zip(*pair_counts.keys())
    vectors = encoder.encode(list(values)).astype(np.float32)
    vectors = normalize_rows(vectors).astype(np.float32)
    return RelationEmbedding(
        relation_id=relation_id,
        values=tuple(values),
        attr_names=tuple(names),
        vectors=vectors,
        counts=np.fromiter(pair_counts.values(), dtype=np.int64),
    )


@monotonic("generation")
@dataclass
class FederationEmbeddings:
    """Mutable semImg store of a whole federation plus its encoder.

    Keeping the encoder here guarantees queries are embedded in the
    same space as the data — and, as the paper emphasizes, data
    vectorization is independent of any query.

    The store supports an incremental lifecycle: :meth:`add_relation`,
    :meth:`update_relation` and :meth:`remove_relation` mutate the
    relation list without touching any other relation's vectors (only
    the changed relation is re-embedded), and every mutation bumps the
    monotonically increasing :attr:`generation` counter so downstream
    indexes can tell which store state they reflect.
    """

    relations: list[RelationEmbedding]
    encoder: SentenceEncoder
    build_seconds: float = 0.0
    #: Monotonically increasing mutation counter; 0 for a fresh build.
    generation: int = 0
    #: Whether the store may drain to zero relations.  The global store
    #: of an engine never may (an empty federation is a configuration
    #: error), but the per-shard partitions of a
    #: :class:`~repro.core.sharding.ShardedStore` can legitimately own
    #: no relations when a delta retires a shard's last one.
    allow_empty: bool = False
    #: Zero-copy backing of the stacked value matrix, when the store was
    #: materialized from a snapshot: ``(buffer, generation-at-adoption)``.
    #: Valid only while :attr:`generation` still equals the adoption
    #: generation — any delta re-stacks, so consumers must go through
    #: :meth:`stack_buffer`, which returns ``None`` once stale.
    stack_backing: "tuple[ArrayBuffer, int] | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def dim(self) -> int:
        if not self.relations:
            raise ConfigurationError("empty federation embeddings")
        return self.relations[0].dim

    @property
    def n_relations(self) -> int:
        return len(self.relations)

    @property
    def total_vectors(self) -> int:
        return sum(r.n_unique for r in self.relations)

    @property
    def nbytes(self) -> int:
        """In-memory footprint across all relation embeddings."""
        return sum(r.nbytes for r in self.relations)

    def relation_ids(self) -> list[str]:
        return [r.relation_id for r in self.relations]

    # -- incremental lifecycle ------------------------------------------

    def position(self, relation_id: str) -> int:
        """Index of ``relation_id`` in :attr:`relations` (or raise)."""
        for i, rel in enumerate(self.relations):
            if rel.relation_id == relation_id:
                return i
        raise ConfigurationError(f"relation {relation_id!r} not in federation embeddings")

    def __contains__(self, relation_id: str) -> bool:
        return any(r.relation_id == relation_id for r in self.relations)

    def _as_embedding(
        self, relation_id: str, relation: "Relation | RelationEmbedding"
    ) -> RelationEmbedding:
        """Embed a relation — or accept one embedded ahead of time, so
        callers can do the encoding outside any lock they hold."""
        if isinstance(relation, RelationEmbedding):
            if relation.relation_id != relation_id:
                raise ConfigurationError(
                    f"embedding is for {relation.relation_id!r}, not {relation_id!r}"
                )
            embedding = relation
        else:
            embedding = build_relation_embedding(relation_id, relation, self.encoder)
        if self.relations and embedding.dim != self.dim:
            raise ConfigurationError(
                f"relation {relation_id!r} embeds to {embedding.dim}-dim but "
                f"the federation is {self.dim}-dim"
            )
        return embedding

    @requires_lock("write")
    def add_relation(
        self, relation_id: str, relation: "Relation | RelationEmbedding"
    ) -> RelationEmbedding:
        """Embed and append one new relation; untouched relations are
        never recomputed."""
        if relation_id in self:
            raise ConfigurationError(f"relation {relation_id!r} already in federation")
        embedding = self._as_embedding(relation_id, relation)
        self.relations.append(embedding)
        self.generation += 1
        return embedding

    @requires_lock("write")
    def update_relation(
        self, relation_id: str, relation: "Relation | RelationEmbedding"
    ) -> RelationEmbedding:
        """Re-embed one revised relation in place (same position)."""
        pos = self.position(relation_id)
        embedding = self._as_embedding(relation_id, relation)
        self.relations[pos] = embedding
        self.generation += 1
        return embedding

    @requires_lock("write")
    def remove_relation(self, relation_id: str) -> RelationEmbedding:
        """Retire one relation; returns its (now detached) embedding."""
        pos = self.position(relation_id)
        if len(self.relations) == 1 and not self.allow_empty:
            raise ConfigurationError(
                "cannot remove the last relation; federation embeddings must stay non-empty"
            )
        removed = self.relations.pop(pos)
        self.generation += 1
        return removed

    def encode_query(self, query: str) -> np.ndarray:
        """semImg(Q): the query's unit vector in the shared space."""
        vector = self.encoder.encode_one(query)
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector

    def stacked(self) -> tuple[np.ndarray, np.ndarray]:
        """All value vectors stacked, plus each row's relation index.

        Returns ``(matrix, owner)`` where ``owner[i]`` is the index into
        :attr:`relations` of the relation owning row ``i``.
        """
        matrix = np.vstack([r.vectors for r in self.relations])
        owner = np.concatenate(
            [np.full(r.n_unique, i, dtype=np.intp) for i, r in enumerate(self.relations)]
        )
        return matrix, owner

    # -- snapshot backing ------------------------------------------------

    def adopt_backing(self, buffer: ArrayBuffer) -> None:
        """Take ownership of the snapshot buffer the relation vectors
        view (the store's reference; consumers :meth:`~repro.linalg.
        ArrayBuffer.addref` their own)."""
        self.release_backing()
        self.stack_backing = (buffer, self.generation)

    def stack_buffer(self) -> "ArrayBuffer | None":
        """The stacked-matrix backing, while it still reflects this
        store's generation; ``None`` once any delta invalidated it."""
        if self.stack_backing is None:
            return None
        buffer, adopted_at = self.stack_backing
        return buffer if adopted_at == self.generation else None

    def release_backing(self) -> None:
        """Drop the store's reference to its snapshot backing.  The
        underlying pages survive as long as any relation vectors or
        scan-method views still reference them."""
        backing, self.stack_backing = self.stack_backing, None
        if backing is not None:
            backing[0].close()


#: ``meta["kind"]`` tag of a federation-embeddings snapshot.
SNAPSHOT_KIND = "federation-embeddings"


def save_federation_embeddings(
    embeddings: FederationEmbeddings,
    path: "str | Path",
    dtype: "str | np.dtype | type | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> None:
    """Persist federation embeddings as one segment snapshot directory.

    Vectorizing is the expensive offline step; persisting it lets a
    deployment embed once and serve many sessions.  The encoder itself
    is not stored — load with the same encoder configuration so query
    vectors stay in the same space.

    Layout: one ``vectors`` segment holding *all* relations' unit
    vectors stacked (in ``dtype``, default the embeddings' native
    float32 — an engine passes its scan dtype so a mapped load serves
    the exact bytes a cold build would compute), ``counts`` and
    ``block_sizes`` side arrays, and a ``relations`` JSON document with
    ids, cell values and attribute names.  The stacked layout is what
    makes ``mmap=True`` loads zero-copy: the mapped file *is* the ExS
    scan matrix.
    """
    target = np.dtype(dtype) if dtype is not None else np.dtype(np.float32)
    relations = embeddings.relations
    dim = embeddings.dim if relations else embeddings.encoder.dim
    if relations:
        stack = np.vstack([r.vectors for r in relations]).astype(target, copy=False)
        counts = np.concatenate([r.counts for r in relations]).astype(np.int64, copy=False)
    else:
        stack = np.empty((0, dim), dtype=target)
        counts = np.empty(0, dtype=np.int64)
    writer = SegmentWriter(
        path,
        generation=embeddings.generation,
        meta={
            "kind": SNAPSHOT_KIND,
            "dim": int(dim),
            "dtype": target.name,
            "n_relations": len(relations),
            "build_seconds": float(embeddings.build_seconds),
        },
        metrics=metrics,
    )
    writer.add_array("vectors", stack)
    writer.add_array("counts", counts)
    writer.add_array(
        "block_sizes", np.array([r.n_unique for r in relations], dtype=np.int64)
    )
    writer.add_json(
        "relations",
        {
            "ids": [r.relation_id for r in relations],
            "values": [list(r.values) for r in relations],
            "names": [list(r.attr_names) for r in relations],
        },
    )
    writer.commit()


def save_federation_embeddings_npz(
    embeddings: FederationEmbeddings, path: "str | Path"
) -> None:
    """The retired single-file ``.npz`` layout (one array per relation).

    Kept for two consumers only: the compat tests proving old snapshots
    still load, and the cold-start benchmark's decompress-everything
    baseline.  New code saves segment snapshots.
    """
    arrays: dict[str, np.ndarray] = {
        "relation_ids": np.array([r.relation_id for r in embeddings.relations]),
        "build_seconds": np.array([embeddings.build_seconds], dtype=np.float64),
        "generation": np.array([embeddings.generation], dtype=np.int64),
    }
    for i, rel in enumerate(embeddings.relations):
        arrays[f"vectors_{i}"] = rel.vectors
        arrays[f"counts_{i}"] = rel.counts
        arrays[f"values_{i}"] = np.array(rel.values)
        arrays[f"names_{i}"] = np.array(rel.attr_names)
    legacy_npz.save_npz(path, arrays)


def _check_dim(stored_dim: int, encoder: SentenceEncoder) -> None:
    if stored_dim != encoder.dim:
        raise ConfigurationError(
            f"stored embeddings are {stored_dim}-dim but the "
            f"encoder produces {encoder.dim}-dim vectors"
        )


def _load_snapshot(
    snapshot: SegmentSnapshot,
    encoder: SentenceEncoder,
    mmap: bool,
    allow_empty: bool,
) -> FederationEmbeddings:
    meta = snapshot.meta
    if meta.get("kind") != SNAPSHOT_KIND:
        raise ConfigurationError(
            f"snapshot at {snapshot.path} is a {meta.get('kind')!r} snapshot, "
            f"not {SNAPSHOT_KIND!r}"
        )
    _check_dim(int(meta["dim"]), encoder)
    doc = snapshot.json("relations")
    counts = snapshot.array("counts")
    sizes = snapshot.array("block_sizes")
    backing: ArrayBuffer = (
        snapshot.mapped("vectors") if mmap else PlainBuffer(snapshot.array("vectors"))
    )
    try:
        matrix = backing.array
        relations: list[RelationEmbedding] = []
        start = 0
        for i, relation_id in enumerate(doc["ids"]):
            stop = start + int(sizes[i])
            relations.append(
                RelationEmbedding(
                    relation_id=str(relation_id),
                    values=tuple(str(v) for v in doc["values"][i]),
                    attr_names=tuple(str(n) for n in doc["names"][i]),
                    vectors=matrix[start:stop],
                    counts=counts[start:stop],
                )
            )
            start = stop
        embeddings = FederationEmbeddings(
            relations=relations,
            encoder=encoder,
            build_seconds=float(meta.get("build_seconds", 0.0)),
            generation=snapshot.generation,
            allow_empty=allow_empty,
        )
    except BaseException:
        # A malformed document must not strand the mapped pages: until
        # adopt_backing() the store owns no reference and nobody else
        # would ever close this buffer.
        backing.close()
        raise
    embeddings.adopt_backing(backing)
    return embeddings


def _load_legacy_npz(path: Path, encoder: SentenceEncoder) -> FederationEmbeddings:
    data = legacy_npz.load_npz(path)
    relation_ids = [str(r) for r in data["relation_ids"]]
    # Older snapshots predate these fields; default rather than fail.
    build_seconds = float(data["build_seconds"][0]) if "build_seconds" in data else 0.0
    generation = int(data["generation"][0]) if "generation" in data else 0
    relations = []
    for i, relation_id in enumerate(relation_ids):
        vectors = data[f"vectors_{i}"]
        _check_dim(vectors.shape[1], encoder)
        relations.append(
            RelationEmbedding(
                relation_id=relation_id,
                values=tuple(str(v) for v in data[f"values_{i}"]),
                attr_names=tuple(str(n) for n in data[f"names_{i}"]),
                vectors=vectors,
                counts=data[f"counts_{i}"],
            )
        )
    return FederationEmbeddings(
        relations=relations,
        encoder=encoder,
        build_seconds=build_seconds,
        generation=generation,
    )


def load_federation_embeddings(
    path: "str | Path",
    encoder: SentenceEncoder,
    mmap: bool = False,
    metrics: "MetricsRegistry | None" = None,
    allow_empty: bool = False,
) -> FederationEmbeddings:
    """Restore embeddings saved by :func:`save_federation_embeddings`.

    ``encoder`` must match the configuration used when building; a
    dimensionality mismatch is rejected immediately.

    ``mmap=True`` memory-maps the stacked ``vectors`` segment read-only
    instead of materializing it: the call returns in milliseconds with
    every relation's ``vectors`` a zero-copy view into the mapping, and
    data pages fault in lazily on first scan.  Eager loads verify the
    full crc32 digests; mapped loads check payload sizes only (hashing
    would page everything in).  Legacy single-file ``.npz`` snapshots
    still load eagerly — ``mmap=True`` on one is a
    :class:`ConfigurationError` since a compressed archive cannot be
    mapped.
    """
    path = Path(path)
    if legacy_npz.is_npz(path):
        if mmap:
            raise ConfigurationError(
                f"{path} is a legacy compressed .npz snapshot and cannot be "
                "memory-mapped; re-save it as a segment snapshot for mmap loads"
            )
        return _load_legacy_npz(path, encoder)
    snapshot = open_snapshot(path, metrics=metrics)
    return _load_snapshot(snapshot, encoder, mmap=mmap, allow_empty=allow_empty)


def build_federation_embeddings(
    federation: Federation, encoder: SentenceEncoder
) -> FederationEmbeddings:
    """Vectorize an entire federation (the offline indexing step)."""
    start = time.perf_counter()
    relations = [
        build_relation_embedding(relation_id, relation, encoder)
        for relation_id, relation in federation.relations()
    ]
    if not relations:
        raise ConfigurationError("federation contains no relations")
    elapsed = time.perf_counter() - start
    return FederationEmbeddings(relations=relations, encoder=encoder, build_seconds=elapsed)
