"""Semantic representations (``semImg``) of attributes, relations, federations.

The paper (Sec 4) defines the semantic representation of an attribute
``<n, v>`` as ``<n, semImg(v)>`` where ``semImg(v)`` is the encoder's
vector for the value, and the semantic representation of a relation as
the set of its tuples' representations.  This module materializes those
as numpy matrices.

Cells repeat heavily in tables (dates, categories, country names), so
each relation stores its *unique* ``(name, value)`` pairs together with
their multiplicities.  Averages weighted by multiplicity are exactly
the averages over all attribute occurrences that Algorithm 1 computes,
at a fraction of the memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.datamodel.relation import Federation, Relation
from repro.embedding.base import SentenceEncoder
from repro.errors import ConfigurationError
from repro.linalg.distances import normalize_rows

__all__ = [
    "RelationEmbedding",
    "FederationEmbeddings",
    "build_relation_embedding",
    "build_federation_embeddings",
    "load_federation_embeddings",
    "save_federation_embeddings",
]


@dataclass(frozen=True)
class RelationEmbedding:
    """semImg of one relation.

    Attributes
    ----------
    relation_id:
        Qualified ``dataset/relation`` id.
    values:
        The unique cell values, aligned with ``vectors`` rows.
    attr_names:
        Attribute name of each unique (name, value) pair.
    vectors:
        ``(n_unique, dim)`` float32 unit vectors.
    counts:
        Multiplicity of each unique pair in the relation.
    """

    relation_id: str
    values: tuple[str, ...]
    attr_names: tuple[str, ...]
    vectors: np.ndarray
    counts: np.ndarray

    @property
    def n_unique(self) -> int:
        return self.vectors.shape[0]

    @property
    def n_cells(self) -> int:
        """Total attribute occurrences represented."""
        return int(self.counts.sum())

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the embedding payload."""
        return int(self.vectors.nbytes + self.counts.nbytes)


def build_relation_embedding(
    relation_id: str, relation: Relation, encoder: SentenceEncoder
) -> RelationEmbedding:
    """Embed every attribute value of ``relation`` (deduplicated).

    Two pseudo attributes join the cell values:

    * ``__caption__`` — the caption, when present; both evaluation
      corpora provide captions and the paper consolidates body and
      caption for WikiTables.
    * ``__schema__`` — the header row as one string; in the web-table
      model headers are table content too, and attribute-style queries
      ("Irish counties area") often name a column rather than a value.
    """
    pair_counts: dict[tuple[str, str], int] = {}
    for attr in relation.attributes():
        key = (attr.name, attr.value)
        pair_counts[key] = pair_counts.get(key, 0) + 1
    if relation.caption:
        pair_counts[("__caption__", relation.caption)] = (
            pair_counts.get(("__caption__", relation.caption), 0) + 1
        )
    if relation.schema:
        header = " ".join(relation.schema)
        pair_counts[("__schema__", header)] = pair_counts.get(("__schema__", header), 0) + 1
    if not pair_counts:
        raise ConfigurationError(f"relation {relation_id!r} has no content to embed")
    names, values = zip(*pair_counts.keys())
    vectors = encoder.encode(list(values)).astype(np.float32)
    vectors = normalize_rows(vectors).astype(np.float32)
    return RelationEmbedding(
        relation_id=relation_id,
        values=tuple(values),
        attr_names=tuple(names),
        vectors=vectors,
        counts=np.fromiter(pair_counts.values(), dtype=np.int64),
    )


@dataclass
class FederationEmbeddings:
    """Mutable semImg store of a whole federation plus its encoder.

    Keeping the encoder here guarantees queries are embedded in the
    same space as the data — and, as the paper emphasizes, data
    vectorization is independent of any query.

    The store supports an incremental lifecycle: :meth:`add_relation`,
    :meth:`update_relation` and :meth:`remove_relation` mutate the
    relation list without touching any other relation's vectors (only
    the changed relation is re-embedded), and every mutation bumps the
    monotonically increasing :attr:`generation` counter so downstream
    indexes can tell which store state they reflect.
    """

    relations: list[RelationEmbedding]
    encoder: SentenceEncoder
    build_seconds: float = 0.0
    #: Monotonically increasing mutation counter; 0 for a fresh build.
    generation: int = 0
    #: Whether the store may drain to zero relations.  The global store
    #: of an engine never may (an empty federation is a configuration
    #: error), but the per-shard partitions of a
    #: :class:`~repro.core.sharding.ShardedStore` can legitimately own
    #: no relations when a delta retires a shard's last one.
    allow_empty: bool = False

    @property
    def dim(self) -> int:
        if not self.relations:
            raise ConfigurationError("empty federation embeddings")
        return self.relations[0].dim

    @property
    def n_relations(self) -> int:
        return len(self.relations)

    @property
    def total_vectors(self) -> int:
        return sum(r.n_unique for r in self.relations)

    @property
    def nbytes(self) -> int:
        """In-memory footprint across all relation embeddings."""
        return sum(r.nbytes for r in self.relations)

    def relation_ids(self) -> list[str]:
        return [r.relation_id for r in self.relations]

    # -- incremental lifecycle ------------------------------------------

    def position(self, relation_id: str) -> int:
        """Index of ``relation_id`` in :attr:`relations` (or raise)."""
        for i, rel in enumerate(self.relations):
            if rel.relation_id == relation_id:
                return i
        raise ConfigurationError(f"relation {relation_id!r} not in federation embeddings")

    def __contains__(self, relation_id: str) -> bool:
        return any(r.relation_id == relation_id for r in self.relations)

    def _as_embedding(
        self, relation_id: str, relation: "Relation | RelationEmbedding"
    ) -> RelationEmbedding:
        """Embed a relation — or accept one embedded ahead of time, so
        callers can do the encoding outside any lock they hold."""
        if isinstance(relation, RelationEmbedding):
            if relation.relation_id != relation_id:
                raise ConfigurationError(
                    f"embedding is for {relation.relation_id!r}, not {relation_id!r}"
                )
            embedding = relation
        else:
            embedding = build_relation_embedding(relation_id, relation, self.encoder)
        if self.relations and embedding.dim != self.dim:
            raise ConfigurationError(
                f"relation {relation_id!r} embeds to {embedding.dim}-dim but "
                f"the federation is {self.dim}-dim"
            )
        return embedding

    def add_relation(
        self, relation_id: str, relation: "Relation | RelationEmbedding"
    ) -> RelationEmbedding:
        """Embed and append one new relation; untouched relations are
        never recomputed."""
        if relation_id in self:
            raise ConfigurationError(f"relation {relation_id!r} already in federation")
        embedding = self._as_embedding(relation_id, relation)
        self.relations.append(embedding)
        self.generation += 1
        return embedding

    def update_relation(
        self, relation_id: str, relation: "Relation | RelationEmbedding"
    ) -> RelationEmbedding:
        """Re-embed one revised relation in place (same position)."""
        pos = self.position(relation_id)
        embedding = self._as_embedding(relation_id, relation)
        self.relations[pos] = embedding
        self.generation += 1
        return embedding

    def remove_relation(self, relation_id: str) -> RelationEmbedding:
        """Retire one relation; returns its (now detached) embedding."""
        pos = self.position(relation_id)
        if len(self.relations) == 1 and not self.allow_empty:
            raise ConfigurationError(
                "cannot remove the last relation; federation embeddings must stay non-empty"
            )
        removed = self.relations.pop(pos)
        self.generation += 1
        return removed

    def encode_query(self, query: str) -> np.ndarray:
        """semImg(Q): the query's unit vector in the shared space."""
        vector = self.encoder.encode_one(query)
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector

    def stacked(self) -> tuple[np.ndarray, np.ndarray]:
        """All value vectors stacked, plus each row's relation index.

        Returns ``(matrix, owner)`` where ``owner[i]`` is the index into
        :attr:`relations` of the relation owning row ``i``.
        """
        matrix = np.vstack([r.vectors for r in self.relations])
        owner = np.concatenate(
            [np.full(r.n_unique, i, dtype=np.intp) for i, r in enumerate(self.relations)]
        )
        return matrix, owner


def save_federation_embeddings(
    embeddings: FederationEmbeddings, path: "str | Path"
) -> None:
    """Persist federation embeddings to one ``.npz`` file.

    Vectorizing is the expensive offline step; persisting it lets a
    deployment embed once and serve many sessions.  The encoder itself
    is not stored — load with the same encoder configuration so query
    vectors stay in the same space.
    """
    arrays: dict[str, np.ndarray] = {
        "relation_ids": np.array([r.relation_id for r in embeddings.relations]),
        "build_seconds": np.array([embeddings.build_seconds], dtype=np.float64),
        "generation": np.array([embeddings.generation], dtype=np.int64),
    }
    for i, rel in enumerate(embeddings.relations):
        arrays[f"vectors_{i}"] = rel.vectors
        arrays[f"counts_{i}"] = rel.counts
        arrays[f"values_{i}"] = np.array(rel.values)
        arrays[f"names_{i}"] = np.array(rel.attr_names)
    np.savez_compressed(path, **arrays)


def load_federation_embeddings(
    path: "str | Path", encoder: SentenceEncoder
) -> FederationEmbeddings:
    """Restore embeddings saved by :func:`save_federation_embeddings`.

    ``encoder`` must match the configuration used when building; a
    dimensionality mismatch is rejected immediately.
    """
    with np.load(path, allow_pickle=False) as data:
        relation_ids = [str(r) for r in data["relation_ids"]]
        # Older snapshots predate these fields; default rather than fail.
        build_seconds = float(data["build_seconds"][0]) if "build_seconds" in data else 0.0
        generation = int(data["generation"][0]) if "generation" in data else 0
        relations = []
        for i, relation_id in enumerate(relation_ids):
            vectors = data[f"vectors_{i}"]
            if vectors.shape[1] != encoder.dim:
                raise ConfigurationError(
                    f"stored embeddings are {vectors.shape[1]}-dim but the "
                    f"encoder produces {encoder.dim}-dim vectors"
                )
            relations.append(
                RelationEmbedding(
                    relation_id=relation_id,
                    values=tuple(str(v) for v in data[f"values_{i}"]),
                    attr_names=tuple(str(n) for n in data[f"names_{i}"]),
                    vectors=vectors,
                    counts=data[f"counts_{i}"],
                )
            )
    return FederationEmbeddings(
        relations=relations,
        encoder=encoder,
        build_seconds=build_seconds,
        generation=generation,
    )


def build_federation_embeddings(
    federation: Federation, encoder: SentenceEncoder
) -> FederationEmbeddings:
    """Vectorize an entire federation (the offline indexing step)."""
    start = time.perf_counter()
    relations = [
        build_relation_embedding(relation_id, relation, encoder)
        for relation_id, relation in federation.relations()
    ]
    if not relations:
        raise ConfigurationError("federation contains no relations")
    elapsed = time.perf_counter() - start
    return FederationEmbeddings(relations=relations, encoder=encoder, build_seconds=elapsed)
