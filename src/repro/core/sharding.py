"""Sharded federation stores and scatter-gather search execution.

One monolithic :class:`~repro.core.semimg.FederationEmbeddings` caps
every method at what a single stacked matrix, value collection or
clustering can hold — and every delta at one global critical section.
This module splits the store into ``N`` shards and turns each search
method into a scatter-gather plan over per-shard indexes:

* :class:`ShardMap` — deterministic ``relation_id -> shard`` placement
  via rendezvous (highest-random-weight) hashing, so growing the shard
  count only moves relations *onto* the new shard and a delta never
  reshuffles untouched relations;
* :class:`ShardedStore` — partitions one federation store into
  per-shard :class:`FederationEmbeddings` (the immutable
  :class:`~repro.core.semimg.RelationEmbedding` objects are shared, not
  copied) and routes each lifecycle delta to the owning shards only;
* :class:`ShardedSearch` / :class:`ShardedANNSearch` — a
  :class:`~repro.core.base.SearchMethod` that owns one real method
  index per shard, scatters each query (or encoded query block) across
  them — one thread-pool task per shard when ``workers > 1`` — and
  gathers with an exact merge.

Exactness of the merge: ExS and CTS score a relation from that
relation's vectors alone, so the union of per-shard score lists feeds
the very same candidates into the shared threshold/sort/top-k
finalizer and the sharded ranking equals the unsharded one
bit-for-bit.  ANNS has one cross-relation coupling — the global
candidate budget — so its gather works at the *candidate* level: every
shard retrieves the global budget of nearest value points, duplicates
(the vector for a value text is canonical, so cross-shard copies score
identically) are folded together with their owner payloads merged, and
the merged list is re-cut to the global budget before relation
grouping — the classic distributed top-k.  With an exact index this
reproduces the unsharded candidate set, hence the unsharded scores;
graph indexes stay approximate per shard, exactly as they are
unsharded.  CTS clusters each shard independently and routes each
query into every shard's ``top_clusters`` best clusters, so its
sharded semantics are per-shard (documented in the README).
"""

from __future__ import annotations

import hashlib
import itertools
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.core.annotations import requires_lock
from repro.core.anns import ANNSearch
from repro.core.base import SearchMethod
from repro.core.results import RelationMatch
from repro.core.semimg import FederationEmbeddings, RelationEmbedding
from repro.errors import ConfigurationError
from repro.exec import ExecutionBackend
from repro.sanitize import lockset
from repro.vectordb.collection import ScoredPoint

__all__ = [
    "ShardMap",
    "ShardedANNSearch",
    "ShardedSearch",
    "ShardedStore",
    "make_sharded_method",
]

#: Builds a fresh, unindexed method instance (one per shard).
MethodFactory = Callable[[], SearchMethod]

#: One shard's slice of a federation delta.
ShardDelta = tuple[list[RelationEmbedding], list[RelationEmbedding], list[str]]

#: Distinguishes scan-state keys of same-named sharded methods on one
#: shared backend (an engine re-``index()`` builds a fresh wrapper).
_SCAN_SCOPES = itertools.count()


class ShardMap:
    """Deterministic ``relation_id -> shard`` placement.

    Rendezvous (highest-random-weight) hashing: every ``(shard,
    relation_id)`` pair gets a pseudo-random weight from a keyed
    blake2b digest and the relation lives on the shard with the
    highest weight.  Two properties matter here:

    * the mapping is a pure function of ``(seed, n_shards,
      relation_id)`` — identical across processes and sessions (unlike
      Python's salted ``hash``), so a reloaded engine re-partitions a
      persisted store exactly as before;
    * growing ``n_shards`` by one leaves every existing weight intact,
      so a relation either stays put or moves to the *new* shard —
      resharding never shuffles relations between surviving shards.
    """

    def __init__(self, n_shards: int, seed: int = 0) -> None:
        if n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.seed = seed
        self._memo: dict[str, int] = {}

    def _weight(self, shard: int, relation_id: str) -> int:
        payload = f"{self.seed}|{shard}|{relation_id}".encode()
        return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")

    def shard_of(self, relation_id: str) -> int:
        """The shard owning ``relation_id`` (memoized per instance)."""
        shard = self._memo.get(relation_id)
        if shard is None:
            if self.n_shards == 1:
                shard = 0
            else:
                shard = max(
                    range(self.n_shards),
                    key=lambda s: self._weight(s, relation_id),
                )
            self._memo[relation_id] = shard
        return shard

    def partition(self, relation_ids: Iterable[str]) -> list[list[str]]:
        """Group ``relation_ids`` by owning shard (order preserved)."""
        out: list[list[str]] = [[] for _ in range(self.n_shards)]
        for relation_id in relation_ids:
            out[self.shard_of(relation_id)].append(relation_id)
        return out


class ShardedStore:
    """One federation store partitioned into per-shard stores.

    The global ``store`` stays the source of truth (persistence and
    validation run against it); each shard holds a
    :class:`FederationEmbeddings` over *its* relations, sharing the
    embedded :class:`RelationEmbedding` objects — partitioning never
    re-embeds or copies vectors.  Shard stores are created with
    ``allow_empty=True``: hashing a small federation over many shards,
    or a delta retiring a shard's last relation, legitimately leaves a
    shard with nothing.
    """

    def __init__(
        self,
        store: FederationEmbeddings,
        shard_map: ShardMap,
        shards: "list[FederationEmbeddings] | None" = None,
    ) -> None:
        self.store = store
        self.shard_map = shard_map
        if shards is not None:
            # Adopt pre-partitioned shard stores — the snapshot reload
            # path, where each shard directory materialized (or mapped)
            # its own store and re-partitioning from the global store
            # would throw those per-shard backings away.  Placement must
            # agree with the shard map or scatter-gather would misroute
            # deltas.
            if len(shards) != shard_map.n_shards:
                raise ConfigurationError(
                    f"got {len(shards)} prebuilt shard stores for a "
                    f"{shard_map.n_shards}-shard map"
                )
            for index, shard in enumerate(shards):
                for relation in shard.relations:
                    owner = shard_map.shard_of(relation.relation_id)
                    if owner != index:
                        raise ConfigurationError(
                            f"relation {relation.relation_id!r} sits on shard "
                            f"{index} but the shard map places it on {owner}"
                        )
            self.shards: list[FederationEmbeddings] = list(shards)
            return
        self.shards = [
            FederationEmbeddings(relations=[], encoder=store.encoder, allow_empty=True)
            for _ in range(shard_map.n_shards)
        ]
        for relation in store.relations:
            self.shards[shard_map.shard_of(relation.relation_id)].relations.append(relation)

    @property
    def n_shards(self) -> int:
        return self.shard_map.n_shards

    def shard_sizes(self) -> list[int]:
        """Relations per shard (skew shows up here)."""
        return [shard.n_relations for shard in self.shards]

    def route(
        self,
        added: Sequence[RelationEmbedding],
        updated: Sequence[RelationEmbedding],
        removed: Sequence[str],
    ) -> dict[int, ShardDelta]:
        """Split one federation delta by owning shard.

        Only shards that actually own a touched relation appear in the
        result, which is what keeps a writer's critical section
        proportional to the shards a delta touches rather than to the
        shard count.
        """
        per_shard: dict[int, ShardDelta] = {}

        def slot(relation_id: str) -> ShardDelta:
            shard = self.shard_map.shard_of(relation_id)
            if shard not in per_shard:
                per_shard[shard] = ([], [], [])
            return per_shard[shard]

        for embedding in added:
            slot(embedding.relation_id)[0].append(embedding)
        for embedding in updated:
            slot(embedding.relation_id)[1].append(embedding)
        for relation_id in removed:
            slot(relation_id)[2].append(relation_id)
        return per_shard

    @requires_lock("write")
    def apply_delta(
        self,
        added: Sequence[RelationEmbedding],
        updated: Sequence[RelationEmbedding],
        removed: Sequence[str],
    ) -> dict[int, ShardDelta]:
        """Mutate the owning shard stores (the global store is already
        mutated by the engine) and return the per-shard routing."""
        lockset.write(self, "shards", policy="publish")
        routed = self.route(added, updated, removed)
        for shard, (to_add, to_update, to_remove) in routed.items():
            store = self.shards[shard]
            for embedding in to_add:
                store.add_relation(embedding.relation_id, embedding)
            for embedding in to_update:
                store.update_relation(embedding.relation_id, embedding)
            for relation_id in to_remove:
                store.remove_relation(relation_id)
        return routed


class ShardedSearch(SearchMethod):
    """Scatter-gather execution of one search method over N shards.

    Owns one real method instance per non-empty shard (named
    ``<method>.shard<i>`` so its stage timers — ``exs.shard3.scan`` —
    and gauges are distinguishable in the shared registry), presents
    the ordinary :class:`SearchMethod` surface, and serves queries by
    scattering across the shard indexes and gathering with an exact
    merge before the shared threshold/sort/top-k finalizer.

    ``search_batch(..., workers=N)`` scatters the whole query block
    with one thread-pool task per shard — the sharded counterpart of
    the unsharded relation-chunked pool, with the chunk boundaries
    fixed at shard boundaries.
    """

    def __init__(
        self,
        factory: MethodFactory,
        store: ShardedStore,
        prototype: SearchMethod | None = None,
    ) -> None:
        super().__init__()
        self._factory = factory
        self._store = store
        #: Carries the method's hyper-parameters and scoring helpers;
        #: never indexed itself.
        self._prototype = prototype if prototype is not None else factory()
        self.name = self._prototype.name
        self._shard_methods: list[SearchMethod | None] = [None] * store.n_shards
        #: Shard -> generation of the scan state published to a
        #: process backend's workers (empty unless the backend hosts
        #: resident shard state).
        self._published: dict[int, int] = {}
        self._scan_scope = next(_SCAN_SCOPES)

    @property
    def shard_methods(self) -> list[SearchMethod | None]:
        """Per-shard method instances (``None`` for empty shards)."""
        return list(self._shard_methods)

    def _build(self) -> None:
        for method in self._shard_methods:
            if method is not None:
                method.close()
        self._shard_methods = [
            self._build_shard(i) if shard.n_relations else None
            for i, shard in enumerate(self._store.shards)
        ]
        for shard in range(self._store.n_shards):
            self._sync_worker(shard)

    def _build_shard(self, shard: int) -> SearchMethod:
        method = self._factory()
        method.name = f"{self.name}.shard{shard}"
        method.metrics = self.metrics
        method.executor = self._backend()
        method.index(self._store.shards[shard])
        return method

    def _live(self) -> list[SearchMethod]:
        return [method for method in self._shard_methods if method is not None]

    def index_bytes(self) -> int:
        """Total resident bytes across live shard indexes."""
        return sum(method.index_bytes() for method in self._live())

    # -- resident worker state ---------------------------------------------

    def _scan_key(self, shard: int) -> str:
        return f"{self.name}#{self._scan_scope}:{shard}"

    def _scan_backend(self) -> ExecutionBackend | None:
        """The backend hosting resident shard state, if ours does."""
        backend = self._backend()
        return backend if backend.supports_shard_scans else None

    def _sync_worker(self, shard: int) -> None:
        """Reconcile one shard's published worker state with its index.

        Publishes the shard method's :meth:`scan_spec` when the
        resident generation is stale (or state was never published),
        drops it when the shard drained empty or the method has no
        resident-scan form.  Runs at build and after every delta —
        under the engine's writer lock, so a scan never races a swap.
        """
        backend = self._scan_backend()
        if backend is None:
            return
        key = self._scan_key(shard)
        method = self._shard_methods[shard]
        spec = method.scan_spec() if method is not None else None
        if spec is None:
            if self._published.pop(shard, None) is not None:
                backend.drop_shard(key)
            return
        if self._published.get(shard) == spec.generation:
            return
        backend.publish_shard(key, spec)
        self._published[shard] = spec.generation

    def close(self) -> None:
        """Drop published worker state, close shard indexes (releasing
        their shared buffers), then the base method resources."""
        backend = self._executor if self._executor is not None else self._owned_executor
        if backend is not None and backend.supports_shard_scans:
            for shard in list(self._published):
                backend.drop_shard(self._scan_key(shard))
        self._published.clear()
        for method in self._shard_methods:
            if method is not None:
                method.close()
        super().close()

    # -- incremental lifecycle ---------------------------------------------

    @requires_lock("write")
    def _apply_delta(
        self,
        added: list[RelationEmbedding],
        updated: list[RelationEmbedding],
        removed: list[str],
    ) -> None:
        """Route index maintenance to the touched shards only.

        The shard *stores* were already mutated (the engine applies the
        delta to its :class:`ShardedStore` before propagating to method
        indexes, mirroring the unsharded store-then-index order).  A
        shard drained empty drops its index; a shard gaining its first
        relations builds one from its store.
        """
        for shard, (to_add, to_update, to_remove) in self._store.route(
            added, updated, removed
        ).items():
            method = self._shard_methods[shard]
            if not self._store.shards[shard].n_relations:
                self._shard_methods[shard] = None
                if method is not None:
                    method.close()
            elif method is None:
                self._shard_methods[shard] = self._build_shard(shard)
            else:
                method.apply_delta(to_add, to_update, to_remove)
            self._sync_worker(shard)

    # -- scatter-gather ----------------------------------------------------

    def _gather(self, parts: list[list[RelationMatch]]) -> list[RelationMatch]:
        """Exact merge: per-relation scores are shard-local, so the
        union of per-shard score lists is the unsharded score list."""
        with self.metrics.timer(f"{self.name}.merge"):
            merged: list[RelationMatch] = []
            for part in parts:
                merged.extend(part)
            return merged

    def _gather_batch(
        self, n_queries: int, parts: list[list[list[RelationMatch]]]
    ) -> list[list[RelationMatch]]:
        with self.metrics.timer(f"{self.name}.merge"):
            merged: list[list[RelationMatch]] = [[] for _ in range(n_queries)]
            for part in parts:
                for query_index, matches in enumerate(part):
                    merged[query_index].extend(matches)
            return merged

    def _score_all(self, query: str) -> list[RelationMatch]:
        return self._gather([method._score_all(query) for method in self._live()])

    def _score_batch(self, queries: Sequence[str]) -> list[list[RelationMatch]]:
        parts = [method._score_batch(queries) for method in self._live()]
        return self._gather_batch(len(queries), parts)

    def _scan_resident(self, queries: Sequence[str]) -> list[list[RelationMatch]] | None:
        """Scatter the encoded query block to worker-resident shards.

        The fast path on a process backend: every live shard's scan
        state already lives in a worker process (published at build /
        delta time), so the batch crosses the pipe as one encoded
        block per shard and only score matrices come back — no index
        pickling, no GIL.  Returns ``None`` when the backend hosts no
        resident state or any live shard lacks a published spec (e.g.
        a ``fused=False`` prototype); callers then fall back to
        in-process per-shard scans.
        """
        backend = self._scan_backend()
        if backend is None:
            return None
        live_shards = [
            shard
            for shard, method in enumerate(self._shard_methods)
            if method is not None
        ]
        if not live_shards or any(s not in self._published for s in live_shards):
            return None
        with self.metrics.timer(f"{self.name}.encode"):
            block = np.stack([self.embeddings.encode_query(q) for q in queries])
        dtype = getattr(self._prototype, "dtype", None)
        if dtype is not None:
            block = block.astype(dtype, copy=False)
        block = np.ascontiguousarray(block)
        scores = backend.scan_shards(
            [(self._scan_key(s), self._published[s], block) for s in live_shards]
        )
        parts: list[list[list[RelationMatch]]] = []
        for shard, shard_scores in zip(live_shards, scores):
            method = self._shard_methods[shard]
            assert method is not None
            parts.append(method.matches_from_scores(shard_scores))
        return self._gather_batch(len(queries), parts)

    def _score_batch_parallel(
        self, queries: Sequence[str], workers: int
    ) -> list[list[RelationMatch]]:
        """One backend task per shard; on a thread backend the
        per-shard kernels release the GIL inside BLAS, on a process
        backend the scan runs in the workers holding resident state."""
        live = self._live()
        if len(live) < 2 or workers < 2:
            return self._score_batch(queries)
        resident = self._scan_resident(queries)
        if resident is not None:
            return resident
        parts = self._backend().map(
            lambda method: method._score_batch(queries), live, cap=workers
        )
        return self._gather_batch(len(queries), parts)


class ShardedANNSearch(ShardedSearch):
    """ANNS scatter-gather with a candidate-level distributed top-k.

    ANNS is the one method whose relation scores couple across shards:
    a relation's evidence is its values *within the global candidate
    budget*.  Each shard therefore retrieves the full global budget of
    nearest value points, the gather folds duplicate values together
    (same text -> same canonical vector -> identical score; owner
    payloads are disjoint across shards and simply concatenate) and
    re-cuts the merged list to the global budget before grouping by
    relation — so with an exact index the candidate set, and hence
    every relation score, matches the unsharded engine.
    """

    def __init__(
        self,
        factory: MethodFactory,
        store: ShardedStore,
        prototype: SearchMethod | None = None,
    ) -> None:
        super().__init__(factory, store, prototype)
        if not isinstance(self._prototype, ANNSearch):
            raise ConfigurationError("ShardedANNSearch requires an ANNSearch factory")
        self._anns_prototype: ANNSearch = self._prototype

    def _budget(self) -> int:
        """The unsharded candidate budget — sized by the GLOBAL relation
        count, not any shard's."""
        return self._anns_prototype.candidate_budget(self.embeddings.n_relations)

    def _shard_anns(self) -> list[ANNSearch]:
        return [method for method in self._live() if isinstance(method, ANNSearch)]

    def _merge_hits(
        self, hit_lists: list[list[ScoredPoint]], budget: int
    ) -> list[ScoredPoint]:
        best: dict[str, ScoredPoint] = {}
        for hits in hit_lists:
            for hit in hits:
                value = str(hit.payload["value"])
                prev = best.get(value)
                if prev is None:
                    best[value] = hit
                else:
                    # Never mutate a shard's stored payload in place.
                    best[value] = ScoredPoint(
                        id=prev.id,
                        score=max(prev.score, hit.score),
                        payload={
                            "value": value,
                            "owners": list(prev.payload["owners"])
                            + list(hit.payload["owners"]),
                        },
                    )
        ranked = sorted(best.values(), key=lambda h: (-h.score, str(h.payload["value"])))
        return ranked[:budget]

    def _gather_hits(
        self,
        n_queries: int,
        per_shard: list[list[list[ScoredPoint]]],
        budget: int,
    ) -> list[list[RelationMatch]]:
        with self.metrics.timer(f"{self.name}.merge"):
            merged = [
                self._merge_hits([shard_lists[i] for shard_lists in per_shard], budget)
                for i in range(n_queries)
            ]
        return [self._anns_prototype._group_hits(hits) for hits in merged]

    def _score_all(self, query: str) -> list[RelationMatch]:
        with self.metrics.timer(f"{self.name}.encode"):
            q = self.embeddings.encode_query(query)
        budget = self._budget()
        per_shard = [[shard.retrieve(q, budget)] for shard in self._shard_anns()]
        return self._gather_hits(1, per_shard, budget)[0]

    def _score_batch(self, queries: Sequence[str]) -> list[list[RelationMatch]]:
        block = self._encode_block(queries)
        budget = self._budget()
        per_shard = [shard.retrieve_batch(block, budget) for shard in self._shard_anns()]
        return self._gather_hits(len(queries), per_shard, budget)

    def _score_batch_parallel(
        self, queries: Sequence[str], workers: int
    ) -> list[list[RelationMatch]]:
        shards = self._shard_anns()
        if len(shards) < 2 or workers < 2:
            return self._score_batch(queries)
        block = self._encode_block(queries)
        budget = self._budget()
        per_shard = self._backend().map(
            lambda shard: shard.retrieve_batch(block, budget), shards, cap=workers
        )
        return self._gather_hits(len(queries), per_shard, budget)

    def _encode_block(self, queries: Sequence[str]) -> np.ndarray:
        with self.metrics.timer(f"{self.name}.encode"):
            return np.stack([self.embeddings.encode_query(q) for q in queries])


def make_sharded_method(factory: MethodFactory, store: ShardedStore) -> ShardedSearch:
    """The scatter-gather wrapper fitting ``factory``'s method.

    ANNS needs the candidate-level gather; every method whose relation
    scores are shard-local takes the generic score-list merge.
    """
    prototype = factory()
    if isinstance(prototype, ANNSearch):
        return ShardedANNSearch(factory, store, prototype)
    return ShardedSearch(factory, store, prototype)
