"""Concurrency primitives for the incremental federation lifecycle.

Serving and mutation share one :class:`DiscoveryEngine`: query batches
may be in flight on ``workers > 1`` thread pools while a delta
(add / update / remove relations) arrives.  The engine guards both
sides with a :class:`RWLock` — any number of concurrent readers
(searches) or exactly one writer (a delta) — so a query always sees a
complete generation of the store and every method index, never a torn
intermediate state.  This is the same discipline the embedding cache
uses for its LRU bookkeeping, lifted to the index level.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.semimg import RelationEmbedding

__all__ = ["FederationDelta", "RWLock"]


@dataclass(frozen=True)
class FederationDelta:
    """One atomic batch of store mutations, as seen by the indexes.

    ``added`` and ``updated`` carry the freshly embedded relations (the
    store already holds them when the delta is applied); ``removed``
    lists retired relation ids.  ``generation`` is the store generation
    after the whole batch was absorbed.
    """

    added: tuple[RelationEmbedding, ...] = ()
    updated: tuple[RelationEmbedding, ...] = ()
    removed: tuple[str, ...] = ()
    generation: int = 0

    @property
    def n_changes(self) -> int:
        return len(self.added) + len(self.updated) + len(self.removed)


@dataclass
class RWLock:
    """Many concurrent readers or one exclusive writer.

    Readers (searches) overlap freely; a writer (delta application)
    waits for in-flight readers to drain and blocks new ones until it
    finishes.  The policy is writer-preference: once a writer is
    waiting, new readers queue behind it.  Under a sustained 100% read
    load a reader-preference lock would starve deltas forever; making
    readers yield to a pending writer bounds delta latency by the
    in-flight readers only, at the cost of one write-length stall for
    queries that arrive during the delta.
    """

    _cond: threading.Condition = field(default_factory=threading.Condition)
    _readers: int = 0
    _writing: bool = False
    _writers_waiting: int = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writing or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()
