"""Concurrency primitives for the incremental federation lifecycle.

Serving and mutation share one :class:`DiscoveryEngine`: query batches
may be in flight on ``workers > 1`` thread pools while a delta
(add / update / remove relations) arrives.  The engine guards both
sides with a :class:`RWLock` — any number of concurrent readers
(searches) or exactly one writer (a delta) — so a query always sees a
complete generation of the store and every method index, never a torn
intermediate state.  This is the same discipline the embedding cache
uses for its LRU bookkeeping, lifted to the index level.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.annotations import guarded_by, monotonic, requires_lock
from repro.core.semimg import RelationEmbedding
from repro.errors import SanitizerError
from repro.sanitize import lockset

__all__ = [
    "FederationDelta",
    "InstrumentedRWLock",
    "RWLock",
    "guarded_by",
    "monotonic",
    "requires_lock",
]


@dataclass(frozen=True)
class FederationDelta:
    """One atomic batch of store mutations, as seen by the indexes.

    ``added`` and ``updated`` carry the freshly embedded relations (the
    store already holds them when the delta is applied); ``removed``
    lists retired relation ids.  ``generation`` is the store generation
    after the whole batch was absorbed.
    """

    added: tuple[RelationEmbedding, ...] = ()
    updated: tuple[RelationEmbedding, ...] = ()
    removed: tuple[str, ...] = ()
    generation: int = 0

    @property
    def n_changes(self) -> int:
        return len(self.added) + len(self.updated) + len(self.removed)


@dataclass
class RWLock:
    """Many concurrent readers or one exclusive writer.

    Readers (searches) overlap freely; a writer (delta application)
    waits for in-flight readers to drain and blocks new ones until it
    finishes.  The policy is writer-preference: once a writer is
    waiting, new readers queue behind it.  Under a sustained 100% read
    load a reader-preference lock would starve deltas forever; making
    readers yield to a pending writer bounds delta latency by the
    in-flight readers only, at the cost of one write-length stall for
    queries that arrive during the delta.
    """

    _cond: threading.Condition = field(default_factory=threading.Condition)
    _readers: int = 0
    _writing: bool = False
    _writers_waiting: int = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writing or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


class _ThreadHolds(threading.local):
    """Per-thread lock-hold bookkeeping for the instrumented lock."""

    def __init__(self) -> None:
        self.read = 0
        self.write = False


class InstrumentedRWLock(RWLock):
    """An :class:`RWLock` that *raises* where the plain one deadlocks.

    Sanitizer mode (``REPRO_SANITIZE=1`` / ``DiscoveryEngine(
    sanitize=True)``) swaps this in for the plain lock.  It tracks
    which locks each thread holds and turns the three silent failure
    modes of a non-reentrant writer-preference lock into immediate
    :class:`~repro.errors.SanitizerError`\\ s:

    * **write-while-reading reentrancy** — a thread that holds the
      reader lock requests the writer lock (or vice versa, or nests
      either side): the plain lock would wait on itself forever;
    * **double-release** — releasing a side this thread does not hold,
      which would corrupt the reader count / writer flag;
    * **reader starvation** — a writer waiting longer than
      ``writer_timeout`` seconds for readers to drain (a stuck or
      leaked reader under sustained load).
    """

    def __init__(self, writer_timeout: float = 30.0) -> None:
        super().__init__()
        if writer_timeout <= 0:
            raise ValueError("writer_timeout must be > 0")
        self.writer_timeout = writer_timeout
        self._holds = _ThreadHolds()

    # -- explicit acquire/release (the contextmanagers delegate here) ----

    def acquire_read(self) -> None:
        if self._holds.write:
            raise SanitizerError(
                "read() requested while this thread holds the writer lock "
                "(reentrancy would deadlock)"
            )
        if self._holds.read:
            raise SanitizerError(
                "nested read() on one thread (deadlocks as soon as a writer queues "
                "between the two acquires — the lock is writer-preference)"
            )
        with self._cond:
            while self._writing or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        self._holds.read += 1
        lockset.note_acquire(self, exclusive=False)

    def release_read(self) -> None:
        if not self._holds.read:
            raise SanitizerError("release of a reader lock this thread does not hold")
        self._holds.read -= 1
        lockset.note_release(self, exclusive=False)
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        if self._holds.read:
            raise SanitizerError(
                "write() requested while this thread holds the reader lock "
                "(write-while-reading reentrancy would deadlock)"
            )
        if self._holds.write:
            raise SanitizerError("nested write() on one thread (would deadlock)")
        deadline = time.monotonic() + self.writer_timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise SanitizerError(
                            f"writer starved for {self.writer_timeout:g}s waiting on "
                            f"{self._readers} reader(s) — a reader is stuck or leaked"
                        )
                    self._cond.wait(remaining)
            finally:
                self._writers_waiting -= 1
            self._writing = True
        self._holds.write = True
        lockset.note_acquire(self, exclusive=True)

    def release_write(self) -> None:
        if not self._holds.write:
            raise SanitizerError("release of a writer lock this thread does not hold")
        self._holds.write = False
        lockset.note_release(self, exclusive=True)
        with self._cond:
            self._writing = False
            self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
