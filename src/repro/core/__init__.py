"""The paper's primary contribution: value-level semantic dataset discovery.

* :mod:`repro.core.semimg` — semantic representations (``semImg``) of
  attributes, relations and federations (paper Sec 4).
* :mod:`repro.core.exhaustive` — Exhaustive Search (Algorithm 1).
* :mod:`repro.core.anns` — Approximate Nearest Neighbours Search
  (Algorithm 2) over the PQ+HNSW vector database.
* :mod:`repro.core.cts` — Clustered Targeted Search (Algorithm 3):
  UMAP + HDBSCAN + medoid routing + in-cluster ANN.
* :mod:`repro.core.engine` — :class:`DiscoveryEngine`, the facade that
  indexes a federation once and serves all three methods.
* :mod:`repro.core.sharding` — deterministic store sharding
  (:class:`ShardMap`, :class:`ShardedStore`) and scatter-gather method
  execution behind ``DiscoveryEngine(shards=N)``.
"""

from repro.core.anns import ANNSearch
from repro.core.cts import ClusteredTargetedSearch
from repro.core.engine import DiscoveryEngine
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.lifecycle import FederationDelta, RWLock
from repro.core.results import BatchResult, RelationMatch, SearchResult, same_ranking
from repro.core.sharding import (
    ShardMap,
    ShardedANNSearch,
    ShardedSearch,
    ShardedStore,
    make_sharded_method,
)
from repro.core.semimg import (
    FederationEmbeddings,
    RelationEmbedding,
    build_federation_embeddings,
    build_relation_embedding,
    load_federation_embeddings,
    save_federation_embeddings,
)

__all__ = [
    "ANNSearch",
    "BatchResult",
    "ClusteredTargetedSearch",
    "DiscoveryEngine",
    "ExhaustiveSearch",
    "FederationDelta",
    "FederationEmbeddings",
    "RWLock",
    "RelationEmbedding",
    "RelationMatch",
    "SearchResult",
    "ShardMap",
    "ShardedANNSearch",
    "ShardedSearch",
    "ShardedStore",
    "build_federation_embeddings",
    "build_relation_embedding",
    "load_federation_embeddings",
    "make_sharded_method",
    "same_ranking",
    "save_federation_embeddings",
]
