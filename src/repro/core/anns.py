"""Approximate Nearest Neighbours Search (ANNS) — Algorithm 2.

Step 1 (offline): every attribute-value vector is stored in a vector
database collection together with its metadata (relation id, attribute
name), compressed with Product Quantization and indexed with HNSW.

Step 2 (query): the query vector retrieves its approximate nearest
value vectors; each relation's score is the average similarity of *its*
retrieved vectors.  Relations whose values never come near the query
are simply never touched — this focus is why ANNS beats ExS in quality
on focused queries (paper Sec 5.3) as well as in speed.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.base import SearchMethod
from repro.core.results import RelationMatch
from repro.core.semimg import RelationEmbedding
from repro.linalg.distances import Metric
from repro.vectordb.collection import Point, ScoredPoint
from repro.vectordb.database import VectorDatabase
from repro.vectordb.index import IndexKind

__all__ = ["ANNSearch"]


class ANNSearch(SearchMethod):
    """PQ + HNSW search over the value-vector database.

    Parameters
    ----------
    n_candidates:
        How many nearest value vectors to retrieve per query before
        grouping by relation.  ``None`` (default) scales with the
        corpus: ``max(256, 3 x n_relations)`` — a fixed budget starves
        recall on large federations because near-tie candidate sets
        (e.g. every table of a region sharing entity values) crowd out
        the deeper evidence.
    index_kind:
        Vector-database index; the paper's configuration is
        ``"hnsw+pq"``.  ``"hnsw"`` (uncompressed) and ``"exact"`` are
        ablation options.
    n_subvectors / n_centroids:
        Product-quantization shape (ignored without PQ).
    m / ef_construction / ef_search:
        HNSW graph parameters (ignored for ``"exact"``).
    evidence_size:
        The relation score is the average similarity of its
        ``evidence_size`` best retrieved vectors, counting missing
        slots as zero.  A plain average over however many vectors
        happened to be retrieved lets one lucky near-duplicate cell
        outrank a relation many of whose cells match the query; the
        fixed-size average keeps the paper's "average of the
        similarity scores of the vectors of the relation identified by
        ANN" while rewarding evidence breadth.
    dtype:
        Storage dtype of the values collection (float32 or float64).
        float32 — the encoder's native precision — halves resident
        vector memory; float64 is the compat mode.
    """

    name = "anns"

    def __init__(
        self,
        n_candidates: int | None = None,
        index_kind: IndexKind | str = IndexKind.HNSW_PQ,
        n_subvectors: int = 8,
        n_centroids: int = 256,
        m: int = 16,
        ef_construction: int = 100,
        ef_search: int = 64,
        evidence_size: int = 8,
        seed: int = 0,
        dtype: "str | np.dtype[Any] | type" = np.float64,
    ) -> None:
        super().__init__()
        if n_candidates is not None and n_candidates < 1:
            raise ValueError("n_candidates must be >= 1 (or None for auto)")
        self.n_candidates = n_candidates
        self.index_kind = IndexKind(index_kind)
        self.dtype = np.dtype(dtype)
        self.n_subvectors = n_subvectors
        self.n_centroids = n_centroids
        self.m = m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        if evidence_size < 1:
            raise ValueError("evidence_size must be >= 1")
        self.evidence_size = evidence_size
        self.seed = seed
        self._db: VectorDatabase | None = None
        self._value_ids: dict[str, int] = {}
        self._relation_values: dict[str, list[str]] = {}
        self._next_id = 0

    @property
    def database(self) -> VectorDatabase:
        """The populated vector database (after index())."""
        if self._db is None:
            raise RuntimeError("ANNSearch not indexed yet")
        return self._db

    def index_bytes(self) -> int:
        """Resident bytes of the values collection (vectors + codes)."""
        if self._db is None:
            return 0
        return self._db.get_collection("values").nbytes

    def _index_params(self) -> dict[str, Any]:
        if self.index_kind is IndexKind.EXACT:
            return {}
        params: dict[str, Any] = {}
        if self.index_kind in (IndexKind.HNSW, IndexKind.HNSW_PQ):
            params.update(
                m=self.m,
                ef_construction=self.ef_construction,
                ef_search=self.ef_search,
                seed=self.seed,
            )
        if self.index_kind in (IndexKind.PQ, IndexKind.HNSW_PQ):
            params.update(n_subvectors=self.n_subvectors, n_centroids=self.n_centroids)
        if self.index_kind is IndexKind.PQ:
            params.update(seed=self.seed)
        return params

    def _build(self) -> None:
        """Step 1: populate the vector database and build the index.

        One point is stored per globally DISTINCT value; its payload
        lists every (relation, attribute, count) occurrence.  Common
        values ("2021", country names) repeat across relations with
        byte-identical vectors, and duplicate points break proximity
        graphs: their PQ reconstructions coincide, the HNSW neighbour
        heuristic links duplicates only to each other, and the graph
        fragments into unreachable clumps.  Deduplication also stops
        duplicates from crowding the candidate budget — one retrieved
        value is evidence for every relation that contains it.
        """
        db = VectorDatabase(metrics=self.metrics)
        collection = db.create_collection(
            "values", dim=self.embeddings.dim, metric=Metric.COSINE, dtype=self.dtype
        )
        owners: dict[str, list[list[Any]]] = {}
        vectors: dict[str, np.ndarray] = {}
        for rel in self.embeddings.relations:
            for row in range(rel.n_unique):
                value = rel.values[row]
                if value not in owners:
                    owners[value] = []
                    vectors[value] = rel.vectors[row]
                owners[value].append(
                    [rel.relation_id, rel.attr_names[row], int(rel.counts[row])]
                )
        points = [
            Point(id=i, vector=vectors[value], payload={"value": value, "owners": owner_list})
            for i, (value, owner_list) in enumerate(owners.items())
        ]
        collection.upsert(points)
        collection.create_index(self.index_kind, **self._index_params())
        self._db = db
        # Lifecycle bookkeeping: value text -> point id, relation ->
        # value texts it contributed.  Deltas translate into point-level
        # upsert/delete against the collection via these maps.
        self._value_ids = {value: i for i, value in enumerate(owners)}
        self._next_id = len(owners)
        self._relation_values = {}
        for rel in self.embeddings.relations:
            self._relation_values[rel.relation_id] = list(rel.values)

    def _apply_delta(
        self,
        added: list[RelationEmbedding],
        updated: list[RelationEmbedding],
        removed: list[str],
    ) -> None:
        """Translate a federation delta into collection upsert/delete.

        Retiring a relation strips its entries from each of its values'
        ``owners`` payload; points left with no owners are deleted.
        Fresh relations upsert — existing value points (the vector for
        a given text is canonical) gain owner entries, genuinely new
        values become new points.  The collection's own index-staleness
        handling rebuilds the ANN graph lazily on the next search.
        """
        collection = self.database.get_collection("values")
        drop_ids = list(removed) + [r.relation_id for r in updated]
        dropped = set(drop_ids)
        affected: dict[str, None] = {}  # ordered value set
        for rid in drop_ids:
            for value in self._relation_values.pop(rid, ()):
                affected[value] = None
        to_delete: list[int] = []
        to_upsert: list[Point] = []
        for value in affected:
            point_id = self._value_ids[value]
            point = collection.get(point_id)
            owners = [o for o in point.payload["owners"] if o[0] not in dropped]
            if owners:
                to_upsert.append(
                    Point(id=point_id, vector=point.vector, payload={"value": value, "owners": owners})
                )
            else:
                to_delete.append(point_id)
                del self._value_ids[value]
        pending: dict[int, Point] = {p.id: p for p in to_upsert}
        for rel in updated + added:
            self._relation_values[rel.relation_id] = list(rel.values)
            for row in range(rel.n_unique):
                value = rel.values[row]
                entry = [rel.relation_id, rel.attr_names[row], int(rel.counts[row])]
                point_id = self._value_ids.get(value)
                if point_id is None:
                    point_id = self._next_id
                    self._next_id += 1
                    self._value_ids[value] = point_id
                    pending[point_id] = Point(
                        id=point_id,
                        vector=rel.vectors[row],
                        payload={"value": value, "owners": [entry]},
                    )
                elif point_id in pending:
                    pending[point_id].payload["owners"].append(entry)
                else:
                    point = collection.get(point_id)
                    pending[point_id] = Point(
                        id=point_id,
                        vector=point.vector,
                        payload={
                            "value": value,
                            "owners": list(point.payload["owners"]) + [entry],
                        },
                    )
        if pending:
            collection.upsert(list(pending.values()))
        if to_delete:
            collection.delete(to_delete)

    def candidate_budget(self, n_relations: int) -> int:
        """The retrieval budget for a corpus of ``n_relations``.

        Exposed (rather than folded into :meth:`_score_all`) because a
        sharded deployment must size every shard's retrieval by the
        *global* relation count to reproduce unsharded scores.
        """
        if self.n_candidates is not None:
            return self.n_candidates
        return max(256, n_relations // 2)

    def _candidate_budget(self) -> int:
        """How many nearest value vectors each query retrieves."""
        return self.candidate_budget(self.embeddings.n_relations)

    def retrieve(self, query_vector: np.ndarray, budget: int) -> list[ScoredPoint]:
        """Step 2's retrieval half: the ``budget`` nearest value points.

        Split from :meth:`_score_all` so a scatter-gather layer can
        merge candidates across shards before relation grouping.
        """
        collection = self.database.get_collection("values")
        with self.metrics.timer(f"{self.name}.scan"):
            return collection.search(query_vector, k=budget, ef=int(1.5 * budget), rescore=True)

    def retrieve_batch(
        self, query_block: np.ndarray, budget: int
    ) -> list[list[ScoredPoint]]:
        """Batched :meth:`retrieve` over a ``(Q, dim)`` query block."""
        collection = self.database.get_collection("values")
        # Match the collection's storage dtype before the scan: the
        # encoder emits float64, and shipping that into a float32
        # collection is exactly the silent promotion the sanitizer
        # rejects (found by the REPRO_SANITIZE CI shard).
        query_block = np.ascontiguousarray(query_block, dtype=collection.dtype)
        with self.metrics.timer(f"{self.name}.scan"):
            return collection.search_batch(
                query_block, k=budget, ef=int(1.5 * budget), rescore=True
            )

    def _score_all(self, query: str) -> list[RelationMatch]:
        """Step 2: approximate KNN, then group scores by relation."""
        with self.metrics.timer(f"{self.name}.encode"):
            q = self.embeddings.encode_query(query)
        return self._group_hits(self.retrieve(q, self._candidate_budget()))

    def _score_batch(self, queries: Sequence[str]) -> list[list[RelationMatch]]:
        """Batched Step 2: one candidate-retrieval pass per query block.

        The vector database serves the whole query block in one call —
        exact collections score it with a single GEMM, graph indexes
        amortize validation and freshness checks across the block —
        and each query's hits are grouped exactly as in sequential
        :meth:`_score_all`.
        """
        with self.metrics.timer(f"{self.name}.encode"):
            block = np.stack([self.embeddings.encode_query(q) for q in queries])
        hit_lists = self.retrieve_batch(block, self._candidate_budget())
        return [self._group_hits(hits) for hits in hit_lists]

    def _group_hits(self, hits: list[ScoredPoint]) -> list[RelationMatch]:
        """Fixed-size evidence averaging of one query's retrieved values."""
        per_relation: dict[str, list[float]] = defaultdict(list)
        per_relation_attrs: dict[str, set[str]] = defaultdict(set)
        for hit in hits:
            for relation_id, attribute, count in hit.payload["owners"]:
                # A value occurring `count` times in the relation is
                # `count` matched attributes (Algorithm 2 averages over
                # attribute occurrences, as ExS does).
                per_relation[relation_id].extend([hit.score] * count)
                per_relation_attrs[relation_id].add(attribute)
        m = self.evidence_size
        return [
            RelationMatch(
                relation_id=relation_id,
                score=sum(sorted(scores, reverse=True)[:m]) / m,
                details={
                    "n_hits": len(scores),
                    "attributes": sorted(per_relation_attrs[relation_id]),
                },
            )
            for relation_id, scores in per_relation.items()
        ]
