"""Result types shared by the three search methods."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["RelationMatch", "SearchResult"]


@dataclass(frozen=True)
class RelationMatch:
    """One ranked relation: qualified id + match score (+ diagnostics)."""

    relation_id: str
    score: float
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class SearchResult:
    """A ranked answer to one query.

    Attributes
    ----------
    query:
        The keyword query text.
    method:
        Which algorithm produced the ranking ("exs"/"anns"/"cts"/...).
    matches:
        Relations sorted by descending score (already thresholded).
    elapsed_ms:
        Wall-clock query latency in milliseconds (search only, not
        indexing).
    """

    query: str
    method: str
    matches: list[RelationMatch]
    elapsed_ms: float = 0.0

    def relation_ids(self) -> list[str]:
        """The ranked relation ids, best first."""
        return [m.relation_id for m in self.matches]

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self):
        return iter(self.matches)

    def top(self) -> RelationMatch | None:
        """Best match, or None when nothing passed the threshold."""
        return self.matches[0] if self.matches else None
