"""Result types shared by the three search methods."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

__all__ = ["BatchResult", "RelationMatch", "SearchResult", "same_ranking"]


@dataclass(frozen=True)
class RelationMatch:
    """One ranked relation: qualified id + match score (+ diagnostics)."""

    relation_id: str
    score: float
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class SearchResult:
    """A ranked answer to one query.

    Attributes
    ----------
    query:
        The keyword query text.
    method:
        Which algorithm produced the ranking ("exs"/"anns"/"cts"/...).
    matches:
        Relations sorted by descending score (already thresholded).
    elapsed_ms:
        Wall-clock query latency in milliseconds (search only, not
        indexing).
    """

    query: str
    method: str
    matches: list[RelationMatch]
    elapsed_ms: float = 0.0

    def relation_ids(self) -> list[str]:
        """The ranked relation ids, best first."""
        return [m.relation_id for m in self.matches]

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self) -> Iterator[RelationMatch]:
        return iter(self.matches)

    def top(self) -> RelationMatch | None:
        """Best match, or None when nothing passed the threshold."""
        return self.matches[0] if self.matches else None


class BatchResult(list[SearchResult]):
    """Results of one batched call: a list of :class:`SearchResult`,
    one per query in submission order, plus batch-level timing.

    Per-query ``elapsed_ms`` inside a batch is the amortized share of
    the batch's wall clock — the whole point of batching is that the
    per-query cost is not separable.
    """

    def __init__(self, results: list[SearchResult], elapsed_ms: float = 0.0) -> None:
        super().__init__(results)
        self.elapsed_ms = elapsed_ms

    @property
    def queries_per_second(self) -> float:
        """Batch throughput; 0 for an empty or instantaneous batch."""
        if not self or self.elapsed_ms <= 0.0:
            return 0.0
        return len(self) / (self.elapsed_ms / 1000.0)


def same_ranking(
    a: SearchResult, b: SearchResult, score_tol: float = 1e-9
) -> bool:
    """Whether two results rank the same relations with the same scores.

    Scores are compared within ``score_tol``: batched kernels sum the
    very same products as the sequential ones, but BLAS may order the
    reductions differently, which moves the last bits.
    """
    if a.relation_ids() != b.relation_ids():
        return False
    return all(
        abs(ma.score - mb.score) <= score_tol
        for ma, mb in zip(a.matches, b.matches)
    )
