"""Clustered Targeted Search (CTS) — Algorithm 3, the paper's main method.

Offline pipeline (Sec 4.3):

1. vectorize every attribute value (shared with ExS/ANNS);
2. reduce the vectors with UMAP (optionally PCA-preprocessed, and with
   the kNN graph precomputed, as the paper does);
3. cluster the reduced vectors with HDBSCAN;
4. compute each cluster's medoid ("HDBSCAN does not automatically
   provide cluster centers ... we manually compute the clusters
   medoids") and store every cluster in its own vector-database
   collection, with the medoid as its retrieval key.

Query pipeline: embed the query with the same sentence transformer and
rank cluster medoids by cosine similarity in the encoder's space (each
medoid is a real data point, so its original vector is known); bring
the query into the reduced space with a landmark transform and search
(ANNS-style) only inside the ``top_clusters`` best clusters; finally
score candidate relations *in the original embedding space* so scores
and the threshold ``h`` stay on the same cosine scale as ExS and ANNS.

HDBSCAN labels outliers as noise; a searchable index cannot drop them,
so noise points are attached to the cluster of their nearest medoid
(:attr:`n_noise_points` reports how many were absorbed).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

import numpy as np

from repro.clustering.hdbscan_ import HDBSCAN
from repro.clustering.medoids import medoid_index
from repro.core.base import SearchMethod
from repro.core.results import RelationMatch
from repro.core.semimg import RelationEmbedding
from repro.dimred.knn_graph import build_knn_graph
from repro.dimred.pca import PCA
from repro.dimred.umap_ import UMAP
from repro.errors import ConfigurationError
from repro.linalg.distances import Metric, euclidean_distance
from repro.vectordb.collection import Point, ScoredPoint
from repro.vectordb.database import VectorDatabase

__all__ = ["ClusteredTargetedSearch"]


class ClusteredTargetedSearch(SearchMethod):
    """UMAP + HDBSCAN + medoid-routed targeted search.

    Parameters
    ----------
    top_clusters:
        How many nearest clusters a query is routed into.
    per_cluster_candidates:
        Nearest value vectors fetched from each routed cluster.
    umap_components / umap_neighbors / umap_epochs:
        UMAP configuration for the reduction step.
    pca_components:
        Optional PCA pre-reduction before UMAP (0 disables).  Standard
        practice for high-dimensional text embeddings; also covered by
        an ablation benchmark.
    min_cluster_size / min_samples / cluster_selection_method:
        HDBSCAN configuration; CTS defaults to leaf selection, which
        yields many small fine-grained clusters — Excess-of-Mass tends
        to keep one giant low-density cluster of generic cell values
        (dates, codes, measures) that would swallow most of the corpus
        and defeat targeted routing.
    evidence_size:
        The relation score is the average similarity of its
        ``evidence_size`` best candidates, counting missing slots as
        zero (same rationale as in :class:`repro.core.anns.ANNSearch`).
    n_landmarks:
        Queries are brought into the reduced space via a landmark
        transform: distances to a fixed set of landmark points (all
        cluster medoids plus a random sample) instead of the full
        training set, keeping query cost independent of corpus size.
    drift_threshold:
        Incremental-lifecycle knob.  Federation deltas maintain the
        clustering partially — new/updated values are assigned to
        their nearest existing medoid — while a drift statistic
        accumulates: the fraction of points assigned post-hoc since
        the last clustering, plus the mean medoid displacement
        (normalized by the build-time inter-medoid distance).  When
        drift exceeds this threshold the index re-clusters from
        scratch automatically (``cts.rebuilds`` counts these).
    seed:
        Seed shared by the reduction pipeline.
    """

    name = "cts"

    def __init__(
        self,
        top_clusters: int = 20,
        per_cluster_candidates: int = 64,
        umap_components: int = 16,
        umap_neighbors: int = 15,
        umap_epochs: int = 120,
        pca_components: int = 48,
        min_cluster_size: int = 15,
        min_samples: int | None = None,
        cluster_selection_method: str = "leaf",
        evidence_size: int = 16,
        n_landmarks: int = 256,
        drift_threshold: float = 0.25,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if top_clusters < 1:
            raise ConfigurationError("top_clusters must be >= 1")
        if per_cluster_candidates < 1:
            raise ConfigurationError("per_cluster_candidates must be >= 1")
        self.top_clusters = top_clusters
        self.per_cluster_candidates = per_cluster_candidates
        self.umap_components = umap_components
        self.umap_neighbors = umap_neighbors
        self.umap_epochs = umap_epochs
        self.pca_components = pca_components
        self.min_cluster_size = min_cluster_size
        self.min_samples = min_samples
        self.cluster_selection_method = cluster_selection_method
        if evidence_size < 1:
            raise ConfigurationError("evidence_size must be >= 1")
        self.evidence_size = evidence_size
        self.n_landmarks = n_landmarks
        if drift_threshold <= 0.0:
            raise ConfigurationError("drift_threshold must be > 0")
        self.drift_threshold = drift_threshold
        self.seed = seed

        self._db: VectorDatabase | None = None
        self._pca: PCA | None = None
        self._umap: UMAP | None = None
        self._labels: np.ndarray | None = None
        self._owner: np.ndarray | None = None
        self._stacked: np.ndarray | None = None
        self._medoid_rows: dict[int, int] = {}
        self._n_noise = 0
        self._landmark_working: np.ndarray | None = None
        self._landmark_reduced: np.ndarray | None = None
        self._working: np.ndarray | None = None
        self._rep_rows: np.ndarray | None = None
        self._labels_unique: np.ndarray | None = None
        self._unique_to_rows: list[np.ndarray] = []
        # Incremental lifecycle state: per-value cluster assignments and
        # reduced coordinates survive deltas, so partial maintenance
        # only has to place values it has never seen.
        self._cluster_of_value: dict[str, int] = {}
        self._reduced_of_value: dict[str, np.ndarray] = {}
        self._medoid_value: dict[int, str] = {}
        self._medoid_reduced_at_build: dict[int, np.ndarray] = {}
        self._medoid_scale = 1.0
        self._drift_assigned = 0

    def index_bytes(self) -> int:
        """Resident bytes of the stacked value matrix (float64 — CTS's
        reduction/clustering pipeline stays in compat precision)."""
        return int(self._stacked.nbytes) if self._stacked is not None else 0

    # -- offline indexing --------------------------------------------------

    def _build(self) -> None:
        stacked, owner = self.embeddings.stacked()
        self._stacked = stacked.astype(np.float64)
        self._owner = owner

        # Reduce and cluster over globally UNIQUE values.  Common cell
        # values ("2021", country names, category labels) repeat across
        # relations with byte-identical vectors; left in place, each
        # point's kNN list fills up with its own duplicates at distance
        # zero, UMAP's fuzzy graph degenerates into duplicate islands
        # and HDBSCAN clusters stop reflecting semantics.  Clustering
        # the distinct vectors and broadcasting labels back restores
        # the semantic neighbourhood structure (and shrinks the
        # quadratic MST/kNN work).
        rep_rows, row_to_unique, unique_values = self._unique_rows()
        reduced_unique = self._reduce(self._stacked[rep_rows])
        labels_unique = self._cluster(reduced_unique)
        labels_unique = self._absorb_noise(reduced_unique, labels_unique)
        self._pick_landmarks(reduced_unique)
        # Lifecycle anchors: per-value assignments plus the build-time
        # medoid positions drift is measured against.
        self._cluster_of_value = {
            v: int(labels_unique[u]) for u, v in enumerate(unique_values)
        }
        self._reduced_of_value = {v: reduced_unique[u] for u, v in enumerate(unique_values)}
        self._medoid_value = {cid: unique_values[u] for cid, u in self._medoid_rows.items()}
        self._medoid_reduced_at_build = {
            cid: reduced_unique[u].copy() for cid, u in self._medoid_rows.items()
        }
        self._medoid_scale = self._inter_medoid_scale()
        self._drift_assigned = 0
        self.metrics.gauge(f"{self.name}.drift").set(0.0)
        # Map medoids from unique-space indices to full-row indices so
        # original-space lookups work.
        self._medoid_rows = {
            cid: int(rep_rows[u]) for cid, u in self._medoid_rows.items()
        }
        self._labels = labels_unique[row_to_unique]
        self._rep_rows = rep_rows
        self._labels_unique = labels_unique
        self._unique_to_rows = self._index_unique_rows(row_to_unique, len(rep_rows))
        self._populate_database(reduced_unique[row_to_unique], self._labels)

    def _unique_rows(self) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """First-occurrence row per distinct value text, row mapping,
        and the value texts in unique-index order."""
        first: dict[str, int] = {}
        rep_rows: list[int] = []
        mapping: list[int] = []
        unique_values: list[str] = []
        for rel in self.embeddings.relations:
            for value in rel.values:
                uidx = first.get(value)
                if uidx is None:
                    uidx = len(rep_rows)
                    first[value] = uidx
                    rep_rows.append(len(mapping))
                    unique_values.append(value)
                mapping.append(uidx)
        return (
            np.asarray(rep_rows, dtype=np.intp),
            np.asarray(mapping, dtype=np.intp),
            unique_values,
        )

    @staticmethod
    def _index_unique_rows(row_to_unique: np.ndarray, n_unique: int) -> list[np.ndarray]:
        """unique index -> all full rows carrying that value."""
        order = np.argsort(row_to_unique, kind="stable")
        boundaries = np.searchsorted(row_to_unique[order], np.arange(n_unique + 1))
        return [order[boundaries[u] : boundaries[u + 1]] for u in range(n_unique)]

    def _inter_medoid_scale(self) -> float:
        """Mean pairwise distance between medoids (drift normalizer)."""
        if len(self._medoid_reduced_at_build) < 2:
            return 1.0
        medoids = np.stack(list(self._medoid_reduced_at_build.values()))
        dists = euclidean_distance(medoids, medoids)
        n = medoids.shape[0]
        mean = float(dists.sum() / (n * (n - 1)))
        return mean if mean > 0.0 else 1.0

    # -- incremental lifecycle ----------------------------------------------

    def _apply_delta(
        self,
        added: list[RelationEmbedding],
        updated: list[RelationEmbedding],
        removed: list[str],
    ) -> None:
        """Partial maintenance: keep the clustering, place new values.

        The expensive offline work — kNN graph, UMAP, HDBSCAN — is kept;
        values that survived the delta keep their cluster and reduced
        coordinates.  New values (from added or revised relations) are
        projected via the landmark transform and assigned to their
        nearest existing medoid; retired values drop out and each
        cluster's medoid is re-derived from its surviving members.  A
        drift statistic (fraction of post-hoc assignments + normalized
        medoid displacement since the last clustering) triggers an
        automatic full re-cluster past :attr:`drift_threshold` —
        partial maintenance when cheap, principled rebuild when not.
        """
        del added, updated, removed  # state derives from the store + value maps
        stacked, owner = self.embeddings.stacked()
        self._stacked = stacked.astype(np.float64)
        self._owner = owner
        rep_rows, row_to_unique, unique_values = self._unique_rows()
        current = set(unique_values)

        # Retired values drop their assignments.
        for value in list(self._cluster_of_value):
            if value not in current:
                del self._cluster_of_value[value]
                del self._reduced_of_value[value]
        if not self._cluster_of_value:
            # Nothing survived: there is no anchor clustering left to
            # maintain, so re-cluster from scratch.
            self._rebuild()
            return

        members: dict[int, list[str]] = defaultdict(list)
        for value, cid in self._cluster_of_value.items():
            members[cid].append(value)
        for cid in list(self._medoid_value):
            if cid not in members:  # cluster emptied out
                del self._medoid_value[cid]
                self._medoid_reduced_at_build.pop(cid, None)
        # A surviving cluster whose medoid value was retired needs a
        # stand-in before new values can route to it.
        for cid, value in list(self._medoid_value.items()):
            if value not in self._reduced_of_value:
                coords = np.stack([self._reduced_of_value[v] for v in members[cid]])
                self._medoid_value[cid] = members[cid][medoid_index(coords)]

        # Place values this index has never seen: landmark-project, then
        # nearest existing medoid (reduced space, same rule noise
        # absorption uses).
        uidx = {v: u for u, v in enumerate(unique_values)}
        new_values = [v for v in unique_values if v not in self._cluster_of_value]
        if new_values:
            live_cids = sorted(members)
            medoid_matrix = np.stack(
                [self._reduced_of_value[self._medoid_value[cid]] for cid in live_cids]
            )
            for value in new_values:
                reduced = self._reduce_query(self._stacked[rep_rows[uidx[value]]])
                nearest = int(
                    np.argmin(euclidean_distance(reduced[np.newaxis, :], medoid_matrix)[0])
                )
                cid = live_cids[nearest]
                self._cluster_of_value[value] = cid
                self._reduced_of_value[value] = reduced
                members[cid].append(value)
            self._drift_assigned += len(new_values)

        # Medoids follow their clusters; displacement from the
        # build-time position is the structural half of the drift stat.
        for cid, vals in members.items():
            coords = np.stack([self._reduced_of_value[v] for v in vals])
            self._medoid_value[cid] = vals[medoid_index(coords)]

        # Re-derive the query-path arrays over the new row numbering.
        labels_unique = np.asarray(
            [self._cluster_of_value[v] for v in unique_values], dtype=np.int64
        )
        self._rep_rows = rep_rows
        self._labels_unique = labels_unique
        self._labels = labels_unique[row_to_unique]
        self._unique_to_rows = self._index_unique_rows(row_to_unique, len(rep_rows))
        self._medoid_rows = {
            cid: int(rep_rows[uidx[value]]) for cid, value in self._medoid_value.items()
        }
        reduced_unique = np.stack([self._reduced_of_value[v] for v in unique_values])
        self._populate_database(reduced_unique[row_to_unique], self._labels)

        drift = self.drift
        self.metrics.gauge(f"{self.name}.drift").set(drift)
        if drift > self.drift_threshold:
            self._rebuild()

    def _rebuild(self) -> None:
        """Full re-cluster over the store's current state (no re-embed)."""
        self._build()
        self.metrics.counter(f"{self.name}.rebuilds").inc()

    @property
    def drift(self) -> float:
        """Clustering staleness absorbed since the last re-cluster.

        Sum of (a) the fraction of unique values assigned to a medoid
        post-hoc rather than by HDBSCAN, and (b) the mean displacement
        of cluster medoids from their build-time positions, in units of
        the build-time inter-medoid distance.
        """
        n_unique = len(self._cluster_of_value)
        if not n_unique:
            return 0.0
        fraction = self._drift_assigned / n_unique
        displacements = [
            float(
                np.linalg.norm(
                    self._reduced_of_value[self._medoid_value[cid]] - at_build
                )
            )
            for cid, at_build in self._medoid_reduced_at_build.items()
            if cid in self._medoid_value
        ]
        displacement = (
            sum(displacements) / (len(displacements) * self._medoid_scale)
            if displacements
            else 0.0
        )
        return fraction + displacement

    def _reduce(self, vectors: np.ndarray) -> np.ndarray:
        """PCA (optional) then UMAP, with the kNN graph precomputed."""
        working = vectors
        if self.pca_components and self.pca_components < vectors.shape[1]:
            self._pca = PCA(n_components=self.pca_components, seed=self.seed)
            working = self._pca.fit_transform(vectors)
        self._working = working
        n = working.shape[0]
        knn = build_knn_graph(working, min(self.umap_neighbors, n - 1))
        self._umap = UMAP(
            n_components=min(self.umap_components, working.shape[1]),
            n_neighbors=self.umap_neighbors,
            n_epochs=self.umap_epochs,
            precomputed_knn=knn,
            seed=self.seed,
        )
        return self._umap.fit_transform(working)

    def reduce_query(self, query_vector: np.ndarray) -> np.ndarray:
        """Project a query vector into the clustered (UMAP) space.

        Uses a landmark transform — the weighted average of the nearest
        landmarks' reduced coordinates, the same rule as UMAP's
        out-of-sample transform restricted to a fixed landmark set — so
        the cost is independent of corpus size.  Search itself routes
        and scores in the encoder's space; this projection exists for
        inspecting and visualizing queries against the cluster map.
        """
        assert self._landmark_working is not None and self._landmark_reduced is not None
        working = np.asarray(query_vector, dtype=np.float64)[np.newaxis, :]
        if self._pca is not None:
            working = self._pca.transform(working)
        dists = euclidean_distance(working, self._landmark_working)[0]
        k = min(self.umap_neighbors, dists.shape[0])
        nearest = np.argpartition(dists, k - 1)[:k]
        nd = dists[nearest]
        scale = max(float(nd.mean()), 1e-12)
        weights = np.exp(-nd / scale)
        weights /= weights.sum()
        return weights @ self._landmark_reduced[nearest]

    def _pick_landmarks(self, reduced: np.ndarray) -> None:
        """Medoids + random sample backing :meth:`reduce_query`."""
        n = reduced.shape[0]
        rng = np.random.default_rng(self.seed)
        rows = set(self._medoid_rows.values())
        extra = max(0, min(self.n_landmarks, n) - len(rows))
        if extra:
            rows.update(int(r) for r in rng.choice(n, size=extra, replace=False))
        rows_arr = np.asarray(sorted(rows), dtype=np.intp)
        self._landmark_working = self._working[rows_arr]
        self._landmark_reduced = reduced[rows_arr]

    def _cluster(self, reduced: np.ndarray) -> np.ndarray:
        # Scale granularity with corpus size: a fixed min_cluster_size
        # over a growing corpus yields ever more clusters, shrinking the
        # fraction a fixed routing budget can reach.
        scaled = max(self.min_cluster_size, reduced.shape[0] // 120)
        clusterer = HDBSCAN(
            min_cluster_size=min(scaled, max(2, reduced.shape[0] // 2)),
            min_samples=self.min_samples,
            cluster_selection_method=self.cluster_selection_method,
        )
        return clusterer.fit_predict(reduced)

    def _absorb_noise(self, reduced: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Attach noise points to their nearest cluster medoid.

        If HDBSCAN found no clusters at all (uniform data), everything
        becomes one cluster so the index stays usable.
        """
        labels = labels.copy()
        cluster_ids = sorted(set(labels.tolist()) - {-1})
        if not cluster_ids:
            labels[:] = 0
            self._n_noise = 0
            self._medoid_rows = {0: medoid_index(reduced)}
            return labels

        self._medoid_rows = {}
        for cid in cluster_ids:
            members = np.flatnonzero(labels == cid)
            self._medoid_rows[cid] = int(members[medoid_index(reduced[members])])

        noise = np.flatnonzero(labels == -1)
        self._n_noise = int(noise.size)
        if noise.size:
            medoid_matrix = reduced[[self._medoid_rows[c] for c in cluster_ids]]
            nearest = np.argmin(euclidean_distance(reduced[noise], medoid_matrix), axis=1)
            labels[noise] = np.asarray(cluster_ids, dtype=labels.dtype)[nearest]
        return labels

    def _populate_database(self, reduced: np.ndarray, labels: np.ndarray) -> None:
        """One collection per cluster + a medoid routing collection."""
        assert self._owner is not None
        assert self._stacked is not None
        db = VectorDatabase(metrics=self.metrics)
        dim = reduced.shape[1]
        # Medoids are stored in the ORIGINAL embedding space: the query
        # is "transformed into a vector using the same sentence
        # transformer, allowing for a direct comparison between the
        # query and the cluster medoids" (Sec 4.3) — the comparison is
        # in the encoder's space, and each medoid is a real data point
        # whose original vector is known.
        medoid_collection = db.create_collection(
            "medoids", dim=self._stacked.shape[1], metric=Metric.COSINE
        )
        relation_ids = self.embeddings.relation_ids()
        for cid, medoid_row in sorted(self._medoid_rows.items()):
            medoid_collection.upsert(
                [
                    Point(
                        id=int(cid),
                        vector=self._stacked[medoid_row],
                        payload={"cluster": int(cid), "size": int((labels == cid).sum())},
                    )
                ]
            )
            members = np.flatnonzero(labels == cid)
            cluster_collection = db.create_collection(
                f"cluster_{cid}", dim=dim, metric=Metric.EUCLIDEAN
            )
            cluster_collection.upsert(
                [
                    Point(
                        id=int(row),
                        vector=reduced[row],
                        payload={"relation": relation_ids[int(self._owner[row])]},
                    )
                    for row in members
                ]
            )
        self._db = db

    # -- introspection -------------------------------------------------------

    @property
    def database(self) -> VectorDatabase:
        if self._db is None:
            raise RuntimeError("ClusteredTargetedSearch not indexed yet")
        return self._db

    @property
    def n_clusters(self) -> int:
        """Number of clusters in the built index."""
        return len(self._medoid_rows)

    @property
    def n_noise_points(self) -> int:
        """How many points HDBSCAN marked as noise (then absorbed)."""
        return self._n_noise

    def cluster_sizes(self) -> dict[int, int]:
        """Members per cluster."""
        assert self._labels is not None
        ids, counts = np.unique(self._labels, return_counts=True)
        return {int(i): int(c) for i, c in zip(ids, counts)}

    # -- query ---------------------------------------------------------------

    def _reduce_query(self, q: np.ndarray) -> np.ndarray:
        """Landmark transform: weighted average of nearby landmarks'
        reduced coordinates (same rule as UMAP's out-of-sample
        transform, restricted to the landmark set for O(1) query cost
        in the corpus size)."""
        assert self._landmark_working is not None and self._landmark_reduced is not None
        working = q[np.newaxis, :]
        if self._pca is not None:
            working = self._pca.transform(working)
        dists = euclidean_distance(working, self._landmark_working)[0]
        k = min(self.umap_neighbors, dists.shape[0])
        nearest = np.argpartition(dists, k - 1)[:k]
        nd = dists[nearest]
        scale = max(float(nd.mean()), 1e-12)
        weights = np.exp(-nd / scale)
        weights /= weights.sum()
        return weights @ self._landmark_reduced[nearest]

    def _score_all(self, query: str) -> list[RelationMatch]:
        with self.metrics.timer(f"{self.name}.encode"):
            q = self.embeddings.encode_query(query)
        medoids = self.database.get_collection("medoids")
        with self.metrics.timer(f"{self.name}.route"):
            routed = medoids.search(q, k=self.top_clusters)
        with self.metrics.timer(f"{self.name}.scan"):
            return self._targeted_scan(q, routed)

    def _score_batch(self, queries: Sequence[str]) -> list[list[RelationMatch]]:
        """Batch the medoid-routing stage, then fan out per cluster.

        Routing is a single exact search of the query block against the
        medoid collection — one GEMM for the whole batch instead of one
        matrix-vector pass per query — after which each query's
        targeted in-cluster scan proceeds exactly as in sequential
        :meth:`_score_all`.
        """
        with self.metrics.timer(f"{self.name}.encode"):
            block = np.stack([self.embeddings.encode_query(q) for q in queries])
        medoids = self.database.get_collection("medoids")
        with self.metrics.timer(f"{self.name}.route"):
            routed_lists = medoids.search_batch(block, k=self.top_clusters)
        out: list[list[RelationMatch]] = []
        with self.metrics.timer(f"{self.name}.scan"):
            for q, routed in zip(block, routed_lists):
                out.append(self._targeted_scan(q, routed))
        return out

    def _targeted_scan(
        self, q: np.ndarray, routed: list[ScoredPoint]
    ) -> list[RelationMatch]:
        # Per routed cluster, keep the best ``per_cluster_candidates``
        # DISTINCT member values by cosine similarity to the query in
        # the encoder's space, then expand each kept value to every
        # relation that contains it.  Clusters are small (HDBSCAN
        # leaves), so exact scoring within a cluster is the "ANNS steps
        # inside the top-k clusters" of Algorithm 3 while remaining
        # targeted: values outside the routed clusters are never
        # touched.  Scoring in the original space (rather than at the
        # query's UMAP landmark position) matters for multi-keyword
        # queries, whose reduced image lies between clusters where
        # distances are meaningless.
        assert self._stacked is not None and self._labels_unique is not None
        candidate_rows: list[int] = []
        for cluster_hit in routed:
            members_u = np.flatnonzero(self._labels_unique == int(cluster_hit.id))
            if members_u.size == 0:
                continue
            member_sims = self._stacked[self._rep_rows[members_u]] @ q
            keep = min(self.per_cluster_candidates, members_u.shape[0])
            best = np.argpartition(-member_sims, keep - 1)[:keep]
            for u in members_u[best]:
                candidate_rows.extend(int(r) for r in self._unique_to_rows[int(u)])

        if not candidate_rows:
            return []

        assert self._owner is not None
        rows = np.asarray(sorted(set(candidate_rows)), dtype=np.intp)
        sims = self._stacked[rows] @ q
        relation_ids = self.embeddings.relation_ids()
        counts = np.concatenate([rel.counts for rel in self.embeddings.relations])

        per_relation: dict[str, list[float]] = defaultdict(list)
        for row, sim in zip(rows, sims):
            # Multiplicity-weighted, as in ExS: a value occurring k
            # times in the relation is k matched attributes.
            per_relation[relation_ids[int(self._owner[row])]].extend(
                [float(sim)] * int(counts[row])
            )
        m = self.evidence_size
        return [
            RelationMatch(
                relation_id=relation_id,
                score=sum(sorted(scores, reverse=True)[:m]) / m,
                details={
                    "n_hits": len(scores),
                    "clusters": [int(c.id) for c in routed],
                },
            )
            for relation_id, scores in per_relation.items()
        ]
