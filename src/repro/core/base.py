"""Shared interface of the three search methods."""

from __future__ import annotations

import abc
import time
import weakref
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.core.annotations import requires_lock
from repro.core.results import BatchResult, RelationMatch, SearchResult
from repro.core.semimg import FederationEmbeddings, RelationEmbedding
from repro.errors import ExecutionError, NotFittedError
from repro.exec import ExecutionBackend, resolve_backend
from repro.obs import MetricsRegistry
from repro.sanitize import sanitize_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.exec import ShardScanSpec

__all__ = ["SearchMethod", "even_chunks"]


def even_chunks(n_items: int, n_chunks: int) -> list[range]:
    """Split ``range(n_items)`` into up to ``n_chunks`` contiguous,
    near-equal ranges (empty ranges are dropped)."""
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    chunks: list[range] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        if size:
            chunks.append(range(start, start + size))
        start += size
    return chunks


class SearchMethod(abc.ABC):
    """A dataset-discovery algorithm over federation embeddings.

    Lifecycle: construct with hyper-parameters, :meth:`index` once over
    the federation's semantic representation, then :meth:`search` any
    number of queries — or :meth:`search_batch` to amortize encode and
    scan work over many queries at once.  ``search`` handles timing,
    thresholding and top-k truncation uniformly; subclasses implement
    :meth:`_score_all` returning per-relation scores and may override
    :meth:`_score_batch` with a genuinely batched kernel.

    Every method records into :attr:`metrics` — per-stage latency
    histograms (``<name>.encode`` / ``scan`` / ``route`` / ``rank``)
    and query counters.  The registry is replaceable so a
    :class:`~repro.core.engine.DiscoveryEngine` can share one across
    methods; set it before :meth:`index` so index-time structures (the
    vector database collections) report into the same registry.
    """

    #: Short name used in results and experiment tables.
    name: str = "base"

    def __init__(self) -> None:
        self._embeddings: FederationEmbeddings | None = None
        self.metrics = MetricsRegistry()
        #: Injected execution backend (an engine's); ``None`` means the
        #: method lazily creates one of its own on first parallel call.
        self._executor: ExecutionBackend | None = None
        self._owned_executor: ExecutionBackend | None = None
        #: When true, kernel boundaries guard operands for NaN/Inf and
        #: dtype mismatches (see :mod:`repro.sanitize`).  Defaults to
        #: the ``REPRO_SANITIZE`` environment switch; a
        #: :class:`~repro.core.engine.DiscoveryEngine` overrides it
        #: with its own ``sanitize`` setting.
        self.sanitize = sanitize_enabled()

    @property
    def embeddings(self) -> FederationEmbeddings:
        if self._embeddings is None:
            raise NotFittedError(f"{type(self).__name__} used before index()")
        return self._embeddings

    @property
    def is_indexed(self) -> bool:
        return self._embeddings is not None

    # -- execution ---------------------------------------------------------

    @property
    def executor(self) -> ExecutionBackend:
        """The execution backend running this method's parallel work."""
        return self._backend()

    @executor.setter
    def executor(self, backend: ExecutionBackend) -> None:
        """Inject a shared backend (a
        :class:`~repro.core.engine.DiscoveryEngine`'s); the injector
        owns its lifecycle, :meth:`close` here will not touch it."""
        self._executor = backend

    def _backend(self) -> ExecutionBackend:
        if self._executor is not None:
            return self._executor
        if self._owned_executor is None:
            owned = resolve_backend(None, metrics=self.metrics)
            # Standalone methods are rarely close()-d explicitly; tie
            # the pool's release to this method's garbage collection.
            weakref.finalize(self, owned.close)
            self._owned_executor = owned
        return self._owned_executor

    def close(self) -> None:
        """Release resources this method owns: a self-created backend
        and (in subclasses) index storage such as shared-memory
        buffers.  An injected backend is the injector's to close.
        Idempotent."""
        owned, self._owned_executor = self._owned_executor, None
        if owned is not None:
            owned.close()

    def index(self, embeddings: FederationEmbeddings) -> "SearchMethod":
        """Build this method's data structures over the federation."""
        self._embeddings = embeddings
        self._build()
        self.metrics.gauge(f"{self.name}.generation").set(embeddings.generation)
        return self

    @abc.abstractmethod
    def _build(self) -> None:
        """Method-specific index construction (may be a no-op)."""

    def index_bytes(self) -> int:
        """Resident bytes of this method's vector/code storage.

        Feeds the ``engine.index_bytes`` gauge so storage-dtype and
        compression wins are visible in ``metrics.snapshot()``; 0 when
        the method tracks no resident arrays (or is not yet built).
        """
        return 0

    # -- incremental lifecycle ---------------------------------------------

    @requires_lock("write")
    def apply_delta(
        self,
        added: Sequence[RelationEmbedding],
        updated: Sequence[RelationEmbedding],
        removed: Sequence[str],
    ) -> None:
        """Absorb one store delta into this method's index.

        Called after the shared :class:`FederationEmbeddings` store has
        been mutated: ``added``/``updated`` carry the new embeddings
        (already present in the store), ``removed`` the retired
        relation ids.  The contract, enforced by property tests, is
        that search results afterwards match a from-scratch
        :meth:`index` of the store's current state.  Subclasses
        override :meth:`_apply_delta` with cheaper-than-rebuild
        maintenance; the default rebuilds the method's structures from
        the store (which never re-embeds anything).
        """
        if self._embeddings is None:
            raise NotFittedError(f"{type(self).__name__} used before index()")
        with self.metrics.timer(f"{self.name}.delta_ms"):
            self._apply_delta(list(added), list(updated), list(removed))
        self.metrics.counter(f"{self.name}.deltas").inc()
        self.metrics.gauge(f"{self.name}.generation").set(self._embeddings.generation)

    def _apply_delta(
        self,
        added: list[RelationEmbedding],
        updated: list[RelationEmbedding],
        removed: list[str],
    ) -> None:
        """Method-specific delta maintenance; default is a full rebuild
        of the derived structures (no re-embedding)."""
        self._build()

    @abc.abstractmethod
    def _score_all(self, query: str) -> list[RelationMatch]:
        """Score candidate relations for a query (any order, unfiltered)."""

    def _finalize(self, matches: list[RelationMatch], k: int, h: float) -> list[RelationMatch]:
        """Threshold, sort and truncate raw scores (paper Sec 3)."""
        with self.metrics.timer(f"{self.name}.rank"):
            matches = [m for m in matches if m.score >= h]
            matches.sort(key=lambda m: (-m.score, m.relation_id))
            return matches[:k]

    def search(self, query: str, k: int = 10, h: float = 0.0) -> SearchResult:
        """Answer a keyword query.

        Parameters
        ----------
        query:
            Keyword query text.
        k:
            Maximum number of relations returned.
        h:
            Relatedness threshold: relations scoring below ``h`` are
            filtered out (paper Sec 3: related iff ``match(F, q) >= h``).
        """
        start = time.perf_counter()
        matches = self._finalize(self._score_all(query), k, h)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.metrics.counter(f"{self.name}.queries").inc()
        self.metrics.histogram(f"{self.name}.latency_ms").observe(elapsed_ms)
        return SearchResult(query=query, method=self.name, matches=matches, elapsed_ms=elapsed_ms)

    # -- batched serving ---------------------------------------------------

    def _score_batch(self, queries: Sequence[str]) -> list[list[RelationMatch]]:
        """Raw scores for many queries; the fallback loops
        :meth:`_score_all`, subclasses override with batched kernels."""
        return [self._score_all(query) for query in queries]

    def _score_batch_parallel(
        self, queries: Sequence[str], workers: int
    ) -> list[list[RelationMatch]]:
        """Backend-parallel scoring; the default chunks over *queries*.

        The kernels are NumPy-bound and release the GIL inside BLAS, so
        the default thread backend gives real parallelism without
        pickling indexes across processes.  ExhaustiveSearch overrides
        this to chunk over *relations* instead (its unit of work is the
        relation scan).
        """
        chunks = even_chunks(len(queries), workers)
        if len(chunks) < 2:
            return self._score_batch(queries)
        parts = self._backend().map(
            lambda c: self._score_batch([queries[i] for i in c]), chunks, cap=workers
        )
        out: list[list[RelationMatch]] = [[] for _ in range(len(queries))]
        for chunk, part in zip(chunks, parts):
            for i, matches in zip(chunk, part):
                out[i] = matches
        return out

    # -- resident shard scans ----------------------------------------------

    def scan_spec(self) -> "ShardScanSpec | None":
        """Picklable scan state for a process-backend worker, or
        ``None`` when this method has no resident-scan path (the
        sharded scatter-gather then falls back to ``backend.map`` over
        in-process per-shard scans)."""
        return None

    def matches_from_scores(self, scores: "np.ndarray") -> list[list[RelationMatch]]:
        """Turn a worker's raw ``(relations, queries)`` score matrix
        back into per-query matches; pairs with :meth:`scan_spec`."""
        raise ExecutionError(f"{type(self).__name__} has no resident scan path")

    def search_batch(
        self,
        queries: Iterable[str],
        k: int = 10,
        h: float = 0.0,
        workers: int = 1,
    ) -> BatchResult:
        """Answer many queries in one call, amortizing shared work.

        Results are element-wise equivalent to ``[search(q) for q in
        queries]`` — same rankings, same scores up to BLAS reduction
        order — but the batched kernels encode all queries up front and
        scan the federation with matrix-matrix instead of matrix-vector
        products.  ``workers > 1`` additionally spreads the scan over a
        thread pool.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        queries = list(queries)
        # Count the batch before the empty-list early return so the
        # method-level counter agrees with the engine-level one, which
        # counts every search_batch call it forwards.
        self.metrics.counter(f"{self.name}.batches").inc()
        self.metrics.counter(f"{self.name}.queries").inc(len(queries))
        if not queries:
            return BatchResult([], elapsed_ms=0.0)
        start = time.perf_counter()
        if workers > 1:
            scored = self._score_batch_parallel(queries, workers)
        else:
            scored = self._score_batch(queries)
        per_query = [self._finalize(matches, k, h) for matches in scored]
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        amortized_ms = elapsed_ms / len(queries)
        self.metrics.histogram(f"{self.name}.batch_ms").observe(elapsed_ms)
        latency = self.metrics.histogram(f"{self.name}.latency_ms")
        for _ in queries:
            latency.observe(amortized_ms)
        return BatchResult(
            [
                SearchResult(
                    query=query,
                    method=self.name,
                    matches=matches,
                    elapsed_ms=amortized_ms,
                )
                for query, matches in zip(queries, per_query)
            ],
            elapsed_ms=elapsed_ms,
        )
