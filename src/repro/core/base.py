"""Shared interface of the three search methods."""

from __future__ import annotations

import abc
import time

from repro.core.results import RelationMatch, SearchResult
from repro.core.semimg import FederationEmbeddings
from repro.errors import NotFittedError

__all__ = ["SearchMethod"]


class SearchMethod(abc.ABC):
    """A dataset-discovery algorithm over federation embeddings.

    Lifecycle: construct with hyper-parameters, :meth:`index` once over
    the federation's semantic representation, then :meth:`search` any
    number of queries.  ``search`` handles timing, thresholding and
    top-k truncation uniformly; subclasses implement :meth:`_score_all`
    returning per-relation scores.
    """

    #: Short name used in results and experiment tables.
    name: str = "base"

    def __init__(self) -> None:
        self._embeddings: FederationEmbeddings | None = None

    @property
    def embeddings(self) -> FederationEmbeddings:
        if self._embeddings is None:
            raise NotFittedError(f"{type(self).__name__} used before index()")
        return self._embeddings

    @property
    def is_indexed(self) -> bool:
        return self._embeddings is not None

    def index(self, embeddings: FederationEmbeddings) -> "SearchMethod":
        """Build this method's data structures over the federation."""
        self._embeddings = embeddings
        self._build()
        return self

    @abc.abstractmethod
    def _build(self) -> None:
        """Method-specific index construction (may be a no-op)."""

    @abc.abstractmethod
    def _score_all(self, query: str) -> list[RelationMatch]:
        """Score candidate relations for a query (any order, unfiltered)."""

    def search(self, query: str, k: int = 10, h: float = 0.0) -> SearchResult:
        """Answer a keyword query.

        Parameters
        ----------
        query:
            Keyword query text.
        k:
            Maximum number of relations returned.
        h:
            Relatedness threshold: relations scoring below ``h`` are
            filtered out (paper Sec 3: related iff ``match(F, q) >= h``).
        """
        start = time.perf_counter()
        matches = self._score_all(query)
        matches = [m for m in matches if m.score >= h]
        matches.sort(key=lambda m: (-m.score, m.relation_id))
        matches = matches[:k]
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return SearchResult(query=query, method=self.name, matches=matches, elapsed_ms=elapsed_ms)
