"""Medoid computation for clusters.

HDBSCAN yields no cluster centres; the paper computes each cluster's
medoid — the member point minimizing total distance to the other
members — and uses it as the cluster's representative in the vector
database (Sec 4.3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.linalg.distances import euclidean_distance

__all__ = ["medoid_index", "cluster_medoids"]


def medoid_index(points: np.ndarray) -> int:
    """Index of the medoid of ``points`` (row minimizing summed distance).

    Computed blockwise so large clusters don't materialize a full
    n-squared matrix at once.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ConfigurationError("medoid_index expects a non-empty 2-D array")
    n = points.shape[0]
    totals = np.zeros(n)
    block = max(1, min(n, 2_000_000 // max(n, 1)))
    for start in range(0, n, block):
        stop = min(start + block, n)
        totals[start:stop] = euclidean_distance(points[start:stop], points).sum(axis=1)
    return int(np.argmin(totals))


def cluster_medoids(
    points: np.ndarray, labels: np.ndarray, include_noise: bool = False
) -> dict[int, int]:
    """Per-cluster medoid row ids.

    Parameters
    ----------
    points:
        ``(n, dim)`` data the labels refer to.
    labels:
        Cluster labels; ``-1`` marks noise.
    include_noise:
        Also compute a medoid for the noise "cluster" (useful when CTS
        must still be able to route queries near outliers).

    Returns
    -------
    Mapping of cluster label to the *global* row index of its medoid.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if labels.shape[0] != points.shape[0]:
        raise ConfigurationError("labels and points must align")
    medoids: dict[int, int] = {}
    for label in np.unique(labels):
        if label == -1 and not include_noise:
            continue
        member_ids = np.flatnonzero(labels == label)
        local = medoid_index(points[member_ids])
        medoids[int(label)] = int(member_ids[local])
    return medoids
