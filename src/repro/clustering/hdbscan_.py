"""HDBSCAN: hierarchical density-based clustering (Campello et al., 2013).

Pipeline (matching the reference ``hdbscan`` package the paper cites):

1. core distances at ``min_samples``;
2. MST of the mutual-reachability graph;
3. single-linkage dendrogram;
4. condensed tree at ``min_cluster_size``;
5. cluster selection by Excess-of-Mass (default) or leaf method;
6. labels (noise = -1), membership probabilities and per-cluster
   stabilities.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.hierarchy import (
    CondensedTree,
    SingleLinkageTree,
    compute_stability,
    condense_tree,
)
from repro.clustering.medoids import cluster_medoids
from repro.clustering.mst import mutual_reachability_mst
from repro.errors import ConfigurationError, NotFittedError

__all__ = ["HDBSCAN"]


class HDBSCAN:
    """Density-based clustering with noise.

    Parameters
    ----------
    min_cluster_size:
        Smallest group treated as a cluster.
    min_samples:
        Neighbourhood size for core distances; defaults to
        ``min_cluster_size`` as in the reference implementation.
    cluster_selection_method:
        ``"eom"`` (Excess of Mass, default) or ``"leaf"``.

    Attributes
    ----------
    labels_:
        Cluster labels per point; ``-1`` is noise.
    probabilities_:
        Strength of each point's membership in its cluster, in [0, 1].
    cluster_stabilities_:
        Stability score per selected cluster label.
    condensed_tree_:
        The condensed tree, for inspection.
    """

    def __init__(
        self,
        min_cluster_size: int = 5,
        min_samples: int | None = None,
        cluster_selection_method: str = "eom",
    ) -> None:
        if min_cluster_size < 2:
            raise ConfigurationError("min_cluster_size must be >= 2")
        if cluster_selection_method not in ("eom", "leaf"):
            raise ConfigurationError("cluster_selection_method must be 'eom' or 'leaf'")
        self.min_cluster_size = min_cluster_size
        self.min_samples = min_samples if min_samples is not None else min_cluster_size
        self.cluster_selection_method = cluster_selection_method
        self.labels_: np.ndarray | None = None
        self.probabilities_: np.ndarray | None = None
        self.cluster_stabilities_: dict[int, float] | None = None
        self.condensed_tree_: CondensedTree | None = None

    # -- fitting ---------------------------------------------------------

    def fit(self, points: np.ndarray) -> "HDBSCAN":
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ConfigurationError("HDBSCAN expects a 2-D (n, dim) array")
        n = points.shape[0]
        if n < self.min_cluster_size:
            # Degenerate corpus: everything is noise.
            self.labels_ = np.full(n, -1, dtype=np.intp)
            self.probabilities_ = np.zeros(n)
            self.cluster_stabilities_ = {}
            self.condensed_tree_ = None
            return self

        edges, weights = mutual_reachability_mst(points, self.min_samples)
        slt = SingleLinkageTree.from_mst(edges, weights)
        tree = condense_tree(slt, self.min_cluster_size)
        stability = compute_stability(tree)

        if self.cluster_selection_method == "leaf":
            selected = set(tree.leaves())
        else:
            selected = self._select_eom(tree, stability)

        self.condensed_tree_ = tree
        self.labels_, self.probabilities_ = self._label(tree, selected)
        self.cluster_stabilities_ = {}
        relabel = self._relabel_map(tree, selected)
        for cluster in selected:
            self.cluster_stabilities_[relabel[cluster]] = stability[cluster]
        return self

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        self.fit(points)
        assert self.labels_ is not None
        return self.labels_

    # -- selection ---------------------------------------------------------

    @staticmethod
    def _select_eom(tree: CondensedTree, stability: dict[int, float]) -> set[int]:
        """Excess-of-Mass: keep a cluster iff it is more stable than the
        sum of its descendants' selected stabilities."""
        children_map: dict[int, list[int]] = {c: [] for c in stability}
        for p, c in zip(tree.parent, tree.child):
            if c >= tree.n_points:
                children_map[int(p)].append(int(c))

        root = int(tree.parent.min())
        selected: set[int] = set()
        subtree_stability: dict[int, float] = {}

        # Process bottom-up: order clusters by decreasing id is not
        # guaranteed topological, so do an explicit post-order walk.
        post_order: list[int] = []
        stack = [root]
        seen: set[int] = set()
        while stack:
            node = stack[-1]
            unvisited = [c for c in children_map.get(node, ()) if c not in seen]
            if unvisited:
                stack.extend(unvisited)
            else:
                post_order.append(node)
                seen.add(node)
                stack.pop()

        for node in post_order:
            kids = children_map.get(node, [])
            child_total = sum(subtree_stability[c] for c in kids)
            own = stability.get(node, 0.0)
            if node == root:
                # The root is "all data" and is never selectable
                # (allow_single_cluster=False in reference terms).
                subtree_stability[node] = child_total
            elif not kids or own >= child_total:
                subtree_stability[node] = own
                # Selecting this node supersedes any selected descendants.
                for descendant in HDBSCAN._descendants(children_map, node):
                    selected.discard(descendant)
                selected.add(node)
            else:
                subtree_stability[node] = child_total
        # The root is never selected (it is "all data"); if nothing was
        # selected (e.g. single uniform blob) fall back to leaves.
        if not selected:
            selected = set(tree.leaves())
            selected.discard(root)
        return selected

    @staticmethod
    def _descendants(children_map: dict[int, list[int]], node: int) -> list[int]:
        out: list[int] = []
        stack = [node]
        while stack:
            x = stack.pop()
            out.append(x)
            stack.extend(children_map.get(x, ()))
        return out

    # -- labelling -----------------------------------------------------------

    @staticmethod
    def _relabel_map(tree: CondensedTree, selected: set[int]) -> dict[int, int]:
        return {cluster: i for i, cluster in enumerate(sorted(selected))}

    def _label(
        self, tree: CondensedTree, selected: set[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        n = tree.n_points
        labels = np.full(n, -1, dtype=np.intp)
        probabilities = np.zeros(n)
        relabel = self._relabel_map(tree, selected)

        finite = tree.lambda_val[np.isfinite(tree.lambda_val)]
        clamp = float(finite.max()) if finite.size else 1.0

        for cluster in selected:
            label = relabel[cluster]
            members = tree.points_of(cluster)
            labels[members] = label
            # Membership strength: the point's exit lambda relative to
            # the cluster's maximum exit lambda.
            lambdas = np.zeros(members.shape[0])
            member_pos = {int(m): i for i, m in enumerate(members)}
            stack = [cluster]
            while stack:
                node = stack.pop()
                mask = tree.parent == node
                for c, lam in zip(tree.child[mask], tree.lambda_val[mask]):
                    if c < n:
                        lambdas[member_pos[int(c)]] = min(float(lam), clamp)
                    else:
                        stack.append(int(c))
            max_lambda = lambdas.max() if lambdas.size else 0.0
            if max_lambda > 0:
                probabilities[members] = lambdas / max_lambda
            else:
                probabilities[members] = 1.0
        return labels, probabilities

    # -- conveniences -----------------------------------------------------------

    @property
    def n_clusters_(self) -> int:
        """Number of clusters found (noise excluded)."""
        if self.labels_ is None:
            raise NotFittedError("HDBSCAN not fitted")
        unique = set(self.labels_.tolist())
        unique.discard(-1)
        return len(unique)

    def medoids(self, points: np.ndarray) -> dict[int, int]:
        """Medoid row index per cluster (on the given points)."""
        if self.labels_ is None:
            raise NotFittedError("HDBSCAN not fitted")
        return cluster_medoids(points, self.labels_)
