"""Single-linkage dendrogram and the HDBSCAN condensed tree.

From sorted MST edges a union-find pass builds the single-linkage
dendrogram (same row format as ``scipy.cluster.hierarchy.linkage``).
The dendrogram is then *condensed*: walking from the root down, a split
whose side is smaller than ``min_cluster_size`` is not a new cluster —
its points simply "fall out" of the parent at that density.  The
condensed tree plus per-cluster stabilities drive cluster selection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SingleLinkageTree", "CondensedTree", "condense_tree", "compute_stability"]


@dataclass(frozen=True)
class SingleLinkageTree:
    """Dendrogram rows: (left, right, distance, size), scipy-compatible.

    Leaves are ``0..n-1``; internal node ``i`` (0-based row index) has
    id ``n + i``.
    """

    merges: np.ndarray  # (n-1, 4) float64
    n_points: int

    @classmethod
    def from_mst(cls, edges: np.ndarray, weights: np.ndarray) -> "SingleLinkageTree":
        """Union-find construction from MST edges (any order)."""
        n = edges.shape[0] + 1
        order = np.argsort(weights, kind="stable")
        parent = np.arange(2 * n - 1, dtype=np.intp)
        size = np.ones(2 * n - 1, dtype=np.intp)
        merges = np.empty((n - 1, 4), dtype=np.float64)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:  # path compression
                parent[x], x = root, parent[x]
            return root

        next_node = n
        for row, e in enumerate(order):
            u, v = edges[e]
            w = weights[e]
            ru, rv = find(int(u)), find(int(v))
            if ru == rv:
                raise ConfigurationError("MST edges contain a cycle")
            merges[row] = (ru, rv, w, size[ru] + size[rv])
            parent[ru] = parent[rv] = next_node
            size[next_node] = size[ru] + size[rv]
            next_node += 1
        return cls(merges=merges, n_points=n)


@dataclass
class CondensedTree:
    """Flat condensed-tree records.

    Each record links ``parent`` (a condensed cluster id, root = n) to
    ``child`` (a point id < n, or another condensed cluster id), at
    density ``lambda_val`` (= 1 / merge distance) with ``child_size``
    points.
    """

    parent: np.ndarray
    child: np.ndarray
    lambda_val: np.ndarray
    child_size: np.ndarray
    n_points: int

    def cluster_ids(self) -> np.ndarray:
        """Condensed cluster ids (>= n_points), sorted."""
        return np.unique(self.parent)

    def leaves(self) -> list[int]:
        """Clusters with no child clusters (every cluster occurs as a parent)."""
        all_clusters = set(self.parent.tolist())
        non_leaf = {
            int(p) for p, c in zip(self.parent, self.child) if c >= self.n_points
        }
        return sorted(int(c) for c in all_clusters if c not in non_leaf)

    def points_of(self, cluster: int) -> np.ndarray:
        """All point ids that ever belonged to ``cluster`` or its descendants."""
        result: list[int] = []
        stack = [cluster]
        while stack:
            node = stack.pop()
            mask = self.parent == node
            for c in self.child[mask]:
                if c < self.n_points:
                    result.append(int(c))
                else:
                    stack.append(int(c))
        return np.array(sorted(result), dtype=np.intp)


def condense_tree(slt: SingleLinkageTree, min_cluster_size: int = 5) -> CondensedTree:
    """Condense a single-linkage dendrogram.

    Implements the standard HDBSCAN condensation (Campello et al.):
    breadth-first from the root, relabelling "true" clusters (both
    split sides >= ``min_cluster_size``) and spilling undersized sides'
    points into their parent at the split's lambda.
    """
    if min_cluster_size < 2:
        raise ConfigurationError("min_cluster_size must be >= 2")
    n = slt.n_points
    root = 2 * n - 2
    merges = slt.merges

    def children_of(node: int) -> tuple[int, int, float]:
        row = merges[node - n]
        return int(row[0]), int(row[1]), float(row[2])

    def node_size(node: int) -> int:
        return 1 if node < n else int(merges[node - n][3])

    def collect_points(node: int) -> list[int]:
        points: list[int] = []
        stack = [node]
        while stack:
            x = stack.pop()
            if x < n:
                points.append(x)
            else:
                left, right, _ = children_of(x)
                stack.extend((left, right))
        return points

    parents: list[int] = []
    children: list[int] = []
    lambdas: list[float] = []
    sizes: list[int] = []

    relabel = {root: n}
    next_label = n + 1
    stack = [root]
    while stack:
        node = stack.pop()
        label = relabel[node]
        left, right, dist = children_of(node)
        lam = 1.0 / dist if dist > 0.0 else np.inf
        left_size, right_size = node_size(left), node_size(right)

        left_big = left_size >= min_cluster_size
        right_big = right_size >= min_cluster_size

        if left_big and right_big:
            # True split: both sides become new condensed clusters.
            for side, size in ((left, left_size), (right, right_size)):
                relabel[side] = next_label
                parents.append(label)
                children.append(next_label)
                lambdas.append(lam)
                sizes.append(size)
                next_label += 1
                if side >= n:
                    stack.append(side)
                else:
                    # A single point can't be a cluster of size >= 2;
                    # unreachable because min_cluster_size >= 2.
                    raise AssertionError("point promoted to cluster")
        else:
            # Spilled sides: their points fall out of `label` at `lam`.
            for side, big in ((left, left_big), (right, right_big)):
                if big:
                    # Same cluster continues down this side.
                    relabel[side] = label
                    if side >= n:
                        stack.append(side)
                    else:
                        parents.append(label)
                        children.append(side)
                        lambdas.append(lam)
                        sizes.append(1)
                else:
                    for point in collect_points(side):
                        parents.append(label)
                        children.append(point)
                        lambdas.append(lam)
                        sizes.append(1)

    return CondensedTree(
        parent=np.array(parents, dtype=np.intp),
        child=np.array(children, dtype=np.intp),
        lambda_val=np.array(lambdas, dtype=np.float64),
        child_size=np.array(sizes, dtype=np.intp),
        n_points=n,
    )


def compute_stability(tree: CondensedTree) -> dict[int, float]:
    """Stability of each condensed cluster.

    ``S(C) = sum over members p of (lambda_p - lambda_birth(C))``,
    where ``lambda_p`` is the density at which ``p`` leaves ``C`` (or
    ``C`` splits) and ``lambda_birth`` the density at which ``C``
    appeared.  Infinite lambdas (zero-distance merges) are clamped to
    the largest finite lambda so duplicates don't produce NaNs.
    """
    finite = tree.lambda_val[np.isfinite(tree.lambda_val)]
    clamp = float(finite.max()) if finite.size else 1.0
    lambdas = np.minimum(tree.lambda_val, clamp)

    births: dict[int, float] = {}
    for p, c, lam in zip(tree.parent, tree.child, lambdas):
        if c >= tree.n_points:
            births[int(c)] = float(lam)
    root = int(tree.parent.min())
    births[root] = 0.0

    stability: dict[int, float] = {int(c): 0.0 for c in tree.cluster_ids()}
    for p, lam, size in zip(tree.parent, lambdas, tree.child_size):
        stability[int(p)] += (float(lam) - births[int(p)]) * int(size)
    return stability
