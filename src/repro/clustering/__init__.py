"""Clustering substrate: from-scratch HDBSCAN and medoid utilities.

The CTS method (paper Sec 4.3) clusters UMAP-reduced value embeddings
with HDBSCAN and represents each cluster by its medoid ("while HDBSCAN
does not automatically provide cluster centers, we address this
limitation by manually computing the clusters medoids").
"""

from repro.clustering.hdbscan_ import HDBSCAN
from repro.clustering.hierarchy import CondensedTree, SingleLinkageTree, condense_tree
from repro.clustering.medoids import cluster_medoids, medoid_index
from repro.clustering.mst import mutual_reachability_mst

__all__ = [
    "HDBSCAN",
    "CondensedTree",
    "SingleLinkageTree",
    "cluster_medoids",
    "condense_tree",
    "medoid_index",
    "mutual_reachability_mst",
]
