"""Minimum spanning tree over the mutual-reachability graph.

HDBSCAN's first step: define the mutual reachability distance

    mr(a, b) = max(core_k(a), core_k(b), d(a, b))

where ``core_k(x)`` is the distance from ``x`` to its k-th nearest
neighbour, then build the MST of the complete graph under ``mr``.
Prim's algorithm with on-the-fly distance rows keeps memory at O(n)
instead of materializing the O(n^2) distance matrix.
"""

from __future__ import annotations

import numpy as np

from repro.dimred.knn_graph import build_knn_graph
from repro.errors import ConfigurationError

__all__ = ["core_distances", "mutual_reachability_mst"]


def core_distances(points: np.ndarray, min_samples: int) -> np.ndarray:
    """Distance from each point to its ``min_samples``-th neighbour."""
    if min_samples < 1:
        raise ConfigurationError("min_samples must be >= 1")
    knn = build_knn_graph(points, min(min_samples, points.shape[0] - 1))
    return knn.distances[:, -1].copy()


def mutual_reachability_mst(
    points: np.ndarray, min_samples: int = 5
) -> tuple[np.ndarray, np.ndarray]:
    """MST edges of the mutual-reachability graph.

    Returns
    -------
    edges:
        ``(n - 1, 2)`` integer array of (u, v) pairs.
    weights:
        ``(n - 1,)`` mutual-reachability weights of those edges.

    Notes
    -----
    Prim's algorithm: grow the tree one vertex at a time, keeping for
    every outside vertex the cheapest edge into the tree.  Each step
    computes a single distance row (new tree vertex to all vertices),
    so time is O(n^2 · dim / vector-width) and memory O(n).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ConfigurationError("points must be 2-D")
    n = points.shape[0]
    if n < 2:
        raise ConfigurationError("need at least 2 points for an MST")

    core = core_distances(points, min_samples)

    in_tree = np.zeros(n, dtype=bool)
    best_dist = np.full(n, np.inf)
    best_from = np.zeros(n, dtype=np.intp)

    edges = np.empty((n - 1, 2), dtype=np.intp)
    weights = np.empty(n - 1, dtype=np.float64)

    current = 0
    in_tree[0] = True
    for step in range(n - 1):
        # Mutual reachability from the newly added vertex to all others.
        row = np.linalg.norm(points - points[current], axis=1)
        np.maximum(row, core, out=row)
        np.maximum(row, core[current], out=row)
        improved = row < best_dist
        improved &= ~in_tree
        best_dist[improved] = row[improved]
        best_from[improved] = current

        masked = np.where(in_tree, np.inf, best_dist)
        nxt = int(np.argmin(masked))
        edges[step] = (best_from[nxt], nxt)
        weights[step] = best_dist[nxt]
        in_tree[nxt] = True
        current = nxt

    return edges, weights
