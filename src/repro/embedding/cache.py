"""Memoizing wrapper around any sentence encoder.

Table corpora repeat cell values heavily ("2021-01-01", country names,
category labels...), so caching whole-text embeddings is a large win
when vectorizing a federation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.embedding.base import SentenceEncoder
from repro.obs import MetricsRegistry

__all__ = ["CachingEncoder"]


class CachingEncoder(SentenceEncoder):
    """LRU cache in front of a delegate encoder.

    Parameters
    ----------
    delegate:
        The encoder doing the actual work.
    max_size:
        Maximum number of cached texts; least-recently-used entries are
        evicted beyond that.
    metrics:
        Registry receiving the ``encoder_cache.*`` counters, so this
        layer is observable side by side with the query-result cache.
        The engine injects its own registry when it builds the default
        encoder; a standalone encoder records into a private one.
    """

    def __init__(
        self,
        delegate: SentenceEncoder,
        max_size: int = 200_000,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.delegate = delegate
        self.max_size = max_size
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._cache: OrderedDict[str, np.ndarray] = OrderedDict()
        # Batched search paths may encode from pool threads; the LRU's
        # get/move_to_end/evict sequence must not interleave.
        self._cache_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def dim(self) -> int:
        return self.delegate.dim

    def encode(self, texts: Sequence[str]) -> np.ndarray:
        out = np.empty((len(texts), self.dim), dtype=np.float64)
        missing_positions: list[int] = []
        missing_texts: list[str] = []
        n_hits = 0
        with self._cache_lock:
            for i, text in enumerate(texts):
                cached = self._cache.get(text)
                if cached is not None:
                    self._cache.move_to_end(text)
                    out[i] = cached
                    n_hits += 1
                else:
                    missing_positions.append(i)
                    missing_texts.append(text)
            self.hits += n_hits
            self.misses += len(missing_texts)
        if n_hits:
            self.metrics.counter("encoder_cache.hits").inc(n_hits)
        if missing_texts:
            self.metrics.counter("encoder_cache.misses").inc(len(missing_texts))
            fresh = self.delegate.encode(missing_texts)
            n_evicted = 0
            with self._cache_lock:
                for pos, text, vec in zip(missing_positions, missing_texts, fresh):
                    out[pos] = vec
                    self._cache[text] = vec
                    if len(self._cache) > self.max_size:
                        self._cache.popitem(last=False)
                        n_evicted += 1
                self.evictions += n_evicted
            if n_evicted:
                self.metrics.counter("encoder_cache.evictions").inc(n_evicted)
        return out

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/eviction/size counters for instrumentation."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._cache),
        }

    def clear(self) -> None:
        """Empty the cache and reset counters."""
        with self._cache_lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
