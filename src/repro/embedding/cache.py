"""Memoizing wrapper around any sentence encoder.

Table corpora repeat cell values heavily ("2021-01-01", country names,
category labels...), so caching whole-text embeddings is a large win
when vectorizing a federation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.embedding.base import SentenceEncoder

__all__ = ["CachingEncoder"]


class CachingEncoder(SentenceEncoder):
    """LRU cache in front of a delegate encoder.

    Parameters
    ----------
    delegate:
        The encoder doing the actual work.
    max_size:
        Maximum number of cached texts; least-recently-used entries are
        evicted beyond that.
    """

    def __init__(self, delegate: SentenceEncoder, max_size: int = 200_000) -> None:
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.delegate = delegate
        self.max_size = max_size
        self._cache: OrderedDict[str, np.ndarray] = OrderedDict()
        # Batched search paths may encode from pool threads; the LRU's
        # get/move_to_end/evict sequence must not interleave.
        self._cache_lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @property
    def dim(self) -> int:
        return self.delegate.dim

    def encode(self, texts: Sequence[str]) -> np.ndarray:
        out = np.empty((len(texts), self.dim), dtype=np.float64)
        missing_positions: list[int] = []
        missing_texts: list[str] = []
        with self._cache_lock:
            for i, text in enumerate(texts):
                cached = self._cache.get(text)
                if cached is not None:
                    self._cache.move_to_end(text)
                    out[i] = cached
                    self.hits += 1
                else:
                    missing_positions.append(i)
                    missing_texts.append(text)
                    self.misses += 1
        if missing_texts:
            fresh = self.delegate.encode(missing_texts)
            with self._cache_lock:
                for pos, text, vec in zip(missing_positions, missing_texts, fresh):
                    out[pos] = vec
                    self._cache[text] = vec
                    if len(self._cache) > self.max_size:
                        self._cache.popitem(last=False)
        return out

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters for instrumentation."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self._cache)}

    def clear(self) -> None:
        """Empty the cache and reset counters."""
        with self._cache_lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0
