"""Encoder protocol and pooling helpers."""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from repro.linalg.distances import normalize_rows

__all__ = ["SentenceEncoder", "mean_pool"]


def mean_pool(vectors: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """Weighted mean of row vectors, L2-normalized.

    This mirrors S-BERT's mean pooling over token embeddings.  An empty
    input pools to the zero vector (callers treat it as "no content").
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.size == 0:
        raise ValueError("mean_pool of an empty stack is undefined; handle upstream")
    if weights is None:
        pooled = vectors.mean(axis=0)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        total = float(weights.sum())
        if total <= 0.0:
            pooled = vectors.mean(axis=0)
        else:
            pooled = (weights[:, np.newaxis] * vectors).sum(axis=0) / total
    return normalize_rows(pooled)


class SentenceEncoder(abc.ABC):
    """Maps strings to fixed-dimensional L2-normalized vectors.

    Subclasses implement :meth:`encode`; :meth:`encode_one` is a
    convenience for single strings.  Encoders must be deterministic:
    the same text always maps to the same vector.
    """

    @property
    @abc.abstractmethod
    def dim(self) -> int:
        """Output dimensionality of the encoder."""

    @abc.abstractmethod
    def encode(self, texts: Sequence[str]) -> np.ndarray:
        """Encode a batch of strings into an ``(len(texts), dim)`` array."""

    def encode_one(self, text: str) -> np.ndarray:
        """Encode a single string into a ``(dim,)`` vector."""
        return self.encode([text])[0]
