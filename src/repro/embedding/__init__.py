"""Embedding substrate: deterministic sentence encoders replacing S-BERT.

The paper embeds every attribute value (treated as a sentence) and every
query with S-BERT ``all-mpnet-base-v2`` (768-dim).  Offline, we provide
two interchangeable encoders behind the same protocol:

* :class:`SemanticHashEncoder` — deterministic random-projection
  embeddings over tokens, character n-grams and concept-lexicon
  expansions.  The lexicon supplies the "pretrained" distributional
  knowledge; no fitting required.
* :class:`CooccurrenceEncoder` — corpus-trained embeddings from a PPMI
  co-occurrence matrix factorized with truncated SVD; semantics are
  derived from the corpus itself.

Both produce L2-normalized vectors so cosine similarity is an inner
product, exactly as with S-BERT mean-pooled embeddings.
"""

from repro.embedding.base import SentenceEncoder, mean_pool
from repro.embedding.cache import CachingEncoder
from repro.embedding.cooccurrence import CooccurrenceEncoder
from repro.embedding.hashing import HashedFeatureSpace
from repro.embedding.semantic import SemanticHashEncoder

__all__ = [
    "CachingEncoder",
    "CooccurrenceEncoder",
    "HashedFeatureSpace",
    "SemanticHashEncoder",
    "SentenceEncoder",
    "mean_pool",
]
