"""The S-BERT substitute: deterministic semantic hash embeddings.

:class:`SemanticHashEncoder` maps a string to a 768-dimensional unit
vector (the dimensionality of ``all-mpnet-base-v2`` used in the paper)
by composing three nearly-orthogonal feature families:

* **token features** — exact surface forms share components;
* **character n-gram features** — morphological variants and typos are
  partially similar (fastText-style subwords);
* **concept features** — the concept lexicon expands each token (and
  matched multi-word phrases) into weighted concepts, so synonyms and
  hypernym-related terms share strong components.  This is the stand-in
  for the distributional knowledge a pretrained transformer carries.

Numeric tokens additionally emit a magnitude-bucket feature so that
numbers of similar scale (e.g. two nearby years) are more similar than
arbitrary numbers, reflecting the paper's observation that the encoder
must handle numeric cells in context (26.9% of WikiTables cells).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.embedding.base import SentenceEncoder, mean_pool
from repro.embedding.hashing import HashedFeatureSpace
from repro.errors import ConfigurationError
from repro.text.lexicon import ConceptLexicon, default_lexicon
from repro.text.tokenize import Tokenizer, char_ngrams, is_numeric_token
from repro.text.vocab import Vocabulary

__all__ = ["SemanticHashEncoder"]

#: Dimensionality of all-mpnet-base-v2, matched by default.
DEFAULT_DIM = 768


class SemanticHashEncoder(SentenceEncoder):
    """Deterministic, training-free semantic sentence encoder.

    Parameters
    ----------
    dim:
        Output dimensionality (default 768 to match the paper's model).
    lexicon:
        Concept lexicon supplying synonym/hypernym knowledge; defaults
        to the built-in world-knowledge lexicon.
    vocab:
        Optional corpus vocabulary; when given, tokens are pooled with
        IDF weights so common tokens contribute less.
    token_weight / chargram_weight / concept_weight / numeric_weight:
        Relative strengths of the feature families.  The defaults put
        concepts above surface forms, which is what makes two synonyms
        with no character overlap land at cosine ~0.7.
    max_phrase_len:
        Longest multi-word phrase probed against the lexicon.
    """

    def __init__(
        self,
        dim: int = DEFAULT_DIM,
        lexicon: ConceptLexicon | None = None,
        vocab: Vocabulary | None = None,
        token_weight: float = 1.0,
        chargram_weight: float = 0.4,
        concept_weight: float = 1.5,
        numeric_weight: float = 0.3,
        max_phrase_len: int = 3,
    ) -> None:
        if dim < 8:
            raise ConfigurationError("dim must be >= 8 for near-orthogonality to hold")
        if max_phrase_len < 1:
            raise ConfigurationError("max_phrase_len must be >= 1")
        self._dim = dim
        self.lexicon = lexicon if lexicon is not None else default_lexicon()
        self.vocab = vocab
        self.token_weight = token_weight
        self.chargram_weight = chargram_weight
        self.concept_weight = concept_weight
        self.numeric_weight = numeric_weight
        self.max_phrase_len = max_phrase_len
        self._tokenizer = Tokenizer()
        self._token_space = HashedFeatureSpace(dim, namespace="token")
        self._gram_space = HashedFeatureSpace(dim, namespace="chargram")
        self._concept_space = HashedFeatureSpace(dim, namespace="concept")
        self._numeric_space = HashedFeatureSpace(dim, namespace="numeric")
        # Tokens repeat massively across table cells; memoizing the
        # per-token unit vector dominates encoding throughput.
        self._token_vec_cache: dict[str, np.ndarray] = {}

    # -- SentenceEncoder API -------------------------------------------

    @property
    def dim(self) -> int:
        return self._dim

    def encode(self, texts: Sequence[str]) -> np.ndarray:
        """Encode a batch of strings into ``(len(texts), dim)`` unit rows."""
        out = np.zeros((len(texts), self._dim), dtype=np.float64)
        for i, text in enumerate(texts):
            out[i] = self._encode_text(text)
        return out

    # -- internals -----------------------------------------------------

    def _encode_text(self, text: str) -> np.ndarray:
        tokens = self._tokenizer.tokenize(text)
        if not tokens:
            return np.zeros(self._dim, dtype=np.float64)
        unit_vectors = [self._token_vector(token) for token in tokens]
        weights = None
        if self.vocab is not None:
            weights = np.array([self.vocab.idf(token) for token in tokens])
        phrase_vectors = self._phrase_vectors(tokens)
        if phrase_vectors:
            unit_vectors.extend(phrase_vectors)
            if weights is not None:
                # Phrases get the mean IDF weight so they neither dominate
                # nor vanish relative to their member tokens.
                mean_idf = float(weights.mean())
                weights = np.concatenate([weights, np.full(len(phrase_vectors), mean_idf)])
        return mean_pool(np.vstack(unit_vectors), weights)

    def _token_vector(self, token: str) -> np.ndarray:
        cached = self._token_vec_cache.get(token)
        if cached is not None:
            return cached
        vec = self.token_weight * self._token_space.vector(token)
        numeric = is_numeric_token(token)
        # Numeric literals skip character n-grams: "2020" and "2021"
        # must stay distinguishable (year facets), and digit n-grams
        # carry no morphology worth sharing.
        grams = char_ngrams(token) if not numeric else []
        if grams and self.chargram_weight > 0.0:
            per_gram = self.chargram_weight / math.sqrt(len(grams))
            for gram in grams:
                vec = vec + per_gram * self._gram_space.vector(gram)
        for concept, weight in self.lexicon.concepts_of(token).items():
            vec = vec + self.concept_weight * weight * self._concept_space.vector(concept)
        if numeric:
            vec = vec + self.numeric_weight * self._numeric_space.vector(
                self._magnitude_bucket(token)
            )
        norm = np.linalg.norm(vec)
        if norm > 0.0:
            vec = vec / norm
        self._token_vec_cache[token] = vec
        return vec

    def _phrase_vectors(self, tokens: list[str]) -> list[np.ndarray]:
        """Concept vectors for multi-word lexicon phrases found in the text."""
        vectors: list[np.ndarray] = []
        n = len(tokens)
        for length in range(2, self.max_phrase_len + 1):
            for start in range(n - length + 1):
                phrase = " ".join(tokens[start : start + length])
                concepts = self.lexicon.concepts_of(phrase)
                if not concepts:
                    continue
                vec = np.zeros(self._dim, dtype=np.float64)
                for concept, weight in concepts.items():
                    vec += weight * self._concept_space.vector(concept)
                norm = np.linalg.norm(vec)
                if norm > 0.0:
                    vectors.append(vec / norm)
        return vectors

    @staticmethod
    def _magnitude_bucket(token: str) -> str:
        """Bucket a numeric literal by order of magnitude."""
        try:
            value = float(token.replace(",", ""))
        except ValueError:
            return "nan"
        if value == 0.0:
            return "zero"
        return f"mag:{int(math.floor(math.log10(abs(value))))}"

    def clear_caches(self) -> None:
        """Drop all memoized token and feature vectors."""
        self._token_vec_cache.clear()
        for space in (self._token_space, self._gram_space, self._concept_space, self._numeric_space):
            space.clear_cache()
