"""Corpus-trained embeddings: PPMI co-occurrence + truncated SVD.

An alternative to the lexicon-driven :class:`SemanticHashEncoder` that
derives semantics from the corpus itself, the way distributional models
do: tokens that appear in similar contexts (within a sliding window)
receive similar vectors.  Factorizing the positive pointwise mutual
information (PPMI) matrix with truncated SVD is the classic
count-based counterpart of word2vec (Levy & Goldberg, 2014).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import svds

from repro.embedding.base import SentenceEncoder, mean_pool
from repro.embedding.hashing import HashedFeatureSpace
from repro.errors import ConfigurationError, NotFittedError
from repro.text.tokenize import Tokenizer
from repro.text.vocab import Vocabulary

__all__ = ["CooccurrenceEncoder"]


class CooccurrenceEncoder(SentenceEncoder):
    """PPMI + SVD word vectors with IDF-weighted mean pooling.

    Parameters
    ----------
    dim:
        Embedding dimensionality (bounded above by vocabulary size - 1).
    window:
        Sliding co-occurrence window radius (tokens to each side).
    min_term_freq:
        Tokens rarer than this are dropped from the trained vocabulary
        and fall back to hashed vectors at encode time.
    shift:
        PPMI shift (``log k`` in SGNS terms); larger values sparsify.
    seed:
        Seed for the SVD initialization vector.

    Out-of-vocabulary tokens at encode time are embedded with a hashed
    fallback space so unseen queries still produce usable vectors.
    """

    def __init__(
        self,
        dim: int = 256,
        window: int = 4,
        min_term_freq: int = 2,
        shift: float = 0.0,
        seed: int = 0,
    ) -> None:
        if dim < 2:
            raise ConfigurationError("dim must be >= 2")
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self._dim = dim
        self.window = window
        self.min_term_freq = min_term_freq
        self.shift = shift
        self.seed = seed
        self._tokenizer = Tokenizer()
        self._fallback = HashedFeatureSpace(dim, namespace="oov")
        self.vocab: Vocabulary | None = None
        self._vectors: np.ndarray | None = None

    # -- training -------------------------------------------------------

    def fit(self, documents: Iterable[str]) -> "CooccurrenceEncoder":
        """Train token vectors from an iterable of raw text documents."""
        token_docs = [self._tokenizer.tokenize(doc) for doc in documents]
        full_vocab = Vocabulary.from_documents(token_docs)
        self.vocab = full_vocab.prune(min_term_freq=self.min_term_freq)
        if len(self.vocab) < 3:
            raise ConfigurationError(
                "corpus too small to train co-occurrence embeddings "
                f"(vocabulary of {len(self.vocab)} tokens)"
            )
        counts = self._count_cooccurrences(token_docs)
        ppmi = self._ppmi(counts)
        k = min(self._dim, min(ppmi.shape) - 1)
        rng = np.random.default_rng(self.seed)
        v0 = rng.standard_normal(min(ppmi.shape))
        u, s, _ = svds(ppmi, k=k, v0=v0)
        # svds returns singular values ascending; flip to conventional order.
        order = np.argsort(s)[::-1]
        u, s = u[:, order], s[order]
        vectors = u * np.sqrt(s)[np.newaxis, :]
        if k < self._dim:
            vectors = np.pad(vectors, ((0, 0), (0, self._dim - k)))
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        self._vectors = vectors / np.where(norms > 0, norms, 1.0)
        return self

    def _count_cooccurrences(self, token_docs: list[list[str]]) -> sp.csr_matrix:
        assert self.vocab is not None
        pair_counts: Counter[tuple[int, int]] = Counter()
        for tokens in token_docs:
            ids = [self.vocab.id_of(t) for t in tokens]
            for i, center in enumerate(ids):
                if center is None:
                    continue
                lo = max(0, i - self.window)
                hi = min(len(ids), i + self.window + 1)
                for j in range(lo, hi):
                    context = ids[j]
                    if j == i or context is None:
                        continue
                    pair_counts[(center, context)] += 1
        n = len(self.vocab)
        if not pair_counts:
            return sp.csr_matrix((n, n))
        rows, cols, data = zip(*((r, c, v) for (r, c), v in pair_counts.items()))
        return sp.csr_matrix((data, (rows, cols)), shape=(n, n), dtype=np.float64)

    def _ppmi(self, counts: sp.csr_matrix) -> sp.csr_matrix:
        total = counts.sum()
        if total == 0:
            return counts
        row_sums = np.asarray(counts.sum(axis=1)).ravel()
        col_sums = np.asarray(counts.sum(axis=0)).ravel()
        coo = counts.tocoo()
        pmi = np.log(
            (coo.data * total)
            / (row_sums[coo.row] * col_sums[coo.col])
        ) - self.shift
        positive = pmi > 0
        return sp.csr_matrix(
            (pmi[positive], (coo.row[positive], coo.col[positive])),
            shape=counts.shape,
        )

    # -- SentenceEncoder API ---------------------------------------------

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._vectors is not None

    def encode(self, texts: Sequence[str]) -> np.ndarray:
        """Encode texts using trained vectors (hashed fallback for OOV)."""
        if self.vocab is None or self._vectors is None:
            raise NotFittedError("CooccurrenceEncoder.encode called before fit")
        out = np.zeros((len(texts), self._dim), dtype=np.float64)
        for i, text in enumerate(texts):
            tokens = self._tokenizer.tokenize(text)
            if not tokens:
                continue
            rows = np.vstack([self._token_vector(t) for t in tokens])
            weights = np.array([self.vocab.idf(t) for t in tokens])
            out[i] = mean_pool(rows, weights)
        return out

    def _token_vector(self, token: str) -> np.ndarray:
        assert self.vocab is not None and self._vectors is not None
        token_id = self.vocab.id_of(token)
        if token_id is None:
            return self._fallback.vector(token)
        return self._vectors[token_id]

    def token_similarity(self, a: str, b: str) -> float:
        """Cosine similarity of two individual tokens' trained vectors."""
        va, vb = self._token_vector(a), self._token_vector(b)
        denom = float(np.linalg.norm(va) * np.linalg.norm(vb))
        return float(va @ vb / denom) if denom > 0 else 0.0
