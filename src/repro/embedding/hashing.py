"""Deterministic hashed feature space.

Every string feature (a token, a character n-gram, a concept id) is
mapped to a fixed pseudo-random Gaussian vector derived from a
cryptographic hash of the feature string.  The mapping is stable across
processes and Python versions (no reliance on ``hash()``), so embeddings
are reproducible everywhere.  Feature vectors are memoized.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["HashedFeatureSpace"]


class HashedFeatureSpace:
    """Stable feature-string -> Gaussian-vector mapping with memoization.

    Parameters
    ----------
    dim:
        Dimensionality of feature vectors.
    namespace:
        Distinguishes independent feature spaces (e.g. token vs concept
        features) so the same string gets uncorrelated vectors in each.
    max_cache_size:
        Upper bound on memoized vectors; when exceeded the cache is
        cleared (feature vectors are cheap to regenerate).
    """

    def __init__(self, dim: int, namespace: str = "", max_cache_size: int = 500_000) -> None:
        if dim < 1:
            raise ConfigurationError("dim must be >= 1")
        self.dim = dim
        self.namespace = namespace
        self.max_cache_size = max_cache_size
        self._cache: dict[str, np.ndarray] = {}

    def vector(self, feature: str) -> np.ndarray:
        """Deterministic unit-norm pseudo-random vector for a feature.

        Vectors of distinct features are nearly orthogonal in high
        dimension, so weighted sums behave like coordinates in an
        approximately orthonormal feature basis.
        """
        cached = self._cache.get(feature)
        if cached is not None:
            return cached
        digest = hashlib.blake2b(
            f"{self.namespace}\x00{feature}".encode("utf-8"), digest_size=8
        ).digest()
        seed = int.from_bytes(digest, "little")
        vec = np.random.default_rng(seed).standard_normal(self.dim)
        vec /= np.linalg.norm(vec)
        if len(self._cache) >= self.max_cache_size:
            self._cache.clear()
        self._cache[feature] = vec
        return vec

    def weighted_sum(self, features: dict[str, float]) -> np.ndarray:
        """Sum of feature vectors scaled by their weights."""
        out = np.zeros(self.dim, dtype=np.float64)
        for feature, weight in features.items():
            if weight != 0.0:
                out += weight * self.vector(feature)
        return out

    def cache_size(self) -> int:
        """Number of memoized feature vectors."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all memoized vectors."""
        self._cache.clear()
