"""The declared metric-name vocabulary of the serving stack.

Every counter, gauge and stage timer the engine, the search methods,
the execution backends and the vector database record lives in one of
these families — ``engine.*``, ``<method>.<stage>``, ``serving.*``,
``cache.*``, ``encoder_cache.*``, ``exec.*``, ``storage.*`` and
``vectordb.*`` — and this module is the single place
those names are declared.  Two consumers keep the vocabulary honest:

* the RL002 lint rule (:mod:`repro.analysis`) checks every literal or
  f-string metric name passed to a :class:`~repro.obs.MetricsRegistry`
  call site against these specs, so a typo like ``exs.shardN.sacn``
  fails CI instead of silently forking a new time series;
* :func:`markdown_table` renders the README's metrics table, so the
  docs cannot drift from the code (a test regenerates and compares).

Spec names may contain ``{placeholders}``: ``{method}`` matches a
method name with an optional per-shard suffix (``exs``, ``cts``,
``exs.shard3``), ``{shard}`` a shard number and ``{collection}`` a
vector-database collection name.  F-string call sites are matched by
treating each interpolation as a wildcard that any placeholder accepts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

__all__ = ["MetricSpec", "VOCABULARY", "WILDCARD", "markdown_table", "matches"]

#: Sentinel the lint rule substitutes for f-string interpolations; any
#: declared placeholder accepts it, no literal segment does.
WILDCARD = "\x00"

#: What each ``{placeholder}`` may expand to at runtime.
_PLACEHOLDER_PATTERNS = {
    "method": r"[a-z0-9_]+(?:\.shard[0-9]+)?",
    "shard": r"[0-9]+",
    "collection": r"[A-Za-z0-9_.-]+",
    "tenant": r"[A-Za-z0-9_-]+",
    "backend": r"[a-z]+",
}

_PLACEHOLDER_RE = re.compile(r"\{([a-z]+)\}")


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric: name template, instrument kind, meaning."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    description: str

    def __post_init__(self) -> None:
        if self.kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {self.kind!r}")


VOCABULARY: tuple[MetricSpec, ...] = (
    # -- engine.* ---------------------------------------------------------
    MetricSpec("engine.queries", "counter", "Queries served through the engine."),
    MetricSpec("engine.batches", "counter", "`search_batch` calls served."),
    MetricSpec("engine.deltas", "counter", "Lifecycle deltas applied atomically."),
    MetricSpec("engine.relations_added", "counter", "Relations added across all deltas."),
    MetricSpec("engine.relations_updated", "counter", "Relations re-embedded across all deltas."),
    MetricSpec("engine.relations_removed", "counter", "Relations retired across all deltas."),
    MetricSpec("engine.generation", "gauge", "Store generation the engine last published."),
    MetricSpec("engine.index_bytes", "gauge", "Resident vector/code bytes across built method indexes."),
    MetricSpec("engine.shard_sizes.{shard}", "gauge", "Relations placed on each shard (placement skew)."),
    # -- <method>.<stage> -------------------------------------------------
    MetricSpec("{method}.encode", "histogram", "Query-encoding stage latency (ms)."),
    MetricSpec("{method}.scan", "histogram", "Similarity-scan stage latency (ms)."),
    MetricSpec("{method}.route", "histogram", "Cluster/medoid routing stage latency (ms, CTS)."),
    MetricSpec("{method}.rank", "histogram", "Threshold + sort + top-k stage latency (ms)."),
    MetricSpec("{method}.merge", "histogram", "Scatter-gather merge stage latency (ms, sharded)."),
    MetricSpec("{method}.latency_ms", "histogram", "End-to-end per-query latency (ms)."),
    MetricSpec("{method}.batch_ms", "histogram", "End-to-end whole-batch latency (ms)."),
    MetricSpec("{method}.delta_ms", "histogram", "Per-delta index maintenance latency (ms)."),
    MetricSpec("{method}.queries", "counter", "Queries answered by the method."),
    MetricSpec("{method}.batches", "counter", "Query batches answered by the method."),
    MetricSpec("{method}.deltas", "counter", "Store deltas absorbed by the method's index."),
    MetricSpec("{method}.generation", "gauge", "Store generation the method's index has applied."),
    MetricSpec("{method}.fused_rows", "counter", "Rows x queries pushed through the fused ExS kernel."),
    MetricSpec("{method}.drift", "gauge", "Clustering staleness absorbed since the last rebuild (CTS)."),
    MetricSpec("{method}.rebuilds", "counter", "Drift-triggered full re-clusterings (CTS)."),
    # -- serving.* --------------------------------------------------------
    MetricSpec("serving.submitted", "counter", "Requests admitted into the serving queue."),
    MetricSpec("serving.completed", "counter", "Requests answered with a result."),
    MetricSpec("serving.rejected", "counter", "Requests rejected at admission: queue full."),
    MetricSpec("serving.throttled", "counter", "Requests rejected by a tenant's token bucket."),
    MetricSpec("serving.shed", "counter", "Expired requests shed before reaching the engine."),
    MetricSpec("serving.batches", "counter", "Coalesced windows dispatched to the engine."),
    MetricSpec("serving.queue_depth", "gauge", "Admitted-but-unanswered requests (backpressure level)."),
    MetricSpec("serving.batch_fill", "histogram", "Live requests per dispatched window (coalescing efficiency)."),
    MetricSpec("serving.queue_ms", "histogram", "Submit-to-dispatch wait in the batching window (ms)."),
    MetricSpec("serving.dispatch_ms", "histogram", "Engine time per dispatched window (ms)."),
    MetricSpec("serving.e2e_ms", "histogram", "Submit-to-result end-to-end latency (ms)."),
    MetricSpec("serving.tenant.{tenant}.throttled", "counter", "Rate-limit rejections, per tenant."),
    MetricSpec("serving.cache_hits", "counter", "Requests answered from the semantic cache before taking a queue slot."),
    # -- cache.* ----------------------------------------------------------
    MetricSpec("cache.hits", "counter", "Exact-text query-result cache hits."),
    MetricSpec("cache.near_hits", "counter", "Near-duplicate query-result cache hits (cosine >= tau)."),
    MetricSpec("cache.misses", "counter", "Query-result cache lookups that found no current entry."),
    MetricSpec("cache.evictions", "counter", "Cache entries dropped: stale generation, LRU or byte pressure."),
    MetricSpec("cache.bytes", "gauge", "Estimated resident bytes of cached rankings + query vectors."),
    MetricSpec("cache.probe_ms", "histogram", "Near-duplicate probe latency: one GEMM per lookup (ms)."),
    MetricSpec("encoder_cache.hits", "counter", "Texts served from the encoder's embedding cache."),
    MetricSpec("encoder_cache.misses", "counter", "Texts the encoder cache delegated for embedding."),
    MetricSpec("encoder_cache.evictions", "counter", "Embeddings evicted from the encoder cache (LRU)."),
    # -- exec.* -----------------------------------------------------------
    MetricSpec("exec.{backend}.tasks", "counter", "Tasks executed by the backend (submits + map lanes)."),
    MetricSpec("exec.{backend}.pool_size", "gauge", "Worker threads/processes the backend is sized to."),
    MetricSpec("exec.{backend}.queue_ms", "histogram", "Submit-to-start wait on the backend's pool (ms)."),
    MetricSpec("exec.{backend}.shard_scans", "counter", "Resident shard scans served by worker processes."),
    # -- storage.* --------------------------------------------------------
    MetricSpec("storage.commit_ms", "histogram", "Snapshot commit latency: payload fsyncs + atomic manifest swap (ms)."),
    MetricSpec("storage.load_ms", "histogram", "Per-payload snapshot read latency: digest-verified materialization or mmap setup (ms)."),
    MetricSpec("storage.mapped_bytes", "gauge", "Bytes currently served through memory-mapped segment files."),
    MetricSpec("storage.segments", "gauge", "Payload files (arrays + documents) in the most recently committed snapshot."),
    # -- vectordb.* -------------------------------------------------------
    MetricSpec("vectordb.searches", "counter", "Collection searches (one per query, batched or not)."),
    MetricSpec("vectordb.batches", "counter", "Batched collection searches."),
    MetricSpec("vectordb.points_scanned", "counter", "Points scored by exact scans."),
    MetricSpec("vectordb.index_probes", "counter", "ANN index probes."),
    MetricSpec("vectordb.scan", "histogram", "Collection scan latency (ms)."),
    MetricSpec("vectordb.{collection}.bytes", "gauge", "Resident bytes of one collection (vectors + norms + index)."),
)

#: Registry methods mapped to the instrument kind they create.
_CALL_KINDS = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "timer": "histogram",
}


@lru_cache(maxsize=None)
def _spec_regex(name: str) -> "re.Pattern[str]":
    """Compile a spec name template into a full-match regex.

    Literal segments are escaped; each ``{placeholder}`` becomes its
    declared value pattern, alternated with the f-string WILDCARD.
    """
    parts: list[str] = []
    pos = 0
    for match in _PLACEHOLDER_RE.finditer(name):
        parts.append(re.escape(name[pos : match.start()]))
        value_pattern = _PLACEHOLDER_PATTERNS.get(match.group(1))
        if value_pattern is None:
            raise ValueError(f"unknown placeholder {match.group(0)!r} in spec {name!r}")
        parts.append(f"(?:{value_pattern}|{re.escape(WILDCARD)})")
        pos = match.end()
    parts.append(re.escape(name[pos:]))
    return re.compile("".join(parts) + r"\Z")


def matches(template: str, call_kind: str | None = None) -> bool:
    """Whether a call-site name template is in the declared vocabulary.

    ``template`` is a literal metric name, or an f-string with each
    interpolation replaced by :data:`WILDCARD`.  When ``call_kind`` is
    given (the registry method used: ``counter`` / ``gauge`` /
    ``histogram`` / ``timer``), the spec's instrument kind must agree
    too — recording a gauge name through ``counter()`` is drift even
    though the name exists.
    """
    expected = _CALL_KINDS.get(call_kind) if call_kind is not None else None
    for spec in VOCABULARY:
        if _spec_regex(spec.name).match(template):
            if expected is None or spec.kind == expected:
                return True
    return False


def markdown_table() -> str:
    """The vocabulary as a GitHub-markdown table (the README source)."""
    lines = ["| Metric | Kind | Meaning |", "|---|---|---|"]
    for spec in VOCABULARY:
        shown = _PLACEHOLDER_RE.sub(lambda m: f"<{m.group(1)}>", spec.name)
        lines.append(f"| `{shown}` | {spec.kind} | {spec.description} |")
    return "\n".join(lines)
