"""Observability: counters, gauges, latency histograms and stage timers.

The serving stack (engine → search methods → vector database) shares
one :class:`MetricsRegistry` so benchmarks, tests and future serving
code read the same instrumentation vocabulary: ``engine.*`` counters,
``<method>.<stage>`` stage timers (encode / scan / route / rank),
``vectordb.*`` scan counters and lifecycle gauges
(``engine.generation``, ``cts.drift``).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "Timer"]
