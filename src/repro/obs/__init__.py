"""Observability: counters, latency histograms and per-stage timers.

The serving stack (engine → search methods → vector database) shares
one :class:`MetricsRegistry` so benchmarks, tests and future serving
code read the same instrumentation vocabulary: ``engine.*`` counters,
``<method>.<stage>`` stage timers (encode / scan / route / rank) and
``vectordb.*`` scan counters.
"""

from repro.obs.metrics import Counter, Histogram, MetricsRegistry, Timer

__all__ = ["Counter", "Histogram", "MetricsRegistry", "Timer"]
