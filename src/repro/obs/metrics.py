"""Counters, latency histograms and stage timers for the serving path.

One :class:`MetricsRegistry` travels with a :class:`DiscoveryEngine`
through its search methods down into the vector database, so every
layer records into the same vocabulary:

* counters — monotone event counts (``engine.queries``,
  ``vectordb.points_scanned``, ``vectordb.index_probes``);
* gauges — point-in-time levels that move both ways
  (``engine.generation``, ``cts.drift`` staleness);
* histograms — latency distributions with p50/p95/p99, fed by stage
  timers named ``<method>.<stage>`` for the stages ``encode`` /
  ``scan`` / ``route`` / ``rank``.

All classes are thread-safe: the batched search paths score chunks on a
thread pool, and every chunk reports into the shared registry.
"""

from __future__ import annotations

import math
import time
from typing import Any, Iterator

from repro.sanitize import lockset

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "Timer"]


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "_value", "_lock", "__weakref__")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = lockset.tracked_lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase; use reset() to zero")
        with self._lock:
            lockset.write(self, "_value")
            self._value += amount

    @property
    def value(self) -> int:
        # Read under the same lock inc() holds: CPython makes a bare
        # int read atomic, but the lock is what guarantees a reader
        # observes every increment a finished inc() call made.
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            lockset.write(self, "_value")
            self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A level that can rise and fall (generations, drift, staleness).

    Unlike a :class:`Counter` a gauge is set, not accumulated: the
    lifecycle paths publish the *current* value of a quantity — the
    store generation a method has applied, the drift CTS has absorbed
    since its last re-cluster — and each :meth:`set` replaces the last.
    """

    __slots__ = ("name", "_value", "_lock", "__weakref__")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lockset.tracked_lock()

    def set(self, value: float) -> None:
        with self._lock:
            lockset.write(self, "_value")
            self._value = float(value)

    @property
    def value(self) -> float:
        # Same single-lock read discipline as Counter.value.
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            lockset.write(self, "_value")
            self._value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A distribution of observations (milliseconds, by convention).

    Observations are kept raw — the serving paths record a handful of
    values per query, so percentiles can be exact (nearest-rank) rather
    than approximated by fixed buckets.
    """

    __slots__ = ("name", "_values", "_lock", "__weakref__")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._lock = lockset.tracked_lock()

    def observe(self, value: float) -> None:
        with self._lock:
            lockset.write(self, "_values")
            self._values.append(float(value))

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    @property
    def total(self) -> float:
        with self._lock:
            return math.fsum(self._values)

    @property
    def mean(self) -> float:
        with self._lock:
            return math.fsum(self._values) / len(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return max(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; 0 when nothing was observed."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._values:
                return 0.0
            ordered = sorted(self._values)
            rank = max(1, math.ceil(p / 100.0 * len(ordered)))
            return ordered[rank - 1]

    def summary(self) -> dict[str, float]:
        """count / total / mean / p50 / p95 / p99 / max in one dict."""
        return {
            "count": self.count,
            "total_ms": self.total,
            "mean_ms": self.mean,
            "p50_ms": self.percentile(50),
            "p95_ms": self.percentile(95),
            "p99_ms": self.percentile(99),
            "max_ms": self.max,
        }

    def reset(self) -> None:
        with self._lock:
            lockset.write(self, "_values")
            self._values.clear()

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class Timer:
    """Context manager recording elapsed wall-clock ms into a histogram."""

    __slots__ = ("_histogram", "_start", "elapsed_ms")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0
        self.elapsed_ms = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.elapsed_ms = (time.perf_counter() - self._start) * 1000.0
        self._histogram.observe(self.elapsed_ms)


class MetricsRegistry:
    """Named counters and histograms, created on first use.

    The registry is the only object layers share: code asks for
    ``metrics.counter("engine.queries")`` or wraps a stage in
    ``with metrics.timer("exs.scan"): ...`` and never needs to know
    who else records into the same instrument.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = lockset.tracked_lock()

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                lockset.write(self, "_counters")
                counter = self._counters[name] = Counter(name)
            return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                lockset.write(self, "_gauges")
                gauge = self._gauges[name] = Gauge(name)
            return gauge

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                lockset.write(self, "_histograms")
                histogram = self._histograms[name] = Histogram(name)
            return histogram

    def timer(self, name: str) -> Timer:
        """A context manager timing one stage into histogram ``name``."""
        return Timer(self.histogram(name))

    def counters(self) -> Iterator[Counter]:
        with self._lock:
            return iter(list(self._counters.values()))

    def gauges(self) -> Iterator[Gauge]:
        with self._lock:
            return iter(list(self._gauges.values()))

    def histograms(self) -> Iterator[Histogram]:
        with self._lock:
            return iter(list(self._histograms.values()))

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time view: counters + gauges + histogram summaries."""
        return {
            "counters": {c.name: c.value for c in sorted(self.counters(), key=lambda c: c.name)},
            "gauges": {g.name: g.value for g in sorted(self.gauges(), key=lambda g: g.name)},
            "stages": {
                h.name: h.summary()
                for h in sorted(self.histograms(), key=lambda h: h.name)
            },
        }

    def format_table(self) -> str:
        """The snapshot rendered as an aligned, printable text table."""
        snap = self.snapshot()
        lines = ["counters", "--------"]
        if not snap["counters"]:
            lines.append("(none)")
        width = max((len(n) for n in snap["counters"]), default=0)
        for name, value in snap["counters"].items():
            lines.append(f"{name:<{width}}  {value}")
        if snap["gauges"]:
            lines += ["", "gauges", "------"]
            width = max(len(n) for n in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"{name:<{width}}  {value:g}")
        lines += ["", "stages (ms)", "-----------"]
        if not snap["stages"]:
            lines.append("(none)")
        else:
            width = max(len(n) for n in snap["stages"])
            header = f"{'stage':<{width}}  {'count':>7} {'mean':>9} {'p50':>9} {'p95':>9} {'p99':>9} {'max':>9}"
            lines.append(header)
            for name, s in snap["stages"].items():
                lines.append(
                    f"{name:<{width}}  {s['count']:>7} {s['mean_ms']:>9.3f} "
                    f"{s['p50_ms']:>9.3f} {s['p95_ms']:>9.3f} {s['p99_ms']:>9.3f} "
                    f"{s['max_ms']:>9.3f}"
                )
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every instrument (instances stay registered)."""
        for counter in self.counters():
            counter.reset()
        for gauge in self.gauges():
            gauge.reset()
        for histogram in self.histograms():
            histogram.reset()
