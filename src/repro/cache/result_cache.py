"""The semantic query-result cache: exact + near-duplicate hits,
generation-precise invalidation, LRU + byte bounds.

Layered above the search methods and below the serving front end.
Discovery traffic is heavily repetitive — the same and near-duplicate
queries arrive over and over — so a warm cache turns repeated full
ExS/ANNS/CTS scans into sub-millisecond dictionary hits.

Design
------
* **Keys.**  Entries live in per-signature stores keyed by
  :class:`CacheSignature` ``(method, k, h, tenant?)``; within a store an
  entry is addressed by its exact query text *and* by its unit-normalized
  query embedding.
* **Lookup.**  An exact text hit is one dict probe.  On an exact miss,
  the near-duplicate probe scores the query vector against the store's
  cached vectors with ONE GEMM — :func:`repro.linalg.distances.
  cosine_similarity` in its ``normalized=True`` fast path, the very
  kernel the fused scans use — and accepts the best neighbour at cosine
  ``>= tau``.  The probe matrix is republished lazily whenever the store
  changed, so the scan is a vectorized kernel call, never a Python loop.
* **Invalidation.**  Every entry records the store ``generation`` it was
  computed at (plus a cache ``epoch``); the writer publishes the current
  generation per method from under its write lock, and a lookup serves an
  entry only when both still match — so invalidation is lazy, exact, and
  per-method: publishing a new ExS generation never touches ANNS entries.
  ``invalidate_all`` (index swaps, where generation numbering restarts)
  bumps the epoch so recycled generation numbers can never resurrect
  pre-swap entries.
* **Concurrency.**  The cache owns NO lock (RL004: the read path is
  lock-free).  Entries and probe states are immutable once published;
  correctness rests entirely on the per-hit epoch/generation check.
  Insertions run on the engine's reader side (mutually exclusive with
  writer-side publication), while the serving event loop may probe
  lock-free from its own thread: under a racing writer it observes
  either the pre-delta publication (serving the pre-delta answer — the
  request overlaps the delta, so that order is linearizable) or the
  post-delta one (entries mismatch and the request falls through to the
  locked path).  Unsynchronized housekeeping races can at worst drop a
  live entry or reuse a slightly stale probe matrix — each candidate is
  still generation-checked — never serve a stale result.
* **Bounds.**  Capacity is bounded by entry count and by an estimated
  byte budget; eviction is LRU over a monotone use tick, surfaced with
  the ``cache.evictions`` counter and the ``cache.bytes`` gauge.
"""

from __future__ import annotations

import itertools
import os
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.annotations import requires_lock
from repro.core.results import RelationMatch, SearchResult
from repro.errors import ConfigurationError
from repro.linalg.distances import cosine_similarity
from repro.obs import MetricsRegistry
from repro.sanitize import lockset

__all__ = [
    "CACHE_ENV",
    "CacheHit",
    "CacheSignature",
    "SemanticResultCache",
    "resolve_query_cache",
]

#: Environment variable consulted when ``DiscoveryEngine(query_cache=None)``:
#: ``"0"``/unset disables, ``"1"`` enables defaults, and a knob string
#: like ``"tau=0.95,capacity=1024,max_bytes=1048576"`` tunes the cache.
CACHE_ENV = "REPRO_QUERY_CACHE"

#: Default near-duplicate acceptance threshold.  ``tau=1.0`` is
#: effectively exact-only: float32 roundoff keeps even an identical
#: re-encoded vector a hair below 1.0, so only the text hash map hits.
DEFAULT_TAU = 0.98

DEFAULT_CAPACITY = 4096
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class CacheSignature:
    """Everything besides the query that shapes a ranked answer."""

    method: str
    k: int
    h: float
    tenant: str | None = None


@dataclass(frozen=True)
class CacheHit:
    """One served lookup: the cached ranking plus provenance."""

    matches: tuple[RelationMatch, ...]
    kind: str  #: ``"exact"`` or ``"near"``
    similarity: float  #: cosine to the cached query (1.0 for exact)
    source_query: str  #: the query text that computed the entry
    generation: int  #: store generation the entry was computed at

    def as_result(self, query: str, method: str) -> SearchResult:
        """The hit as a :class:`SearchResult` for ``query``.

        Matches are the very objects the original computation produced,
        so an exact replay is bitwise-identical to the uncached answer.
        """
        return SearchResult(query=query, method=method, matches=list(self.matches))


class _Entry:
    """One cached answer; immutable but for the LRU use tick."""

    __slots__ = ("query", "vector", "matches", "epoch", "generation", "nbytes", "last_used")

    def __init__(
        self,
        query: str,
        vector: np.ndarray,
        matches: tuple[RelationMatch, ...],
        epoch: int,
        generation: int,
        nbytes: int,
        last_used: int,
    ) -> None:
        self.query = query
        self.vector = vector
        self.matches = matches
        self.epoch = epoch
        self.generation = generation
        self.nbytes = nbytes
        self.last_used = last_used


class _SignatureStore:
    """Entries for one :class:`CacheSignature` plus their probe state.

    ``probe`` is published as one immutable ``(version, matrix, entries)``
    tuple — a torn read is impossible, a stale one merely rescans an old
    matrix whose candidates are still generation-checked individually.
    """

    __slots__ = ("entries", "version", "probe")

    def __init__(self) -> None:
        self.entries: dict[str, _Entry] = {}
        self.version = 0
        self.probe: "tuple[int, np.ndarray, tuple[_Entry, ...]] | None" = None


class SemanticResultCache:
    """Query-result cache keyed on embedding geometry; module docstring
    has the full design.

    Parameters
    ----------
    capacity:
        Maximum cached entries across all signatures (LRU beyond).
    max_bytes:
        Estimated byte budget for vectors + rankings (LRU beyond).
    tau:
        Near-duplicate acceptance threshold on cosine similarity, in
        ``(0, 1]``.  ``1.0`` disables near hits in practice (see
        :data:`DEFAULT_TAU`).
    metrics:
        Registry for the ``cache.*`` vocabulary; the engine injects its
        own so one snapshot shows the whole request path.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        max_bytes: int = DEFAULT_MAX_BYTES,
        tau: float = DEFAULT_TAU,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        if max_bytes < 1:
            raise ConfigurationError("max_bytes must be >= 1")
        if not 0.0 < tau <= 1.0:
            raise ConfigurationError("tau must be in (0, 1]")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.tau = float(tau)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._stores: dict[CacheSignature, _SignatureStore] = {}
        self._generations: dict[str, int] = {}
        self._epoch = 0
        self._ticks = itertools.count(1)

    # -- writer-side publication ------------------------------------------

    @requires_lock("write")
    def publish_generation(self, method: str, generation: int) -> None:
        """Declare ``method``'s current store generation (writer side).

        Entries of other methods are untouched: an ExS-only publication
        never invalidates ANNS entries whose generation is unchanged.
        """
        lockset.write(self, "_generations", policy="anylock")
        self._generations[method] = int(generation)

    def current_generation(self, method: str) -> int | None:
        """The last published generation for ``method``, if any."""
        return self._generations.get(method)

    @requires_lock("write")
    def invalidate_all(self) -> None:
        """Drop everything and start a new epoch (writer side).

        Index swaps restart generation numbering, so a bare generation
        compare could resurrect pre-swap entries; the epoch bump makes
        every old entry fail its check even on a recycled number.  The
        store dict is rebound, not cleared, so a lock-free reader mid-
        lookup keeps a coherent (now unreachable) snapshot.
        """
        dropped = sum(len(store.entries) for store in self._stores.values())
        lockset.write(self, "_stores", policy="publish")
        lockset.write(self, "_generations", policy="publish")
        self._epoch += 1
        self._stores = {}
        self._generations = {}
        if dropped:
            self.metrics.counter("cache.evictions").inc(dropped)
        self.metrics.gauge("cache.bytes").set(0.0)

    # -- the read path (lock-free) ----------------------------------------

    def lookup(
        self,
        signature: CacheSignature,
        query: str,
        encode: "Callable[[], np.ndarray] | None" = None,
    ) -> CacheHit | None:
        """Serve ``query`` from cache, or record a miss.

        ``encode`` lazily supplies the query's unit vector and enables
        the near-duplicate probe; without it only exact text hits are
        considered.  Safe to call from any thread without holding the
        engine's lifecycle lock — validity is decided solely by the
        writer-published epoch/generation pair.
        """
        stores = self._stores
        store = stores.get(signature)
        current = self._generations.get(signature.method)
        epoch = self._epoch
        if store is not None and current is not None:
            entry = store.entries.get(query)
            if entry is not None:
                if entry.epoch == epoch and entry.generation == current:
                    entry.last_used = next(self._ticks)
                    self.metrics.counter("cache.hits").inc()
                    return CacheHit(entry.matches, "exact", 1.0, entry.query, entry.generation)
                self._discard(store, entry)
            if encode is not None and self.tau < 1.0:
                hit = self._probe(store, encode, epoch, current)
                if hit is not None:
                    return hit
        self.metrics.counter("cache.misses").inc()
        return None

    def _probe(
        self,
        store: _SignatureStore,
        encode: "Callable[[], np.ndarray]",
        epoch: int,
        current: int,
    ) -> CacheHit | None:
        """Near-duplicate scan: ONE GEMM over the store's query vectors."""
        state = store.probe
        version = store.version
        if state is None or state[0] != version:
            entries = tuple(store.entries.values())
            if not entries:
                return None
            matrix = np.stack([entry.vector for entry in entries])
            state = (version, matrix, entries)
            store.probe = state
        _, matrix, entries = state
        qvec = np.asarray(encode(), dtype=np.float32).reshape(1, -1)
        if qvec.shape[1] != matrix.shape[1]:
            return None  # stale probe state across an index swap
        with self.metrics.timer("cache.probe_ms"):
            sims = cosine_similarity(matrix, qvec, normalized=True)[:, 0]
        best = int(np.argmax(sims))
        similarity = float(sims[best])
        if similarity < self.tau:
            return None
        entry = entries[best]
        if entry.epoch != epoch or entry.generation != current:
            self._discard(store, entry)
            return None
        entry.last_used = next(self._ticks)
        self.metrics.counter("cache.near_hits").inc()
        return CacheHit(entry.matches, "near", similarity, entry.query, entry.generation)

    # -- insertion and bounds (engine reader side) ------------------------

    @requires_lock("read")
    def insert(
        self,
        signature: CacheSignature,
        query: str,
        vector: np.ndarray,
        matches: Sequence[RelationMatch],
        generation: int,
    ) -> None:
        """Record one computed answer at ``generation``.

        Call with the engine's reader lock held: that makes insertion
        mutually exclusive with writer-side publication, so an entry can
        never be stamped with a generation that is already stale.  An
        insert whose generation disagrees with the published one (a
        standalone-cache misuse) is silently dropped.
        """
        lockset.write(self, "_stores", policy="anylock")
        lockset.write(self, "_generations", policy="anylock")
        current = self._generations.setdefault(signature.method, int(generation))
        if int(generation) != current:
            return
        vec = np.ascontiguousarray(np.asarray(vector, dtype=np.float32).reshape(-1))
        norm = float(np.linalg.norm(vec))
        if norm > 0.0:
            vec = vec / np.float32(norm)
        vec.setflags(write=False)
        matches_t = tuple(matches)
        entry = _Entry(
            query=query,
            vector=vec,
            matches=matches_t,
            epoch=self._epoch,
            generation=int(generation),
            nbytes=self._entry_nbytes(query, vec, matches_t),
            last_used=next(self._ticks),
        )
        store = self._stores.get(signature)
        if store is None:
            store = self._stores.setdefault(signature, _SignatureStore())
        store.entries[query] = entry
        store.version += 1
        self._enforce_bounds()
        self.metrics.gauge("cache.bytes").set(float(self.total_bytes()))

    @staticmethod
    def _entry_nbytes(query: str, vector: np.ndarray, matches: tuple[RelationMatch, ...]) -> int:
        """Deterministic estimate of one entry's resident footprint."""
        nbytes = int(vector.nbytes) + 64 + 2 * len(query)
        for match in matches:
            nbytes += 120 + 2 * len(match.relation_id)
        return nbytes

    def _discard(self, store: _SignatureStore, entry: _Entry) -> None:
        """Drop one entry (stale or evicted); races may drop a same-key
        successor instead, which only costs a future recompute."""
        removed = store.entries.pop(entry.query, None)
        store.version += 1
        if removed is not None:
            self.metrics.counter("cache.evictions").inc()

    def _enforce_bounds(self) -> None:
        """Evict least-recently-used entries past either bound."""
        items = [
            (entry.last_used, store, entry)
            for store in list(self._stores.values())
            for entry in list(store.entries.values())
        ]
        count = len(items)
        nbytes = sum(entry.nbytes for _, _, entry in items)
        if count <= self.capacity and nbytes <= self.max_bytes:
            return
        items.sort(key=lambda item: item[0])
        for _, store, entry in items:
            if count <= self.capacity and nbytes <= self.max_bytes:
                break
            self._discard(store, entry)
            count -= 1
            nbytes -= entry.nbytes

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return sum(len(store.entries) for store in list(self._stores.values()))

    def total_bytes(self) -> int:
        """Estimated resident bytes across all cached entries."""
        return sum(
            entry.nbytes
            for store in list(self._stores.values())
            for entry in list(store.entries.values())
        )

    def info(self) -> dict[str, int | float]:
        """Size/occupancy snapshot for instrumentation."""
        return {
            "entries": len(self),
            "bytes": self.total_bytes(),
            "signatures": len(self._stores),
            "epoch": self._epoch,
            "tau": self.tau,
        }


def _parse_knobs(text: str) -> "dict[str, int | float]":
    """Parse a ``"tau=0.95,capacity=1024"`` knob string."""
    knobs: dict[str, int | float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in ("tau", "capacity", "max_bytes"):
            raise ConfigurationError(
                f"bad {CACHE_ENV} knob {part!r}; expected tau=/capacity=/max_bytes= pairs"
            )
        try:
            knobs[key] = float(value) if key == "tau" else int(value)
        except ValueError as exc:
            raise ConfigurationError(f"bad {CACHE_ENV} knob value in {part!r}") from exc
    return knobs


def resolve_query_cache(
    spec: "SemanticResultCache | bool | str | None",
    metrics: MetricsRegistry | None = None,
) -> SemanticResultCache | None:
    """Resolve the engine's ``query_cache`` argument to an instance.

    ``spec`` may be a ready :class:`SemanticResultCache` (adopted as-is,
    its registry rebound to ``metrics`` when given), a bool, a config
    string, or ``None`` — which defers to the :data:`CACHE_ENV`
    environment variable (absent/falsy: caching stays off).
    """
    if isinstance(spec, SemanticResultCache):
        if metrics is not None:
            spec.metrics = metrics
        return spec
    if spec is None:
        spec = os.environ.get(CACHE_ENV, "")
    if isinstance(spec, bool):
        return SemanticResultCache(metrics=metrics) if spec else None
    text = spec.strip().lower()
    if text in ("", "0", "off", "false", "no", "none"):
        return None
    if text in ("1", "on", "true", "yes", "default"):
        return SemanticResultCache(metrics=metrics)
    knobs = _parse_knobs(spec)
    return SemanticResultCache(metrics=metrics, **knobs)  # type: ignore[arg-type]
