"""Semantic query-result caching above the search methods.

:class:`SemanticResultCache` memoizes ranked answers keyed on the
request signature ``(method, k, h, tenant?)`` plus the query's
unit-normalized embedding: a lookup first tries an exact text hit, then
a near-duplicate probe (cosine >= tau) scored with one GEMM against the
signature's cached query vectors.  Entries are invalidated precisely by
the lifecycle layer's monotone ``generation`` counter, per method.
"""

from repro.cache.result_cache import (
    CACHE_ENV,
    CacheHit,
    CacheSignature,
    SemanticResultCache,
    resolve_query_cache,
)

__all__ = [
    "CACHE_ENV",
    "CacheHit",
    "CacheSignature",
    "SemanticResultCache",
    "resolve_query_cache",
]
