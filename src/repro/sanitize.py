"""Runtime numeric sanitizers for the fused-kernel boundaries.

``REPRO_SANITIZE=1`` (or ``DiscoveryEngine(sanitize=True)``) arms two
runtime checks that complement the static invariants enforced by
:mod:`repro.analysis`:

* **operand guards** — before a fused kernel runs (the ExS
  federation-wide GEMM, the vector database's batched scan), its array
  operands are checked for NaN/Inf values and for silent dtype
  promotion away from the configured storage dtype;
* **instrumented locking** — the engine swaps its
  :class:`~repro.core.lifecycle.RWLock` for an
  :class:`~repro.core.lifecycle.InstrumentedRWLock` that tracks
  per-thread held state and raises on reentrancy, double-release and
  reader-starvation instead of deadlocking.

This module is dependency-free (numpy + stdlib only) so the vector
database and the core kernels can both import it without cycles.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.errors import SanitizerError

__all__ = ["guard_operands", "sanitize_enabled"]

#: Environment switch; any value other than ""/"0"/"false"/"no" arms it.
ENV_VAR = "REPRO_SANITIZE"


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` requests sanitizer mode."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in ("", "0", "false", "no")


def guard_operands(
    *arrays: "np.ndarray[Any, Any]",
    where: str,
    expect_dtype: "np.dtype[Any] | None" = None,
) -> None:
    """Raise :class:`SanitizerError` on bad kernel operands.

    ``expect_dtype`` catches silent promotion (a float64 block reaching
    a float32 kernel doubles bandwidth and breaks score-identity
    contracts); the finiteness check catches NaN/Inf poisoning before
    it propagates through a GEMM into every downstream score.
    """
    for position, array in enumerate(arrays):
        if expect_dtype is not None and array.dtype != np.dtype(expect_dtype):
            raise SanitizerError(
                f"{where}: operand {position} has dtype {array.dtype}, expected "
                f"{np.dtype(expect_dtype)} (silent dtype promotion at a kernel boundary)"
            )
        if array.dtype.kind == "f" and not bool(np.isfinite(array).all()):
            raise SanitizerError(
                f"{where}: operand {position} contains NaN/Inf values"
            )
