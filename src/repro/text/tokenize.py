"""Deterministic tokenization and text normalization.

The tokenizer is intentionally simple and fully deterministic: the same
input string always produces the same token sequence, which keeps every
embedding (and therefore every experiment) reproducible.
"""

from __future__ import annotations

import re
import unicodedata
from collections.abc import Iterable, Iterator

__all__ = [
    "STOPWORDS",
    "Tokenizer",
    "char_ngrams",
    "is_numeric_token",
    "normalize_text",
    "sentence_split",
]

# A compact English stopword list.  Kept short on purpose: in cell-level
# matching most cells are short phrases, so aggressive stopword removal
# destroys signal.
STOPWORDS: frozenset[str] = frozenset(
    """
    a an and are as at be by for from has he in is it its of on or that the
    to was were will with this these those they them their there then than
    """.split()
)

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[.\-_'][a-z0-9]+)*")
_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")
_NUMERIC_RE = re.compile(r"^[0-9]+(?:[.,][0-9]+)*$")


def normalize_text(text: str) -> str:
    """Lowercase, strip accents and collapse whitespace.

    >>> normalize_text("  Caf\\u00e9   COVID-19 ")
    'cafe covid-19'
    """
    text = unicodedata.normalize("NFKD", text)
    text = "".join(ch for ch in text if not unicodedata.combining(ch))
    return " ".join(text.lower().split())


def sentence_split(text: str) -> list[str]:
    """Split text into sentences on terminal punctuation.

    Used by encoders that treat each attribute value as a "sentence",
    mirroring how the paper feeds attribute values to S-BERT.
    """
    parts = [part.strip() for part in _SENTENCE_RE.split(text)]
    return [part for part in parts if part]


def is_numeric_token(token: str) -> bool:
    """Return True if the token is a number (possibly with separators).

    The paper stresses that 26.9% of WikiTables cells and 55.3% of EDP
    cells are numeric and that the encoder must handle numbers in
    context; numeric tokens get dedicated treatment in the encoder.
    """
    return bool(_NUMERIC_RE.match(token))


def char_ngrams(token: str, n_min: int = 3, n_max: int = 4) -> list[str]:
    """Character n-grams of a token with boundary markers.

    Boundary markers (``<`` and ``>``) follow the fastText convention so
    that prefixes/suffixes are distinguishable from word-internal grams.

    >>> char_ngrams("cat", 2, 3)
    ['<c', 'ca', 'at', 't>', '<ca', 'cat', 'at>']
    """
    if n_min < 1 or n_max < n_min:
        raise ValueError(f"invalid n-gram range [{n_min}, {n_max}]")
    marked = f"<{token}>"
    grams = []
    for n in range(n_min, n_max + 1):
        if n >= len(marked):
            continue
        grams.extend(marked[i : i + n] for i in range(len(marked) - n + 1))
    return grams


class Tokenizer:
    """Deterministic word tokenizer with optional stopword removal.

    Parameters
    ----------
    remove_stopwords:
        Drop tokens in :data:`STOPWORDS`.  Disabled by default because
        short table cells lose too much content otherwise.
    min_token_length:
        Drop tokens shorter than this many characters.
    """

    def __init__(self, remove_stopwords: bool = False, min_token_length: int = 1) -> None:
        if min_token_length < 1:
            raise ValueError("min_token_length must be >= 1")
        self.remove_stopwords = remove_stopwords
        self.min_token_length = min_token_length

    def tokenize(self, text: str) -> list[str]:
        """Tokenize a string into normalized word tokens."""
        normalized = normalize_text(text)
        tokens = _TOKEN_RE.findall(normalized)
        if self.min_token_length > 1:
            tokens = [t for t in tokens if len(t) >= self.min_token_length]
        if self.remove_stopwords:
            tokens = [t for t in tokens if t not in STOPWORDS]
        return tokens

    def tokenize_many(self, texts: Iterable[str]) -> Iterator[list[str]]:
        """Tokenize an iterable of strings lazily."""
        for text in texts:
            yield self.tokenize(text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tokenizer(remove_stopwords={self.remove_stopwords}, "
            f"min_token_length={self.min_token_length})"
        )
