"""Text processing substrate: tokenization, vocabularies and the concept lexicon.

This package provides the low-level text machinery that the embedding
layer builds on:

* :mod:`repro.text.tokenize` — deterministic tokenizer and normalization.
* :mod:`repro.text.vocab` — corpus vocabulary with document frequencies
  and IDF statistics.
* :mod:`repro.text.lexicon` — the concept lexicon, a synonym/concept
  graph that supplies the distributional knowledge a pretrained
  sentence transformer would otherwise carry.
"""

from repro.text.lexicon import ConceptLexicon, default_lexicon
from repro.text.tokenize import (
    Tokenizer,
    char_ngrams,
    is_numeric_token,
    normalize_text,
    sentence_split,
)
from repro.text.vocab import Vocabulary

__all__ = [
    "ConceptLexicon",
    "Tokenizer",
    "Vocabulary",
    "char_ngrams",
    "default_lexicon",
    "is_numeric_token",
    "normalize_text",
    "sentence_split",
]
