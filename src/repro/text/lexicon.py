"""The concept lexicon: a synonym/concept graph standing in for pretrained knowledge.

The paper relies on S-BERT's pretrained distributional knowledge to map
surface forms like ``Comirnaty``, ``mRNA vaccine`` and ``Pfizer-BioNTech``
near each other and near the query term ``COVID``.  With no pretrained
models available offline, this module supplies that knowledge explicitly:
a graph of *concepts*, each with member terms (synonyms / instances) and
optional broader concepts (hypernyms).  The semantic encoder expands every
token into its concepts (with per-hop decay) before hashing, so synonymous
terms share vector components and land near each other in embedding space.

The same lexicon drives the synthetic corpus generators: a table about a
topic renders the topic's concepts with *different* surface forms than the
query uses, which is exactly the situation the paper's motivating example
(Figure 1) describes — keyword search fails, semantic matching succeeds.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from repro.text.tokenize import normalize_text

__all__ = ["ConceptLexicon", "default_lexicon"]


class ConceptLexicon:
    """A term -> concept graph with hypernym edges.

    Terms may be single tokens or multi-word phrases (phrases are
    normalized; the encoder probes unigrams and bigrams).  Concepts are
    plain string identifiers.
    """

    def __init__(self) -> None:
        self._term_concepts: dict[str, set[str]] = defaultdict(set)
        self._concept_terms: dict[str, set[str]] = defaultdict(set)
        self._broader: dict[str, set[str]] = defaultdict(set)

    # -- construction -------------------------------------------------

    def add_concept(self, concept: str, terms: Iterable[str]) -> None:
        """Register a concept with its member terms (synonyms/instances)."""
        for term in terms:
            key = normalize_text(term)
            if not key:
                continue
            self._term_concepts[key].add(concept)
            self._concept_terms[concept].add(key)

    def add_broader(self, concept: str, broader: str) -> None:
        """Declare that ``concept`` IS-A / is-about ``broader``."""
        if concept == broader:
            raise ValueError(f"concept {concept!r} cannot be broader than itself")
        self._broader[concept].add(broader)

    def merge(self, other: "ConceptLexicon") -> None:
        """Merge another lexicon's contents into this one."""
        for term, concepts in other._term_concepts.items():
            self._term_concepts[term].update(concepts)
        for concept, terms in other._concept_terms.items():
            self._concept_terms[concept].update(terms)
        for concept, broader in other._broader.items():
            self._broader[concept].update(broader)

    # -- queries ------------------------------------------------------

    @property
    def concepts(self) -> list[str]:
        """All concept identifiers, sorted for determinism."""
        return sorted(self._concept_terms)

    def terms_of(self, concept: str) -> set[str]:
        """Member terms of a concept (empty set if unknown)."""
        return set(self._concept_terms.get(concept, ()))

    def has_term(self, term: str) -> bool:
        return normalize_text(term) in self._term_concepts

    def concepts_of(self, term: str, depth: int = 2, decay: float = 0.5) -> dict[str, float]:
        """Weighted concepts a term activates, following broader edges.

        Direct concepts get weight 1.0; each hop up the hypernym chain
        multiplies by ``decay``.  When multiple paths reach the same
        concept, the maximum weight wins.

        >>> lex = ConceptLexicon()
        >>> lex.add_concept("covid_vaccine", ["comirnaty"])
        >>> lex.add_broader("covid_vaccine", "covid")
        >>> lex.concepts_of("comirnaty")
        {'covid_vaccine': 1.0, 'covid': 0.5}
        """
        key = normalize_text(term)
        weights: dict[str, float] = {}
        frontier = {concept: 1.0 for concept in self._term_concepts.get(key, ())}
        for _ in range(depth + 1):
            if not frontier:
                break
            next_frontier: dict[str, float] = {}
            for concept, weight in frontier.items():
                if weights.get(concept, 0.0) >= weight:
                    continue
                weights[concept] = weight
                for parent in self._broader.get(concept, ()):
                    parent_weight = weight * decay
                    if next_frontier.get(parent, 0.0) < parent_weight:
                        next_frontier[parent] = parent_weight
            frontier = next_frontier
        return weights

    def narrower_of(self, concept: str) -> set[str]:
        """Direct narrower concepts (children in the hypernym graph)."""
        return {c for c, parents in self._broader.items() if concept in parents}

    def descendant_terms(self, concept: str, depth: int = 2) -> set[str]:
        """Member terms of a concept and of its descendants up to ``depth``."""
        terms = set(self._concept_terms.get(concept, ()))
        frontier = {concept}
        for _ in range(depth):
            frontier = {c for f in frontier for c in self.narrower_of(f)}
            if not frontier:
                break
            for child in frontier:
                terms.update(self._concept_terms.get(child, ()))
        return terms

    def synonyms_of(self, term: str) -> set[str]:
        """Other terms sharing at least one direct concept with ``term``."""
        key = normalize_text(term)
        related: set[str] = set()
        for concept in self._term_concepts.get(key, ()):
            related.update(self._concept_terms[concept])
        related.discard(key)
        return related

    def __len__(self) -> int:
        return len(self._concept_terms)

    def __contains__(self, concept: str) -> bool:
        return concept in self._concept_terms


# ---------------------------------------------------------------------------
# Built-in world knowledge used by both the encoder and the data generators.
# Each entry: concept -> member terms.  Broader edges connect instances to
# their domains so that e.g. "comirnaty" activates "covid" with decay.
# ---------------------------------------------------------------------------

_CONCEPT_GROUPS: dict[str, list[str]] = {
    # -- medicine / COVID (the paper's motivating example, Figure 1) --
    "covid": ["covid", "covid-19", "coronavirus", "sars-cov-2", "pandemic"],
    "covid_vaccine": [
        "comirnaty", "vaxzevria", "coronavac", "covaxin", "spikevax",
        "pfizer-biontech", "pfizer", "biontech", "moderna", "astrazeneca",
        "janssen", "novavax", "sinovac", "sputnik",
    ],
    "immunogen": ["mrna", "vector virus", "protein subunit", "inactivated virus", "immunogen"],
    "vaccine": ["vaccine", "vaccination", "immunization", "inoculation", "jab", "dose", "dosage", "booster"],
    "disease": ["disease", "illness", "infection", "epidemic", "outbreak", "virus", "pathogen"],
    "hospital": ["hospital", "clinic", "icu", "ward", "healthcare", "patient", "admission"],
    "medicine": ["medicine", "drug", "pharmaceutical", "treatment", "therapy", "medication"],
    "symptom": ["symptom", "fever", "cough", "fatigue", "side effect", "adverse event"],
    # -- geography: per-country concepts under a broader region, so
    # sister countries are related (shared region) but far weaker than
    # true synonyms — "poland" must not match "austria" as strongly as
    # "covid" matches "coronavirus".
    "europe": ["europe", "european", "eu"],
    "germany": ["germany", "german"],
    "france": ["france", "french"],
    "spain": ["spain", "spanish"],
    "italy": ["italy", "italian"],
    "netherlands": ["netherlands", "dutch"],
    "poland": ["poland", "polish"],
    "sweden": ["sweden", "swedish"],
    "ireland": ["ireland", "irish"],
    "portugal": ["portugal", "portuguese"],
    "greece": ["greece", "greek"],
    "austria": ["austria", "austrian"],
    "belgium": ["belgium", "belgian"],
    "denmark": ["denmark", "danish"],
    "finland": ["finland", "finnish"],
    "north_america": ["north america", "north american"],
    "usa": ["usa", "united states", "america", "american"],
    "canada": ["canada", "canadian"],
    "mexico": ["mexico", "mexican"],
    "california": ["california"],
    "texas": ["texas"],
    "florida": ["florida"],
    "new_york": ["new york"],
    "asia": ["asia", "asian"],
    "china": ["china", "chinese", "beijing"],
    "japan": ["japan", "japanese", "tokyo"],
    "india": ["india", "indian"],
    "korea": ["korea", "korean"],
    "indonesia": ["indonesia", "indonesian"],
    "vietnam": ["vietnam", "vietnamese"],
    "thailand": ["thailand", "thai"],
    "africa": ["africa", "african"],
    "nigeria": ["nigeria", "nigerian"],
    "kenya": ["kenya", "kenyan"],
    "egypt": ["egypt", "egyptian"],
    "south_africa": ["south africa"],
    "ethiopia": ["ethiopia", "ethiopian"],
    "ghana": ["ghana", "ghanaian"],
    "region": ["region", "country", "state", "province", "territory", "county", "continent", "area"],
    "city": ["city", "town", "capital", "municipality", "metropolis", "urban"],
    # -- sports --
    "olympics": ["olympics", "olympic", "games", "beijing olympics", "medal", "gold medal", "athlete"],
    "football": ["football", "soccer", "fifa", "world cup", "league", "goal", "striker"],
    "sport": ["sport", "sports", "tournament", "championship", "match", "team", "season", "score"],
    # -- climate / environment --
    "climate_change": ["climate change", "global warming", "greenhouse", "emission", "carbon", "co2"],
    "weather": ["weather", "temperature", "precipitation", "rainfall", "drought", "heatwave", "storm"],
    "environment": ["environment", "environmental", "ecology", "pollution", "sustainability", "renewable"],
    "energy": ["energy", "electricity", "power", "solar", "wind", "fossil", "coal", "gas", "nuclear"],
    # -- economy / finance --
    "economy": ["economy", "economic", "gdp", "gross domestic product", "inflation", "recession", "growth"],
    "finance": ["finance", "financial", "bank", "investment", "stock", "bond", "market", "revenue", "profit"],
    "trade": ["trade", "export", "import", "tariff", "commerce", "shipment"],
    "employment": ["employment", "unemployment", "jobs", "labor", "labour", "workforce", "salary", "wage"],
    # -- astronomy --
    "moon": ["moon", "lunar", "phases of the moon", "crescent", "full moon", "eclipse"],
    "astronomy": ["astronomy", "planet", "star", "galaxy", "telescope", "orbit", "nasa", "space"],
    # -- transport --
    "transport": ["transport", "transportation", "traffic", "vehicle", "car", "railway", "train",
                  "airport", "flight", "aviation", "highway"],
    # -- food / agriculture --
    "agriculture": ["agriculture", "farming", "crop", "harvest", "wheat", "corn", "rice", "livestock"],
    "food": ["food", "nutrition", "diet", "calorie", "cuisine", "meal", "ingredient"],
    # -- technology --
    "technology": ["technology", "software", "computer", "internet", "digital", "ai",
                   "artificial intelligence", "data", "algorithm"],
    "telecom": ["telecom", "broadband", "mobile", "smartphone", "network", "5g"],
    # -- politics / society --
    "politics": ["politics", "election", "parliament", "government", "policy", "vote", "referendum"],
    "population": ["population", "census", "demographic", "inhabitants", "migration", "birth rate"],
    "education": ["education", "school", "university", "student", "literacy", "enrollment", "tuition"],
    # -- culture --
    "music": ["music", "album", "song", "band", "concert", "singer", "billboard"],
    "film": ["film", "movie", "cinema", "oscar", "box office", "director", "actor"],
    "history": ["history", "historical", "ancient", "medieval", "empire", "war", "battle", "treaty"],
    # -- time --
    "year_2020": ["2020"],
    "year_2021": ["2021"],
    "date": ["date", "year", "month", "day", "period", "quarter", "annual"],
}

_BROADER_EDGES: list[tuple[str, str]] = [
    ("covid_vaccine", "vaccine"),
    ("covid_vaccine", "covid"),
    ("immunogen", "vaccine"),
    ("covid", "disease"),
    ("vaccine", "medicine"),
    ("symptom", "disease"),
    ("hospital", "medicine"),
    ("europe", "region"),
    ("north_america", "region"),
    ("asia", "region"),
    ("africa", "region"),
    ("city", "region"),
    ("germany", "europe"),
    ("france", "europe"),
    ("spain", "europe"),
    ("italy", "europe"),
    ("netherlands", "europe"),
    ("poland", "europe"),
    ("sweden", "europe"),
    ("ireland", "europe"),
    ("portugal", "europe"),
    ("greece", "europe"),
    ("austria", "europe"),
    ("belgium", "europe"),
    ("denmark", "europe"),
    ("finland", "europe"),
    ("usa", "north_america"),
    ("canada", "north_america"),
    ("mexico", "north_america"),
    ("california", "usa"),
    ("texas", "usa"),
    ("florida", "usa"),
    ("new_york", "usa"),
    ("china", "asia"),
    ("japan", "asia"),
    ("india", "asia"),
    ("korea", "asia"),
    ("indonesia", "asia"),
    ("vietnam", "asia"),
    ("thailand", "asia"),
    ("nigeria", "africa"),
    ("kenya", "africa"),
    ("egypt", "africa"),
    ("south_africa", "africa"),
    ("ethiopia", "africa"),
    ("ghana", "africa"),
    ("olympics", "sport"),
    ("football", "sport"),
    ("climate_change", "environment"),
    ("weather", "environment"),
    ("energy", "environment"),
    ("finance", "economy"),
    ("trade", "economy"),
    ("employment", "economy"),
    ("moon", "astronomy"),
    ("telecom", "technology"),
    ("population", "politics"),
    ("music", "film"),
]


def default_lexicon() -> ConceptLexicon:
    """Build the built-in concept lexicon used across the library.

    Returns a fresh instance each call so callers may mutate their copy
    without affecting others.
    """
    lexicon = ConceptLexicon()
    for concept, terms in _CONCEPT_GROUPS.items():
        lexicon.add_concept(concept, terms)
    for concept, broader in _BROADER_EDGES:
        lexicon.add_broader(concept, broader)
    return lexicon
