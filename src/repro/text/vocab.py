"""Corpus vocabulary with document-frequency and IDF statistics.

The vocabulary is the shared bookkeeping structure used by the trained
co-occurrence encoder, the language-model baselines (MDR) and the
hand-crafted feature extractors (WS/TCS).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

__all__ = ["Vocabulary"]


class Vocabulary:
    """Token <-> id mapping with term and document frequencies.

    Build incrementally with :meth:`add_document`, or in one shot with
    :meth:`from_documents`.  Lookup of unknown tokens returns ``None``
    rather than raising, because encoders routinely probe for tokens
    that were never seen during fitting.
    """

    def __init__(self) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._term_freq: Counter[str] = Counter()
        self._doc_freq: Counter[str] = Counter()
        self._num_documents = 0

    # -- construction -------------------------------------------------

    @classmethod
    def from_documents(cls, documents: Iterable[list[str]]) -> "Vocabulary":
        """Build a vocabulary from an iterable of token lists."""
        vocab = cls()
        for tokens in documents:
            vocab.add_document(tokens)
        return vocab

    def add_document(self, tokens: list[str]) -> None:
        """Register one document's tokens in the vocabulary."""
        self._num_documents += 1
        self._term_freq.update(tokens)
        self._doc_freq.update(set(tokens))
        for token in tokens:
            if token not in self._token_to_id:
                self._token_to_id[token] = len(self._id_to_token)
                self._id_to_token.append(token)

    # -- lookup -------------------------------------------------------

    def id_of(self, token: str) -> int | None:
        """Return the integer id of a token, or None if unseen."""
        return self._token_to_id.get(token)

    def token_of(self, token_id: int) -> str:
        """Return the token for an id (raises IndexError if out of range)."""
        return self._id_to_token[token_id]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __iter__(self):
        return iter(self._id_to_token)

    # -- statistics ---------------------------------------------------

    @property
    def num_documents(self) -> int:
        """Number of documents registered so far."""
        return self._num_documents

    def term_frequency(self, token: str) -> int:
        """Total corpus occurrences of a token."""
        return self._term_freq[token]

    def document_frequency(self, token: str) -> int:
        """Number of documents containing a token."""
        return self._doc_freq[token]

    def idf(self, token: str, smooth: float = 1.0) -> float:
        """Smoothed inverse document frequency.

        Uses the BM25-style formulation
        ``log((N + smooth) / (df + smooth)) + 1`` which stays positive
        for every token, including ones that appear in all documents.
        """
        df = self._doc_freq.get(token, 0)
        return math.log((self._num_documents + smooth) / (df + smooth)) + 1.0

    def total_tokens(self) -> int:
        """Total token count across the corpus (for LM smoothing)."""
        return sum(self._term_freq.values())

    def most_common(self, n: int | None = None) -> list[tuple[str, int]]:
        """Most frequent tokens with their corpus counts."""
        return self._term_freq.most_common(n)

    def prune(self, min_term_freq: int = 1, max_size: int | None = None) -> "Vocabulary":
        """Return a new vocabulary keeping only frequent tokens.

        Pruning re-assigns ids densely, so downstream matrices built on
        the pruned vocabulary stay compact.
        """
        kept = [
            (token, freq)
            for token, freq in self._term_freq.most_common(max_size)
            if freq >= min_term_freq
        ]
        pruned = Vocabulary()
        pruned._num_documents = self._num_documents
        for token, freq in kept:
            pruned._token_to_id[token] = len(pruned._id_to_token)
            pruned._id_to_token.append(token)
            pruned._term_freq[token] = freq
            pruned._doc_freq[token] = self._doc_freq[token]
        return pruned
