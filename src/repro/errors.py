"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything the library raises with a single handler
while still being able to distinguish specific failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class NotFittedError(ReproError):
    """A model/index was used before it was fitted or built."""


class DimensionMismatchError(ReproError):
    """Vector dimensionality does not match what a component expects."""


class CollectionError(ReproError):
    """A vector-database collection operation failed."""


class CollectionNotFoundError(CollectionError):
    """The requested collection does not exist."""


class CollectionExistsError(CollectionError):
    """A collection with the requested name already exists."""


class PointNotFoundError(CollectionError):
    """The requested point id does not exist in the collection."""


class EmptyIndexError(ReproError):
    """A search was issued against an index that contains no vectors."""


class SanitizerError(ReproError):
    """A runtime sanitizer (``REPRO_SANITIZE=1``) detected an invariant
    violation: lock misuse that would deadlock or tear state, or
    non-finite / wrongly-typed operands at a fused-kernel boundary."""


class ServingError(ReproError):
    """Base class for failures of the async serving front end."""


class QueueFull(ServingError):
    """Admission control rejected a request: the serving queue is at its
    bound.  ``retry_after_ms`` is a backoff hint — roughly how long the
    current backlog needs to drain one window."""

    def __init__(self, message: str, retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class RateLimited(ServingError):
    """A tenant's token bucket is empty.  ``retry_after_ms`` is the time
    until the bucket refills one token at its sustained rate."""

    def __init__(self, message: str, tenant: str, retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_ms = retry_after_ms


class DeadlineExceeded(ServingError):
    """A request's deadline expired while it waited in a batching window;
    it was shed before reaching the engine."""


class ServingClosed(ServingError):
    """A request arrived after :meth:`ServingEngine.drain` stopped intake."""


class StorageError(ReproError):
    """A persisted snapshot is unreadable or fails integrity checks: a
    missing or malformed manifest, a segment file whose size disagrees
    with the manifest (torn write), or a payload whose digest does not
    match the committed checksum (corruption)."""


class ExecutionError(ReproError):
    """An execution backend failed: a backend was used after
    ``close()``, a shard worker process died or rejected a command, or
    a scan referenced shard state that was never published (or whose
    resident generation disagrees with the caller's)."""


class DataGenerationError(ReproError):
    """Synthetic corpus or query generation failed."""


class EvaluationError(ReproError):
    """Metric computation or experiment evaluation failed."""
