"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything the library raises with a single handler
while still being able to distinguish specific failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class NotFittedError(ReproError):
    """A model/index was used before it was fitted or built."""


class DimensionMismatchError(ReproError):
    """Vector dimensionality does not match what a component expects."""


class CollectionError(ReproError):
    """A vector-database collection operation failed."""


class CollectionNotFoundError(CollectionError):
    """The requested collection does not exist."""


class CollectionExistsError(CollectionError):
    """A collection with the requested name already exists."""


class PointNotFoundError(CollectionError):
    """The requested point id does not exist in the collection."""


class EmptyIndexError(ReproError):
    """A search was issued against an index that contains no vectors."""


class SanitizerError(ReproError):
    """A runtime sanitizer (``REPRO_SANITIZE=1``) detected an invariant
    violation: lock misuse that would deadlock or tear state, or
    non-finite / wrongly-typed operands at a fused-kernel boundary."""


class DataGenerationError(ReproError):
    """Synthetic corpus or query generation failed."""


class EvaluationError(ReproError):
    """Metric computation or experiment evaluation failed."""
