"""Eraser-style lockset race detection (``REPRO_SANITIZE=2``).

The classic Eraser algorithm: for every instrumented shared field keep
a *candidate lockset* — the locks every thread so far has held while
touching it.  Each access intersects the candidates with the locks the
accessing thread holds right now (all held locks for reads, only
exclusively-held locks for writes).  While one thread owns the field
the set is not consulted; as soon as a second thread touches it the
refinement starts, and a field that has been written from two threads
with an *empty* candidate set has, by construction, no lock protecting
it — that is a data race even if the unlucky interleaving never fired
in this run.  The tracker raises :class:`~repro.errors.SanitizerError`
at the racing access instead of letting the race stay latent.

Two deliberately weaker per-field policies cover the repo's lock-free
designs, where strict Eraser would report by-design behaviour:

* ``"publish"`` — readers are lock-free on purpose (the engine's
  ``_embeddings``/``_sharded`` swap fields, the cache's generation
  map); only *writes* are checked, and must hold some exclusive lock
  once the field is shared across threads.
* ``"anylock"`` — writes may run under the shared (reader) side (the
  cache's ``insert`` contract is "call with the engine's reader lock
  held"); a write holding no tracked lock at all is the violation.

Lock holds are reported by :class:`~repro.core.lifecycle.
InstrumentedRWLock` (reader side → shared, writer side → exclusive)
and by :class:`TrackedLock` (a ``threading.Lock`` wrapper the metrics
instruments switch to when armed).  Fields are instrumented either
with the :class:`TrackedField` data descriptor (every rebind of the
attribute is seen, including ones written after this PR) or with
explicit :func:`read`/:func:`write` calls at the access sites.

Everything no-ops behind one module-level boolean when the level-2
sanitizer is not armed, so production paths pay a single attribute
load + branch.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Any

from repro.errors import SanitizerError

__all__ = [
    "TrackedField",
    "TrackedLock",
    "arm",
    "disarm",
    "enabled",
    "note_acquire",
    "note_release",
    "read",
    "reset",
    "tracked_lock",
    "write",
]

_POLICIES = ("eraser", "publish", "anylock")


def _env_level() -> int:
    raw = os.environ.get("REPRO_SANITIZE", "").strip().lower()
    if raw in ("", "0", "false", "no"):
        return 0
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


_armed: bool = _env_level() >= 2


class _HeldLocks(threading.local):
    """Multiset of lock tokens this thread holds, by mode."""

    def __init__(self) -> None:
        self.shared: dict[int, int] = {}
        self.exclusive: dict[int, int] = {}


_held = _HeldLocks()


class _FieldState:
    """Eraser bookkeeping for one ``(owner, field)`` pair."""

    __slots__ = ("label", "threads", "candidates", "written_shared")

    def __init__(self, label: str) -> None:
        self.label = label
        self.threads: set[int] = set()
        self.candidates: set[int] | None = None
        self.written_shared = False


_states: dict[tuple[int, str], _FieldState] = {}
_states_lock = threading.Lock()


def enabled() -> bool:
    """Whether the lockset tracker is armed (``REPRO_SANITIZE=2``)."""
    return _armed


def arm() -> None:
    """Arm the tracker (tests); clears any previously tracked state."""
    global _armed
    reset()
    _armed = True


def disarm() -> None:
    """Disarm the tracker and drop all tracked state."""
    global _armed
    _armed = False
    reset()


def reset() -> None:
    """Forget every tracked field (test isolation)."""
    with _states_lock:
        _states.clear()


def note_acquire(lock: object, *, exclusive: bool) -> None:
    """Record that the current thread acquired ``lock``."""
    if not _armed:
        return
    table = _held.exclusive if exclusive else _held.shared
    token = id(lock)
    table[token] = table.get(token, 0) + 1


def note_release(lock: object, *, exclusive: bool) -> None:
    """Record that the current thread released ``lock``."""
    if not _armed:
        return
    table = _held.exclusive if exclusive else _held.shared
    token = id(lock)
    count = table.get(token, 0)
    if count <= 1:
        table.pop(token, None)
    else:
        table[token] = count - 1


class TrackedLock:
    """A ``threading.Lock`` whose holds the lockset tracker can see.

    Exclusive-mode: holding it satisfies every policy.  The metrics
    instruments construct one (via :func:`tracked_lock`) when armed, so
    their per-value locks participate in candidate-set refinement.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            note_acquire(self, exclusive=True)
        return acquired

    def release(self) -> None:
        note_release(self, exclusive=True)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


def tracked_lock() -> "TrackedLock | threading.Lock":
    """A :class:`TrackedLock` when armed, else a plain ``Lock``.

    Decided at construction time: objects built before :func:`arm` keep
    plain locks and their hooks stay no-ops, so arming mid-process never
    reinterprets old objects' locking as races.
    """
    return TrackedLock() if _armed else threading.Lock()


def _purge(key: tuple[int, str]) -> None:
    with _states_lock:
        _states.pop(key, None)


def _describe_holds(held_excl: set[int], held_shared: set[int]) -> str:
    if not held_excl and not held_shared:
        return "no tracked locks"
    return (
        f"{len(held_excl)} exclusive / {len(held_shared)} shared tracked lock(s)"
    )


def _access(owner: object, field: str, *, write: bool, policy: str) -> None:
    if not _armed:
        return
    held_shared = set(_held.shared)
    held_excl = set(_held.exclusive)
    thread = threading.get_ident()
    key = (id(owner), field)
    with _states_lock:
        state = _states.get(key)
        if state is None:
            state = _states[key] = _FieldState(f"{type(owner).__name__}.{field}")
            try:
                weakref.finalize(owner, _purge, key)
            except TypeError:
                pass  # not weakref-able: the entry lives until reset()
        state.threads.add(thread)
        if len(state.threads) < 2:
            # Still thread-exclusive (initialisation, single-threaded
            # use): Eraser defers judgement until the field is shared.
            return
        if policy == "eraser":
            held = held_excl if write else held_excl | held_shared
            state.candidates = (
                set(held) if state.candidates is None else state.candidates & held
            )
            if write:
                state.written_shared = True
            if state.written_shared and not state.candidates:
                raise SanitizerError(
                    f"lockset for {state.label} went empty: this "
                    f"{'write' if write else 'read'} holds "
                    f"{_describe_holds(held_excl, held_shared)} and no lock was "
                    "common to every access since the field became shared — "
                    "no lock protects this field (Eraser)"
                )
        elif write and policy == "publish":
            if not held_excl:
                raise SanitizerError(
                    f"{state.label} is published across threads but this write "
                    f"holds {_describe_holds(held_excl, held_shared)} — rebinds "
                    "require an exclusive (writer-side) lock"
                )
        elif write and policy == "anylock":
            if not held_excl and not held_shared:
                raise SanitizerError(
                    f"{state.label} is shared across threads but this write holds "
                    "no tracked lock at all — callers must hold at least the "
                    "reader side"
                )


def read(owner: object, field: str, policy: str = "eraser") -> None:
    """Record a read of ``owner.<field>`` under the current lockset."""
    _access(owner, field, write=False, policy=policy)


def write(owner: object, field: str, policy: str = "eraser") -> None:
    """Record a write of ``owner.<field>`` under the current lockset."""
    _access(owner, field, write=True, policy=policy)


class TrackedField:
    """Data descriptor: every read/rebind of the attribute is tracked.

    Declared on the class (``_embeddings = TrackedField("publish")``),
    it stores the value in the instance ``__dict__`` under a mangled
    slot, so *any* assignment — including ones added long after this
    instrumentation — passes through the tracker when armed.  Disarmed
    cost is one module-global boolean check per access.
    """

    __slots__ = ("_policy", "_name", "_slot")

    def __init__(self, policy: str = "eraser") -> None:
        if policy not in _POLICIES:
            raise ValueError(f"unknown lockset policy {policy!r}")
        self._policy = policy
        self._name = ""
        self._slot = ""

    def __set_name__(self, owner: type, name: str) -> None:
        self._name = name
        self._slot = f"__lockset_{name}"

    def __get__(self, obj: object, objtype: type | None = None) -> Any:
        if obj is None:
            return self
        if _armed:
            _access(obj, self._name, write=False, policy=self._policy)
        try:
            return obj.__dict__[self._slot]
        except KeyError:
            raise AttributeError(self._name) from None

    def __set__(self, obj: object, value: Any) -> None:
        if _armed:
            _access(obj, self._name, write=True, policy=self._policy)
        obj.__dict__[self._slot] = value

    def __delete__(self, obj: object) -> None:
        obj.__dict__.pop(self._slot, None)
