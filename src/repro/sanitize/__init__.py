"""Runtime sanitizers complementing the static invariants.

``REPRO_SANITIZE=1`` (or ``DiscoveryEngine(sanitize=True)``) arms two
runtime checks that complement the static rules in
:mod:`repro.analysis`:

* **operand guards** — before a fused kernel runs (the ExS
  federation-wide GEMM, the vector database's batched scan), its array
  operands are checked for NaN/Inf values and for silent dtype
  promotion away from the configured storage dtype;
* **instrumented locking** — the engine swaps its
  :class:`~repro.core.lifecycle.RWLock` for an
  :class:`~repro.core.lifecycle.InstrumentedRWLock` that tracks
  per-thread held state and raises on reentrancy, double-release and
  reader-starvation instead of deadlocking.

``REPRO_SANITIZE=2`` additionally arms the Eraser-style lockset race
detector in :mod:`repro.sanitize.lockset`: instrumented shared-state
accesses (the engine's swap fields, cache stores, shard maps, metrics
internals) intersect the set of locks each thread holds, and a field
whose candidate lockset goes empty across threads raises
:class:`~repro.errors.SanitizerError` at the racing access.  Level 2 is
a strict superset of level 1.

This package is dependency-light (numpy + stdlib only) so the vector
database and the core kernels can both import it without cycles.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.errors import SanitizerError
from repro.sanitize import lockset

__all__ = ["guard_operands", "lockset", "sanitize_enabled", "sanitize_level"]

#: Environment switch; any value other than ""/"0"/"false"/"no" arms it.
ENV_VAR = "REPRO_SANITIZE"


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` requests sanitizer mode."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in ("", "0", "false", "no")


def sanitize_level() -> int:
    """The requested sanitizer level: 0 (off), 1 (guards), 2 (+lockset).

    Any truthy value arms level 1, so historical ``REPRO_SANITIZE=1`` /
    ``=true`` usage is unchanged; ``REPRO_SANITIZE=2`` (or higher) also
    arms the lockset race detector.
    """
    raw = os.environ.get(ENV_VAR, "").strip().lower()
    if raw in ("", "0", "false", "no"):
        return 0
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def guard_operands(
    *arrays: "np.ndarray[Any, Any]",
    where: str,
    expect_dtype: "np.dtype[Any] | None" = None,
) -> None:
    """Raise :class:`SanitizerError` on bad kernel operands.

    ``expect_dtype`` catches silent promotion (a float64 block reaching
    a float32 kernel doubles bandwidth and breaks score-identity
    contracts); the finiteness check catches NaN/Inf poisoning before
    it propagates through a GEMM into every downstream score.
    """
    for position, array in enumerate(arrays):
        if expect_dtype is not None and array.dtype != np.dtype(expect_dtype):
            raise SanitizerError(
                f"{where}: operand {position} has dtype {array.dtype}, expected "
                f"{np.dtype(expect_dtype)} (silent dtype promotion at a kernel boundary)"
            )
        if array.dtype.kind == "f" and not bool(np.isfinite(array).all()):
            raise SanitizerError(
                f"{where}: operand {position} contains NaN/Inf values"
            )
