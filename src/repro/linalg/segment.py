"""Segment-reduced aggregation of fused similarity slabs.

The ExS fused kernel computes one ``(rows, Q)`` GEMM over a stacked
relation matrix; this function turns that slab into per-relation scores
with a single ``np.add.reduceat`` segment reduction (``mean``) or a
segmented partition (``max_mean``).

It lives here in ``repro.linalg`` — below both ``repro.core`` and
``repro.exec`` — because the exact same code must also run inside shard
worker processes, which hold only the shared matrix, offsets and
weights (never the ``ExhaustiveSearch`` object).  Sharing one function
is what keeps parent-side and worker-side scores bitwise identical.
"""

from __future__ import annotations

import numpy as np

__all__ = ["segment_scores"]


def segment_scores(
    sims: np.ndarray,
    offsets: np.ndarray,
    weights: np.ndarray,
    aggregate: str = "mean",
    top_fraction: float = 0.1,
) -> np.ndarray:
    """Per-relation scores of a fused ``(rows, Q)`` similarity slab.

    ``offsets`` holds the start row of each relation block (the
    ``np.add.reduceat`` offsets) and ``weights`` the pre-folded per-row
    mean weights (float64, so the reduction upcasts float32 sims and
    the normalization stays exact).

    ``mean``: one segment reduction of the weight-folded similarities.
    ``max_mean``: a segmented partition — the GEMM is already fused,
    only the per-segment top-fraction selection walks the blocks.
    """
    if aggregate == "mean":
        return np.add.reduceat(sims * weights[:, np.newaxis], offsets, axis=0)
    if aggregate != "max_mean":
        raise ValueError(f"unknown aggregate {aggregate!r}")
    bounds = np.append(offsets, sims.shape[0])
    # repro-lint: disable=RL003 -- deliberate float64 accumulator for segment means
    scores = np.empty((len(offsets), sims.shape[1]), dtype=np.float64)
    for i in range(len(offsets)):
        seg = sims[bounds[i] : bounds[i + 1]]
        keep = max(1, int(np.ceil(top_fraction * seg.shape[0])))
        top = np.partition(seg, seg.shape[0] - keep, axis=0)
        scores[i] = top[seg.shape[0] - keep :].mean(axis=0)
    return scores
