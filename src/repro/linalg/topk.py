"""Top-k selection helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_indices"]


def top_k_indices(scores: np.ndarray, k: int, largest: bool = True) -> np.ndarray:
    """Indices of the k best entries of a 1-D score array, best first.

    Uses ``argpartition`` for O(n + k log k) selection instead of a full
    sort.  ``k`` larger than the array is clamped.  Ties are broken by
    index order (stable), which keeps rankings deterministic.
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise ValueError(f"expected 1-D scores, got ndim={scores.ndim}")
    n = scores.shape[0]
    if k <= 0 or n == 0:
        return np.empty(0, dtype=np.intp)
    k = min(k, n)
    keys = -scores if largest else scores
    if k == n:
        candidate = np.arange(n)
    else:
        candidate = np.argpartition(keys, k - 1)[:k]
    # Stable sort of the candidates: primary key score, secondary index.
    order = np.lexsort((candidate, keys[candidate]))
    return candidate[order]
