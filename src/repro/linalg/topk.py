"""Top-k selection helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_indices", "top_k_indices_rowwise"]


def top_k_indices(scores: np.ndarray, k: int, largest: bool = True) -> np.ndarray:
    """Indices of the k best entries of a 1-D score array, best first.

    Uses ``argpartition`` for O(n + k log k) selection instead of a full
    sort.  ``k`` larger than the array is clamped.  Ties are broken by
    index order (stable), which keeps rankings deterministic.
    """
    # repro-lint: disable=RL003 -- dtype-preserving selection; comparisons work in the caller's dtype
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise ValueError(f"expected 1-D scores, got ndim={scores.ndim}")
    n = scores.shape[0]
    if k <= 0 or n == 0:
        return np.empty(0, dtype=np.intp)
    k = min(k, n)
    keys = -scores if largest else scores
    if k == n:
        candidate = np.arange(n)
    else:
        candidate = np.argpartition(keys, k - 1)[:k]
    # Stable sort of the candidates: primary key score, secondary index.
    order = np.lexsort((candidate, keys[candidate]))
    return candidate[order]


def top_k_indices_rowwise(scores: np.ndarray, k: int, largest: bool = True) -> np.ndarray:
    """Per-row top-k of a 2-D ``(Q, n)`` score matrix, best first.

    One ``argpartition`` along ``axis=1`` selects every row's candidate
    set at once, so a batched scan ranks all its queries without a
    Python-level loop.  Returns a ``(Q, min(k, n))`` index matrix whose
    row ``i`` equals ``top_k_indices(scores[i], k, largest)`` — same
    selection, same stable index-order tie-breaking.
    """
    # repro-lint: disable=RL003 -- dtype-preserving selection; comparisons work in the caller's dtype
    scores = np.asarray(scores)
    if scores.ndim != 2:
        raise ValueError(f"expected 2-D scores, got ndim={scores.ndim}")
    n_queries, n = scores.shape
    if k <= 0 or n == 0 or n_queries == 0:
        return np.empty((n_queries, 0), dtype=np.intp)
    k = min(k, n)
    keys = -scores if largest else scores
    if k == n:
        candidate = np.broadcast_to(np.arange(n), (n_queries, n))
    else:
        candidate = np.argpartition(keys, k - 1, axis=1)[:, :k]
    row_keys = np.take_along_axis(keys, candidate, axis=1)
    # lexsort sorts along the last axis independently per row: primary
    # key score, secondary original index (stable ties).
    order = np.lexsort((candidate, row_keys))
    return np.take_along_axis(candidate, order, axis=1).astype(np.intp, copy=False)
