"""Vectorized similarity and distance kernels.

All public functions accept 1-D vectors or 2-D row-matrices of float
dtype and are pure numpy — no Python-level loops over points.  The
``Metric`` enum is the single source of truth for which metrics the
vector database and ANN indexes support, mirroring Qdrant's cosine /
dot / euclidean options mentioned in the paper (Sec 4.2).

Dtype contract: float32 and float64 inputs are processed — and scored —
in their own precision (no silent upcast to float64), so a float32
store pays float32 bandwidth end to end.  Non-float inputs are promoted
to float64.  Mixed-precision pairs follow numpy promotion (f32 × f64 →
f64); callers that care should cast both operands up front.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import DimensionMismatchError

__all__ = [
    "Metric",
    "cosine_similarity",
    "dot_similarity",
    "euclidean_distance",
    "normalize_rows",
    "pairwise_distance",
    "pairwise_similarity",
    "similarity",
]

_EPS = 1e-12


class Metric(str, enum.Enum):
    """Similarity metric used by indexes and the vector database."""

    COSINE = "cosine"
    DOT = "dot"
    EUCLIDEAN = "euclidean"

    @property
    def higher_is_better(self) -> bool:
        """Whether larger values mean more similar (False for euclidean)."""
        return self is not Metric.EUCLIDEAN


def _as_float(array: np.ndarray) -> np.ndarray:
    """The array as float32/float64 (anything else promotes to float64)."""
    # repro-lint: disable=RL003 -- preserves float32/float64 as-is; only non-float input promotes
    out = np.asarray(array)
    if out.dtype not in (np.float32, np.float64):
        # repro-lint: disable=RL003 -- promotion target for non-float input only
        out = out.astype(np.float64)
    return out


def _as_2d(array: np.ndarray) -> np.ndarray:
    out = _as_float(array)
    if out.ndim == 1:
        return out[np.newaxis, :]
    if out.ndim != 2:
        raise DimensionMismatchError(f"expected 1-D or 2-D array, got ndim={out.ndim}")
    return out


def _check_dims(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape[-1] != b.shape[-1]:
        raise DimensionMismatchError(
            f"dimension mismatch: {a.shape[-1]} vs {b.shape[-1]}"
        )


def row_norms(matrix: np.ndarray) -> np.ndarray:
    """L2 norm of each row, in the matrix's (float) dtype.

    Computed with a row-wise ``einsum`` self-product so each row's norm
    depends only on that row's contents — the same row yields the same
    bits whether it arrives alone or inside a larger block, which the
    incremental-upsert paths rely on for delta-vs-rebuild identity.
    """
    matrix = _as_float(matrix)
    if matrix.ndim == 1:
        matrix = matrix[np.newaxis, :]
    return np.sqrt(np.einsum("ij,ij->i", matrix, matrix))


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalize each row; zero rows stay zero.  Dtype-preserving."""
    matrix = _as_float(matrix)
    if matrix.ndim == 1:
        norm = np.linalg.norm(matrix)
        return matrix / norm if norm > _EPS else matrix.copy()
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms = np.where(norms > _EPS, norms, matrix.dtype.type(1.0))
    return matrix / norms


def cosine_similarity(
    a: np.ndarray, b: np.ndarray, normalized: bool = False
) -> np.ndarray:
    """Cosine similarity between rows of ``a`` and rows of ``b``.

    Returns an ``(len(a), len(b))`` matrix; 1-D inputs are treated as a
    single row, so two vectors yield a ``(1, 1)`` matrix — use
    :func:`similarity` for a scalar convenience wrapper.

    ``normalized=True`` asserts both operands already hold unit rows
    and skips the two O(n·d) normalization passes, reducing the call to
    one bare GEMM — the fast path for stores that normalize at insert
    time instead of once per query.
    """
    a2, b2 = _as_2d(a), _as_2d(b)
    _check_dims(a2, b2)
    if normalized:
        return a2 @ b2.T
    return normalize_rows(a2) @ normalize_rows(b2).T


def dot_similarity(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Raw inner-product similarity matrix between rows of a and b."""
    a2, b2 = _as_2d(a), _as_2d(b)
    _check_dims(a2, b2)
    return a2 @ b2.T


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distance matrix between rows of a and b.

    Uses the expanded ``||x-y||^2 = ||x||^2 + ||y||^2 - 2<x,y>`` form
    with clipping so tiny negative round-off never reaches sqrt.
    """
    a2, b2 = _as_2d(a), _as_2d(b)
    _check_dims(a2, b2)
    sq = (
        np.sum(a2**2, axis=1)[:, np.newaxis]
        + np.sum(b2**2, axis=1)[np.newaxis, :]
        - 2.0 * (a2 @ b2.T)
    )
    return np.sqrt(np.clip(sq, 0.0, None))


def pairwise_similarity(a: np.ndarray, b: np.ndarray, metric: Metric) -> np.ndarray:
    """Similarity matrix under ``metric``; euclidean is negated distance.

    Negating euclidean distance gives a score where, like cosine and
    dot, *larger is more similar*, which lets ranking code treat all
    metrics uniformly.
    """
    if metric is Metric.COSINE:
        return cosine_similarity(a, b)
    if metric is Metric.DOT:
        return dot_similarity(a, b)
    return -euclidean_distance(a, b)


def pairwise_distance(a: np.ndarray, b: np.ndarray, metric: Metric) -> np.ndarray:
    """Distance matrix under ``metric`` (smaller is closer)."""
    if metric is Metric.EUCLIDEAN:
        return euclidean_distance(a, b)
    return 1.0 - pairwise_similarity(a, b, metric)


def similarity(a: np.ndarray, b: np.ndarray, metric: Metric = Metric.COSINE) -> float:
    """Scalar similarity between two single vectors."""
    a = _as_float(a)
    b = _as_float(b)
    if a.ndim != 1 or b.ndim != 1:
        raise DimensionMismatchError("similarity() expects two 1-D vectors")
    return float(pairwise_similarity(a, b, metric)[0, 0])
