"""Lloyd's k-means with k-means++ initialization.

Used as the codebook learner for Product Quantization and as a generic
clustering utility.  Written against plain numpy (sklearn is not
available in this environment).
"""

# repro-lint: disable-file=RL003 -- centroid updates accumulate in float64 by design
from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.linalg.distances import euclidean_distance

__all__ = ["KMeans"]


class KMeans:
    """Lloyd's algorithm with k-means++ seeding and empty-cluster repair.

    Parameters
    ----------
    n_clusters:
        Number of centroids to fit.
    max_iter:
        Maximum Lloyd iterations.
    tol:
        Convergence threshold on total centroid movement.
    seed:
        Seed for the internal random generator; fitting is fully
        deterministic for a given seed and input.

    Attributes
    ----------
    centroids_:
        ``(n_clusters, dim)`` array after :meth:`fit`.
    labels_:
        Training-point assignments after :meth:`fit`.
    inertia_:
        Final sum of squared distances to assigned centroids.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 50,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ConfigurationError("n_clusters must be >= 1")
        if max_iter < 1:
            raise ConfigurationError("max_iter must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centroids_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None

    # -- fitting ------------------------------------------------------

    def fit(self, points: np.ndarray) -> "KMeans":
        """Fit centroids to ``points`` of shape ``(n, dim)``."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ConfigurationError("points must be a 2-D array")
        n = points.shape[0]
        if n == 0:
            raise ConfigurationError("cannot fit k-means on an empty array")
        k = min(self.n_clusters, n)
        rng = np.random.default_rng(self.seed)

        centroids = self._kmeans_pp_init(points, k, rng)
        labels = np.zeros(n, dtype=np.intp)
        for _ in range(self.max_iter):
            dists = euclidean_distance(points, centroids)
            labels = np.argmin(dists, axis=1)
            new_centroids = centroids.copy()
            for j in range(k):
                members = points[labels == j]
                if len(members) > 0:
                    new_centroids[j] = members.mean(axis=0)
                else:
                    # Empty-cluster repair: re-seed at the point farthest
                    # from its assigned centroid.
                    farthest = int(np.argmax(dists[np.arange(n), labels]))
                    new_centroids[j] = points[farthest]
            shift = float(np.linalg.norm(new_centroids - centroids))
            centroids = new_centroids
            if shift <= self.tol:
                break

        dists = euclidean_distance(points, centroids)
        labels = np.argmin(dists, axis=1)
        self.centroids_ = centroids
        self.labels_ = labels
        self.inertia_ = float(np.sum(dists[np.arange(n), labels] ** 2))
        return self

    @staticmethod
    def _kmeans_pp_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centroids apart."""
        n = points.shape[0]
        centroids = np.empty((k, points.shape[1]), dtype=np.float64)
        first = int(rng.integers(n))
        centroids[0] = points[first]
        closest_sq = euclidean_distance(points, centroids[:1])[:, 0] ** 2
        for j in range(1, k):
            total = float(closest_sq.sum())
            if total <= 0.0:
                # All remaining points coincide with a centroid; pick uniformly.
                choice = int(rng.integers(n))
            else:
                choice = int(rng.choice(n, p=closest_sq / total))
            centroids[j] = points[choice]
            new_sq = euclidean_distance(points, centroids[j : j + 1])[:, 0] ** 2
            closest_sq = np.minimum(closest_sq, new_sq)
        return centroids

    # -- inference ----------------------------------------------------

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Assign each row of ``points`` to its nearest centroid."""
        if self.centroids_ is None:
            raise NotFittedError("KMeans.predict called before fit")
        points = np.asarray(points, dtype=np.float64)
        squeeze = points.ndim == 1
        dists = euclidean_distance(points, self.centroids_)
        labels = np.argmin(dists, axis=1)
        return labels[0] if squeeze else labels

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Fit on ``points`` and return their assignments."""
        self.fit(points)
        assert self.labels_ is not None
        return self.labels_
