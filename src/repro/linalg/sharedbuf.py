"""Shared-memory numpy buffers with explicit ownership.

A :class:`SharedBuffer` is a numpy array living in a named
``multiprocessing.shared_memory`` segment, so worker processes can map
the same bytes read-only at zero copy cost.  The abstraction carries
three rules the process-backend scan path depends on:

* **ownership** — the process that created a segment unlinks it; an
  attached view only closes its mapping.  Handles are refcounted
  (:meth:`addref` / :meth:`close`), and the owner's final ``close()``
  both closes and unlinks, so "who frees this" is never ambiguous;
* **tracker hygiene** — Python 3.10–3.12 double-register *attached*
  segments with the ``multiprocessing`` resource tracker, which would
  unlink the owner's segment when the attaching process exits.  The
  attach path undoes that registration (3.13+ offers ``track=False``);
* **fallback** — when shared memory is unavailable (or the caller asks
  for a process-local buffer), the same API wraps an ordinary ndarray
  and :meth:`spec` returns ``None``, so callers degrade to pickling
  the array instead of crashing.

The module keeps a registry of live *owned* segments
(:func:`live_segment_names`) so tests can prove engine ``close()``
leaks nothing, and an ``atexit`` hook force-releases whatever an
unclosed owner left behind — the segment name must never outlive the
process.
"""

from __future__ import annotations

import atexit
import threading
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

try:  # pragma: no cover - stdlib on every supported platform
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - shared memory unavailable
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

__all__ = [
    "ArrayBuffer",
    "BufferSpec",
    "PlainBuffer",
    "SharedBuffer",
    "live_segment_names",
    "shared_memory_available",
]


@dataclass(frozen=True)
class BufferSpec:
    """Everything needed to attach a buffer from another process.

    ``kind`` selects the transport: ``"shm"`` names a
    ``multiprocessing.shared_memory`` segment, ``"mmap"`` names a
    committed segment *file* (``name`` is then its filesystem path)
    that the attaching process memory-maps read-only.  One picklable
    spec type flows through the worker command pipe either way.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str
    kind: str = "shm"


@runtime_checkable
class ArrayBuffer(Protocol):
    """The one buffer abstraction every scan path speaks.

    Implementations — :class:`SharedBuffer` (named shared memory),
    :class:`~repro.storage.MappedBuffer` (a memory-mapped segment
    file) and :class:`PlainBuffer` (an ordinary process-local array) —
    share refcounted ownership (:meth:`addref` / :meth:`close`) and a
    :meth:`spec` that says how *another process* reaches the same
    bytes (``None`` when it cannot; callers then ship the array).
    """

    @property
    def array(self) -> np.ndarray: ...

    @property
    def nbytes(self) -> int: ...

    def spec(self) -> "BufferSpec | None": ...

    def addref(self) -> "ArrayBuffer": ...

    def close(self) -> None: ...


_live_lock = threading.Lock()
#: Owned segments not yet released, by segment name (leak accounting).
_live: dict[str, "SharedBuffer"] = {}


def shared_memory_available() -> bool:
    """Whether named shared-memory segments exist on this platform."""
    return shared_memory is not None


def live_segment_names() -> list[str]:
    """Names of owned segments not yet released (sorted).

    An engine that built shared scan state and then ``close()``-d must
    leave this empty — the leak test asserts exactly that.
    """
    with _live_lock:
        return sorted(_live)


def _forget_inherited() -> None:
    """Drop registry entries inherited across a ``fork()``.

    Called at worker-process startup: the forked copy of the registry
    describes segments the *parent* owns, and a worker must neither
    unlink them nor count them against its own leak accounting.
    """
    with _live_lock:
        _live.clear()


def _attach_segment(name: str) -> "shared_memory.SharedMemory":
    assert shared_memory is not None
    try:
        # Python 3.13+: opt out of resource tracking at attach time.
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    # 3.10-3.12 register attached segments with the resource tracker
    # too, so the tracker would unlink the owner's segment when the
    # attaching process exits.  Unregistering after the fact is wrong —
    # a forked worker shares the parent's tracker, and the tracker's
    # per-name bookkeeping is a set, so an unregister from the attacher
    # erases the OWNER's registration.  Suppress the registration call
    # instead: cleanup belongs to the creating process alone.
    if resource_tracker is None:  # pragma: no cover - tracker always ships with shm
        return shared_memory.SharedMemory(name=name)
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register  # type: ignore[assignment]


class SharedBuffer:
    """A numpy array over a named shared-memory segment (or a plain
    process-local array when sharing is unavailable or unwanted).

    Construct via :meth:`from_array` (owner side, copies the source
    into a fresh segment) or :meth:`attach` (worker side, read-only
    view over an owner's :class:`BufferSpec`).
    """

    def __init__(
        self,
        array: np.ndarray,
        segment: "shared_memory.SharedMemory | None",
        owner: bool,
    ) -> None:
        self._array: np.ndarray | None = array
        self._segment = segment
        self._owner = owner
        self._name = segment.name if segment is not None else None
        self._refs = 1
        self._lock = threading.Lock()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_array(cls, source: np.ndarray, shared: bool = True) -> "SharedBuffer":
        """Copy ``source`` into a fresh owned buffer.

        ``shared=True`` places the copy in a named segment when the
        platform provides one and the array is non-empty (zero-size
        segments are not representable); otherwise the buffer wraps an
        ordinary process-local copy and :meth:`spec` returns ``None``.
        """
        source = np.ascontiguousarray(source)
        if not shared or shared_memory is None or source.nbytes == 0:
            return cls(np.array(source, dtype=source.dtype, copy=True), None, owner=True)
        segment = shared_memory.SharedMemory(create=True, size=source.nbytes)
        array: np.ndarray = np.ndarray(source.shape, dtype=source.dtype, buffer=segment.buf)
        array[...] = source
        buffer = cls(array, segment, owner=True)
        with _live_lock:
            _live[segment.name] = buffer
        return buffer

    @classmethod
    def attach(cls, spec: BufferSpec) -> "SharedBuffer":
        """A read-only view over a segment created in another process."""
        if spec.kind != "shm":
            raise ValueError(f"SharedBuffer cannot attach a {spec.kind!r} spec")
        if shared_memory is None:  # pragma: no cover - platform without shm
            raise RuntimeError("shared memory is unavailable on this platform")
        segment = _attach_segment(spec.name)
        array: np.ndarray = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
        array.flags.writeable = False
        return cls(array, segment, owner=False)

    # -- the view ----------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """The numpy view; invalid once the buffer is fully closed."""
        if self._array is None:
            raise ValueError("SharedBuffer used after close()")
        return self._array

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def closed(self) -> bool:
        return self._array is None

    def spec(self) -> BufferSpec | None:
        """How another process attaches this buffer; ``None`` for the
        process-local fallback (callers then ship the array itself)."""
        if self._segment is None or self._name is None:
            return None
        return BufferSpec(
            name=self._name,
            shape=tuple(self.array.shape),
            dtype=str(self.array.dtype),
        )

    # -- lifecycle ---------------------------------------------------------

    def addref(self) -> "SharedBuffer":
        """Share this handle; every ``addref()`` needs its own
        :meth:`close`.  The segment is released at refcount zero."""
        with self._lock:
            if self._array is None:
                raise ValueError("SharedBuffer used after close()")
            self._refs += 1
        return self

    def close(self) -> None:
        """Drop one reference; the last drop releases the mapping and —
        on the owner — unlinks the segment name.  Idempotent once the
        refcount reaches zero."""
        with self._lock:
            if self._array is None:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._array = None
            segment, self._segment = self._segment, None
        if segment is None:
            return
        if self._owner and self._name is not None:
            with _live_lock:
                _live.pop(self._name, None)
        try:
            segment.close()
        except BufferError:
            # Some ndarray view of the mapping is still referenced; the
            # mapping is freed when that view dies (worst case process
            # exit).  The unlink below still removes the segment *name*,
            # which is what leak accounting measures.
            pass
        if self._owner:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass

    def _force_close(self) -> None:
        """Release regardless of outstanding refs (atexit safety net)."""
        with self._lock:
            self._refs = min(self._refs, 1)
        self.close()


class PlainBuffer:
    """An :class:`ArrayBuffer` over an ordinary process-local ndarray.

    The degenerate transport: :meth:`spec` is ``None`` (another process
    cannot reach these bytes by name), but the refcounted handle lets
    eager snapshot loads hand their stacked matrix to a scan method
    without copying — the same adoption contract a
    :class:`~repro.storage.MappedBuffer` satisfies for mapped loads.
    """

    def __init__(self, array: np.ndarray) -> None:
        self._array: np.ndarray | None = np.asarray(array)  # repro-lint: disable=RL003 -- adopts the caller's dtype verbatim; coercing would break the zero-copy contract
        self._refs = 1
        self._lock = threading.Lock()

    @property
    def array(self) -> np.ndarray:
        if self._array is None:
            raise ValueError("PlainBuffer used after close()")
        return self._array

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def closed(self) -> bool:
        return self._array is None

    def spec(self) -> BufferSpec | None:
        return None

    def addref(self) -> "PlainBuffer":
        with self._lock:
            if self._array is None:
                raise ValueError("PlainBuffer used after close()")
            self._refs += 1
        return self

    def close(self) -> None:
        with self._lock:
            if self._array is None:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._array = None


def _release_leftovers() -> None:
    """Unlink owned segments an unclosed owner left behind.

    Registered at import: without this, a leaked segment's name would
    survive in ``/dev/shm`` past process exit (the stdlib resource
    tracker would eventually reap it, loudly; this reaps it quietly and
    deterministically).
    """
    with _live_lock:
        leftovers = list(_live.values())
    for buffer in leftovers:
        buffer._force_close()


atexit.register(_release_leftovers)
