"""Numeric kernels shared across the library: distances, top-k,
k-means, segment reductions and shared-memory buffers."""

from repro.linalg.distances import (
    Metric,
    cosine_similarity,
    dot_similarity,
    euclidean_distance,
    normalize_rows,
    pairwise_distance,
    pairwise_similarity,
    row_norms,
    similarity,
)
from repro.linalg.kmeans import KMeans
from repro.linalg.segment import segment_scores
from repro.linalg.sharedbuf import (
    ArrayBuffer,
    BufferSpec,
    PlainBuffer,
    SharedBuffer,
    live_segment_names,
    shared_memory_available,
)
from repro.linalg.topk import top_k_indices, top_k_indices_rowwise

__all__ = [
    "ArrayBuffer",
    "BufferSpec",
    "KMeans",
    "Metric",
    "PlainBuffer",
    "SharedBuffer",
    "cosine_similarity",
    "dot_similarity",
    "euclidean_distance",
    "live_segment_names",
    "normalize_rows",
    "pairwise_distance",
    "pairwise_similarity",
    "row_norms",
    "segment_scores",
    "shared_memory_available",
    "similarity",
    "top_k_indices",
    "top_k_indices_rowwise",
]
