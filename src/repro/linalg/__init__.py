"""Numeric kernels shared across the library: distances, top-k, k-means."""

from repro.linalg.distances import (
    Metric,
    cosine_similarity,
    dot_similarity,
    euclidean_distance,
    normalize_rows,
    pairwise_distance,
    pairwise_similarity,
    row_norms,
    similarity,
)
from repro.linalg.kmeans import KMeans
from repro.linalg.topk import top_k_indices, top_k_indices_rowwise

__all__ = [
    "KMeans",
    "Metric",
    "cosine_similarity",
    "dot_similarity",
    "euclidean_distance",
    "normalize_rows",
    "pairwise_distance",
    "pairwise_similarity",
    "row_norms",
    "similarity",
    "top_k_indices",
    "top_k_indices_rowwise",
]
