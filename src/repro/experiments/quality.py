"""Search-quality experiment: regenerates Tables 1, 2 and 3.

Protocol (paper Sec 5):

1. generate the corpus (WikiTables-like or EDP-like);
2. split the 3,117 judged pairs into 1,918 training / 1,199 test by
   query;
3. for each dataset scale (SD 10% / MD 50% / LD 100%): index the
   partition with the shared encoder, train the trainable baselines
   (MDR field weights, WS regression, TCS forest) on the training
   split, then evaluate every method on the test split's queries of
   the requested length category;
4. report MAP, MRR and NDCG@{5,10,15,20} per method, ordered by MAP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import make_baseline
from repro.core.engine import DiscoveryEngine
from repro.data.corpus import Corpus, DatasetScale
from repro.data.edp import generate_edp_corpus
from repro.data.queries import QueryCategory
from repro.data.wikitables import generate_wikitables_corpus
from repro.eval.qrels import Qrels
from repro.eval.runner import MethodReport, evaluate_method
from repro.eval.splits import train_test_split_pairs
from repro.experiments.config import BASELINE_METHODS, CORE_METHODS, ExperimentConfig

__all__ = ["QualityCell", "run_quality_experiment", "make_corpus", "prepare_methods"]


@dataclass
class QualityCell:
    """One table cell group: a method's metrics at one dataset scale."""

    scale: DatasetScale
    method: str
    report: MethodReport


def make_corpus(config: ExperimentConfig) -> Corpus:
    """Instantiate the configured corpus."""
    if config.corpus == "wikitables":
        return generate_wikitables_corpus(n_tables=config.n_tables, seed=config.seed)
    if config.corpus == "edp":
        return generate_edp_corpus(n_tables=config.n_tables, seed=config.seed)
    raise ValueError(f"unknown corpus {config.corpus!r}")


def prepare_methods(
    corpus: Corpus,
    scale: DatasetScale,
    config: ExperimentConfig,
    train_qrels: Qrels,
) -> dict[str, object]:
    """Index every configured method over one scale partition.

    Returns a name -> searcher mapping; every searcher exposes
    ``search(query, k=...)``.
    """
    federation = corpus.federation(scale)
    engine = DiscoveryEngine(dim=config.encoder_dim, method_params=config.core_params())
    engine.index(federation)

    searchers: dict[str, object] = {}
    for name in config.methods:
        if name in CORE_METHODS:
            searchers[name] = engine.method(name)
        elif name in BASELINE_METHODS:
            baseline = make_baseline(name, **config.baseline_params(name))
            baseline.index_federation(federation, engine.embeddings)
            if hasattr(baseline, "fit"):
                baseline.fit(train_qrels.pairs())
            searchers[name] = baseline
        else:
            raise ValueError(f"unknown method {name!r}")
    return searchers


def run_quality_experiment(
    config: ExperimentConfig,
    category: QueryCategory,
    scales: tuple[DatasetScale, ...] = (
        DatasetScale.LARGE,
        DatasetScale.MODERATE,
        DatasetScale.SMALL,
    ),
    corpus: Corpus | None = None,
) -> list[QualityCell]:
    """Run one of Tables 1-3 (pick the query category).

    Returns cells grouped by scale, each scale's methods sorted by
    descending MAP (the paper's row order).
    """
    corpus = corpus if corpus is not None else make_corpus(config)
    train_qrels, test_qrels = train_test_split_pairs(
        corpus.qrels, train_fraction=config.train_fraction, seed=config.seed
    )
    category_texts = set(corpus.query_texts(category))

    cells: list[QualityCell] = []
    for scale in scales:
        scale_ids = {corpus.qualified_id(r) for r in corpus.partition_relations(scale)}
        scoped_train = train_qrels.restrict_to(scale_ids)
        scoped_test = Qrels()
        for query, relation_id, grade in test_qrels.restrict_to(scale_ids).pairs():
            if query in category_texts:
                scoped_test.add(query, relation_id, grade)
        searchers = prepare_methods(corpus, scale, config, scoped_train)
        scale_cells = []
        for name, searcher in searchers.items():
            report = evaluate_method(
                searcher, scoped_test, k=config.k, method_name=name
            )
            scale_cells.append(QualityCell(scale=scale, method=name, report=report))
        scale_cells.sort(key=lambda c: -c.report.map)
        cells.extend(scale_cells)
    return cells
