"""Render experiment results as the paper's tables."""

from __future__ import annotations

from collections import defaultdict

from repro.experiments.quality import QualityCell

__all__ = ["format_quality_table", "format_timing_table"]


def format_quality_table(cells: list[QualityCell], title: str) -> str:
    """Paper-style quality table (Tables 1-3 layout).

    Columns: Dataset | Method | MAP | MRR | NDCG@5 | @10 | @15 | @20.
    """
    lines = [title, "=" * len(title)]
    header = f"{'Dataset':8} {'Method':6} {'MAP':>6} {'MRR':>6} " + " ".join(
        f"N@{k:<3}" for k in (5, 10, 15, 20)
    )
    lines.append(header)
    lines.append("-" * len(header))
    by_scale: dict[str, list[QualityCell]] = defaultdict(list)
    for cell in cells:
        by_scale[cell.scale.value].append(cell)
    for scale in ("LD", "MD", "SD"):
        for i, cell in enumerate(by_scale.get(scale, [])):
            r = cell.report
            scale_label = scale if i == 0 else ""
            ndcg = " ".join(f"{r.ndcg[k]:.3f}" for k in (5, 10, 15, 20))
            lines.append(
                f"{scale_label:8} {cell.method.upper():6} {r.map:6.3f} {r.mrr:6.3f} {ndcg}"
            )
        if scale in by_scale:
            lines.append("-" * len(header))
    return "\n".join(lines)


def format_timing_table(rows: list[tuple[str, str, dict[str, float]]], title: str) -> str:
    """Timing table: (scale, query category) rows x method columns (ms)."""
    lines = [title, "=" * len(title)]
    if not rows:
        return "\n".join(lines)
    methods = list(rows[0][2].keys())
    header = f"{'Dataset':8} {'Query':9} " + " ".join(f"{m.upper():>8}" for m in methods)
    lines.append(header)
    lines.append("-" * len(header))
    last_scale = None
    for scale, category, times in rows:
        label = scale if scale != last_scale else ""
        last_scale = scale
        cells = " ".join(f"{times[m]:8.1f}" for m in methods)
        lines.append(f"{label:8} {category:9} {cells}")
    return "\n".join(lines)
