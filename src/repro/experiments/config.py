"""Experiment configuration shared by the quality and timing runs."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentConfig", "ALL_METHODS", "CORE_METHODS", "BASELINE_METHODS"]

CORE_METHODS = ("cts", "anns", "exs")
BASELINE_METHODS = ("mdr", "ws", "tcs", "adh", "tml")
ALL_METHODS = CORE_METHODS + BASELINE_METHODS


@dataclass
class ExperimentConfig:
    """Knobs for one experiment run.

    The defaults are the scaled-down equivalents of the paper's setup
    (see DESIGN.md): a few hundred tables instead of 1.6M, encoder at
    256 dims instead of 768, 60 queries, 3,117 judged pairs.
    """

    corpus: str = "wikitables"  # or "edp"
    n_tables: int = 400
    encoder_dim: int = 256
    k: int = 50
    h: float = 0.0
    seed: int = 0
    methods: tuple[str, ...] = ALL_METHODS
    train_fraction: float = 1918 / 3117
    method_params: dict[str, dict] = field(default_factory=dict)

    def core_params(self) -> dict[str, dict]:
        """Method-param overrides for the DiscoveryEngine."""
        return {
            name: params
            for name, params in self.method_params.items()
            if name in CORE_METHODS
        }

    def baseline_params(self, name: str) -> dict:
        return dict(self.method_params.get(name, {}))
