"""Experiment harness regenerating every table and figure of the paper.

* :mod:`repro.experiments.config` — experiment configuration.
* :mod:`repro.experiments.quality` — Tables 1-3 (MAP/MRR/NDCG per
  query category, per dataset scale, per method).
* :mod:`repro.experiments.timing` — Table 4 and Figure 3 (query time).
* :mod:`repro.experiments.casestudy` — Sec 5.3's qualitative
  CTS-vs-ExS-vs-ANNS comparison.
* :mod:`repro.experiments.tables` — paper-style table rendering.
"""

from repro.experiments.casestudy import (
    CASE_STUDY_QUERY,
    CaseStudyReport,
    build_case_study_corpus,
    run_case_study,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.quality import QualityCell, run_quality_experiment
from repro.experiments.tables import format_quality_table, format_timing_table
from repro.experiments.timing import TimingCell, run_timing_experiment

__all__ = [
    "CASE_STUDY_QUERY",
    "CaseStudyReport",
    "ExperimentConfig",
    "QualityCell",
    "TimingCell",
    "build_case_study_corpus",
    "format_quality_table",
    "format_timing_table",
    "run_case_study",
    "run_quality_experiment",
    "run_timing_experiment",
]
