"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments table1            # long-query quality
    python -m repro.experiments table2            # moderate
    python -m repro.experiments table3            # short
    python -m repro.experiments table4            # CTS vs ANNS latency
    python -m repro.experiments figure3           # all-method runtime
    python -m repro.experiments casestudy         # Sec 5.3
    python -m repro.experiments all               # everything above

Options scale the experiment (defaults match the production config in
EXPERIMENTS.md): ``--tables N``, ``--dim D``, ``--corpus wikitables|edp``,
``--seed S``.
"""

from __future__ import annotations

import argparse
import sys

from repro.data.queries import QueryCategory
from repro.experiments.casestudy import CASE_STUDY_QUERY, run_case_study
from repro.experiments.config import ExperimentConfig
from repro.experiments.quality import make_corpus, run_quality_experiment
from repro.experiments.tables import format_quality_table, format_timing_table
from repro.experiments.timing import run_timing_experiment, timing_rows

_QUALITY = {
    "table1": (QueryCategory.LONG, "Table 1: Quality of long query results"),
    "table2": (QueryCategory.MODERATE, "Table 2: Quality of moderate query results"),
    "table3": (QueryCategory.SHORT, "Table 3: Quality of short query results"),
}


def _run_quality(name: str, config: ExperimentConfig, corpus) -> None:
    category, title = _QUALITY[name]
    cells = run_quality_experiment(config, category, corpus=corpus)
    print(format_quality_table(cells, title))
    print()


def _run_table4(config: ExperimentConfig, corpus) -> None:
    cells = run_timing_experiment(config, corpus=corpus)
    rows = timing_rows(cells, ("cts", "anns"))
    print(format_timing_table(rows, "Table 4: Query Time (ms) for CTS vs. ANNS"))
    print()


def _run_figure3(config: ExperimentConfig, corpus) -> None:
    cells = run_timing_experiment(
        config, categories=(QueryCategory.LONG,), corpus=corpus
    )
    rows = timing_rows(cells, tuple(config.methods))
    print(format_timing_table(rows, "Figure 3: runtime (ms/query, long queries)"))
    print()


def _run_casestudy(config: ExperimentConfig) -> None:
    print(f'Sec 5.3 case study — query: "{CASE_STUDY_QUERY}"')
    reports = run_case_study(dim=config.encoder_dim, seed=config.seed)
    for method in ("exs", "anns", "cts"):
        print(reports[method].summary())
    print()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=[*_QUALITY, "table4", "figure3", "casestudy", "all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument("--tables", type=int, default=400, help="corpus size (LD)")
    parser.add_argument("--dim", type=int, default=256, help="encoder dimensionality")
    parser.add_argument("--corpus", default="wikitables", choices=["wikitables", "edp"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    config = ExperimentConfig(
        corpus=args.corpus, n_tables=args.tables, encoder_dim=args.dim, seed=args.seed
    )
    wanted = (
        [args.artifact]
        if args.artifact != "all"
        else ["table1", "table2", "table3", "table4", "figure3", "casestudy"]
    )
    corpus = make_corpus(config) if any(w != "casestudy" for w in wanted) else None
    if corpus is not None:
        print(corpus.describe())
        print()
    for artifact in wanted:
        if artifact in _QUALITY:
            _run_quality(artifact, config, corpus)
        elif artifact == "table4":
            _run_table4(config, corpus)
        elif artifact == "figure3":
            _run_figure3(config, corpus)
        else:
            _run_casestudy(config)
    return 0


if __name__ == "__main__":
    sys.exit(main())
