"""Query-latency experiment: regenerates Table 4 and Figure 3.

For every dataset scale and query-length category, each method's
per-query wall-clock search latency is measured over warm indexes
(indexing/time-to-build is excluded, as in the paper).  Table 4
compares CTS vs ANNS; Figure 3 covers all methods.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.corpus import Corpus, DatasetScale
from repro.data.queries import QueryCategory
from repro.eval.splits import train_test_split_pairs
from repro.eval.timing import TimingReport, time_queries
from repro.experiments.config import ExperimentConfig
from repro.experiments.quality import make_corpus, prepare_methods

__all__ = ["TimingCell", "run_timing_experiment"]

_CATEGORY_LABELS = {
    QueryCategory.LONG: "Long",
    QueryCategory.MODERATE: "Moderate",
    QueryCategory.SHORT: "Short",
}


@dataclass
class TimingCell:
    """Latency of one method at one (scale, query category)."""

    scale: DatasetScale
    category: QueryCategory
    method: str
    report: TimingReport


def run_timing_experiment(
    config: ExperimentConfig,
    scales: tuple[DatasetScale, ...] = (
        DatasetScale.LARGE,
        DatasetScale.MODERATE,
        DatasetScale.SMALL,
    ),
    categories: tuple[QueryCategory, ...] = (
        QueryCategory.LONG,
        QueryCategory.MODERATE,
        QueryCategory.SHORT,
    ),
    queries_per_category: int = 5,
    corpus: Corpus | None = None,
) -> list[TimingCell]:
    """Measure per-query latency for every (scale, category, method)."""
    corpus = corpus if corpus is not None else make_corpus(config)
    train_qrels, _ = train_test_split_pairs(
        corpus.qrels, train_fraction=config.train_fraction, seed=config.seed
    )
    cells: list[TimingCell] = []
    for scale in scales:
        scale_ids = {corpus.qualified_id(r) for r in corpus.partition_relations(scale)}
        searchers = prepare_methods(corpus, scale, config, train_qrels.restrict_to(scale_ids))
        for category in categories:
            queries = corpus.query_texts(category)[:queries_per_category]
            for name, searcher in searchers.items():
                report = time_queries(
                    searcher, queries, k=config.k, warmup=1, method_name=name
                )
                cells.append(
                    TimingCell(scale=scale, category=category, method=name, report=report)
                )
    return cells


def timing_rows(
    cells: list[TimingCell], methods: tuple[str, ...]
) -> list[tuple[str, str, dict[str, float]]]:
    """Reshape cells into (scale, category, {method: mean_ms}) rows."""
    rows: dict[tuple[str, str], dict[str, float]] = {}
    scale_order = {"LD": 0, "MD": 1, "SD": 2}
    cat_order = {"Long": 0, "Moderate": 1, "Short": 2}
    for cell in cells:
        if cell.method not in methods:
            continue
        key = (cell.scale.value, _CATEGORY_LABELS[cell.category])
        rows.setdefault(key, {})[cell.method] = cell.report.mean_ms
    ordered = sorted(rows.items(), key=lambda kv: (scale_order[kv[0][0]], cat_order[kv[0][1]]))
    return [(scale, category, times) for (scale, category), times in ordered]
