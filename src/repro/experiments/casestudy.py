"""The Sec 5.3 case study: "Climate Change Effects Europe 2020".

The paper contrasts the three methods on one query whose corpus
contains *confounders*: tables about climate change in other regions,
about Europe in other years, and about other topics entirely.  The
claims: ExS's all-attribute averaging dilutes the region/year focus;
ANNS blends context; CTS isolates the relevant cluster and retrieves
the targeted tables.

:func:`build_case_study_corpus` constructs exactly that situation from
the shared synthesizer, and :func:`run_case_study` measures how each
method ranks the four groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import DiscoveryEngine
from repro.data.synthesis import CorpusSynthesizer
from repro.data.topics import topic_by_name
from repro.datamodel.relation import Federation, Relation

__all__ = [
    "CASE_STUDY_QUERY",
    "CaseStudyGroups",
    "CaseStudyReport",
    "build_case_study_corpus",
    "run_case_study",
]

CASE_STUDY_QUERY = "climate change effects europe 2020"

_TARGET_TOPIC = "climate_indicators"
_TARGET_REGION = "europe"
_TARGET_YEAR = 2020
_OTHER_REGIONS = ("north_america", "asia", "africa")
_OTHER_YEARS = (2016, 2018, 2022)
_UNRELATED_TOPICS = ("football_leagues", "gdp_growth", "lunar_observation", "crop_harvest")


@dataclass
class CaseStudyGroups:
    """Relation names per group, keyed by the confounder type."""

    targets: list[str] = field(default_factory=list)
    wrong_region: list[str] = field(default_factory=list)
    wrong_year: list[str] = field(default_factory=list)
    unrelated: list[str] = field(default_factory=list)

    def group_of(self, relation_id: str) -> str:
        name = relation_id.split("/")[-1]
        for group in ("targets", "wrong_region", "wrong_year", "unrelated"):
            if name in getattr(self, group):
                return group
        return "unknown"


def build_case_study_corpus(
    n_per_group: int = 5, seed: int = 0
) -> tuple[Federation, CaseStudyGroups]:
    """A federation with targets and the paper's three confounder groups."""
    synth = CorpusSynthesizer("casestudy", n_tables=20, seed=seed)
    topic = topic_by_name(_TARGET_TOPIC)
    groups = CaseStudyGroups()
    relations: list[Relation] = []
    index = 0

    def add(relation: Relation, group: list[str]) -> None:
        group.append(relation.name)
        relations.append(relation)

    for i in range(n_per_group):
        add(synth._make_table(index, topic, _TARGET_REGION, _TARGET_YEAR), groups.targets)
        index += 1
        region = _OTHER_REGIONS[i % len(_OTHER_REGIONS)]
        add(synth._make_table(index, topic, region, _TARGET_YEAR), groups.wrong_region)
        index += 1
        year = _OTHER_YEARS[i % len(_OTHER_YEARS)]
        add(synth._make_table(index, topic, _TARGET_REGION, year), groups.wrong_year)
        index += 1
        other = topic_by_name(_UNRELATED_TOPICS[i % len(_UNRELATED_TOPICS)])
        add(synth._make_table(index, other, region, year), groups.unrelated)
        index += 1

    return Federation.from_relations(relations, name="casestudy"), groups


@dataclass
class CaseStudyReport:
    """Per-method outcome of the case study."""

    method: str
    ranking_groups: list[str]
    target_precision_at_k: float
    mean_target_rank: float
    k: int = 5

    def summary(self) -> str:
        head = " ".join(g[:6] for g in self.ranking_groups[:8])
        return (
            f"{self.method.upper():5} P@{self.k}(targets)="
            f"{self.target_precision_at_k:.2f} mean target rank="
            f"{self.mean_target_rank:.1f} top: {head}"
        )


def run_case_study(
    dim: int = 192,
    k: int = 5,
    n_per_group: int = 5,
    seed: int = 0,
    methods: tuple[str, ...] = ("exs", "anns", "cts"),
) -> dict[str, CaseStudyReport]:
    """Run the query through each method and grade the outcome.

    Returns per-method reports: the group label of each of the top-k
    results, the fraction of targets in the top-k, and the mean rank of
    the target tables in the full ranking.
    """
    federation, groups = build_case_study_corpus(n_per_group=n_per_group, seed=seed)
    engine = DiscoveryEngine(
        dim=dim,
        method_params={"cts": {"min_cluster_size": 8, "umap_neighbors": 8}},
    )
    engine.index(federation)

    reports: dict[str, CaseStudyReport] = {}
    for method in methods:
        result = engine.search(
            CASE_STUDY_QUERY, method=method, k=federation.num_relations, h=-1.0
        )
        ranked_groups = [groups.group_of(rid) for rid in result.relation_ids()]
        top_k = ranked_groups[:k]
        precision = sum(1 for g in top_k if g == "targets") / k
        target_ranks = [
            rank
            for rank, rid in enumerate(result.relation_ids(), start=1)
            if groups.group_of(rid) == "targets"
        ]
        # unranked targets (possible for CTS's targeted retrieval) count
        # as ranking at the bottom
        while len(target_ranks) < n_per_group:
            target_ranks.append(federation.num_relations)
        reports[method] = CaseStudyReport(
            method=method,
            ranking_groups=ranked_groups,
            target_precision_at_k=precision,
            mean_target_rank=sum(target_ranks) / len(target_ranks),
            k=k,
        )
    return reports
