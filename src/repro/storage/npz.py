"""The legacy ``.npz`` adapter — the only sanctioned raw numpy I/O.

Before the segment format, every persistence path wrote its own
``np.savez_compressed`` file.  Those snapshots must keep loading, and
the cold-start benchmark needs the compressed-archive baseline to
measure against — so the raw ``np.savez``/``np.load`` calls live here,
inside ``repro.storage`` where the RL006 lint rule allows them, and
nowhere else.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

import numpy as np

__all__ = ["is_npz", "load_npz", "save_npz"]


def is_npz(path: "str | Path") -> bool:
    """Whether ``path`` is a legacy single-file archive (PK zip magic)."""
    path = Path(path)
    if not path.is_file():
        return False
    try:
        with open(path, "rb") as fh:
            return fh.read(2) == b"PK"
    except OSError:
        return False


def save_npz(path: "str | Path", arrays: Mapping[str, np.ndarray]) -> None:
    """Write one compressed legacy archive (benchmark baseline only)."""
    np.savez_compressed(path, **arrays)


def load_npz(path: "str | Path") -> "dict[str, np.ndarray]":
    """Read every array of a legacy archive eagerly."""
    with np.load(path, allow_pickle=False) as data:
        return {name: data[name] for name in data.files}
