"""The segment snapshot format: append-only, checksummed, atomic.

A snapshot is a directory of raw little-endian array **segments** and
JSON **documents**, described by one ``manifest.json`` that carries
each payload's dtype/shape, byte size and crc32 digest plus the store
``generation`` the snapshot captures.  The manifest is the commit
point:

* every payload file is written to a hidden temp name, flushed,
  ``fsync``-ed and ``os.replace``-d into place *before* the manifest;
* payload files are **epoch-prefixed** (``00000007.vectors.seg``), so
  re-committing over an existing snapshot never overwrites a file a
  concurrent reader may have mapped — the new epoch lands beside the
  old one and the manifest swap retargets readers atomically;
* the manifest itself goes through the same temp + fsync + ``replace``
  dance, then the directory entry is fsynced.  A crash at any point
  leaves either the previous complete snapshot or the new one — never
  a torn mix;
* after the commit, payload files of older epochs are deleted.

Integrity is checked at two strengths: :func:`open_snapshot` stat-checks
every payload's byte size (catching truncation without reading data —
cheap enough for the mmap fast path), and eager reads
(:meth:`SegmentSnapshot.array` / :meth:`~SegmentSnapshot.json`) verify
the full crc32 digest.  Mapped reads skip the digest by design: paging
in every byte to hash it would defeat lazy page-in, and the size check
still catches torn writes.  Any violation raises
:class:`~repro.errors.StorageError` — never garbage ranks.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import StorageError
from repro.obs import MetricsRegistry
from repro.storage.mapped import MappedBuffer

__all__ = ["SegmentSnapshot", "SegmentWriter", "is_snapshot", "open_snapshot"]

MANIFEST = "manifest.json"
FORMAT = "repro-segments-v1"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")
_EPOCH_RE = re.compile(r"^\d{8}\.")
_TMP_PREFIX = ".tmp."


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise StorageError(f"invalid segment name {name!r}")
    return name


def _little_endian(array: np.ndarray) -> np.ndarray:
    """C-contiguous little-endian bytes, converting only if needed."""
    array = np.ascontiguousarray(array)
    if array.dtype.byteorder == ">":
        array = array.astype(array.dtype.newbyteorder("<"))
    return array


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def _write_file(directory: Path, filename: str, data: bytes) -> None:
    """Write ``data`` durably: temp file, flush, fsync, atomic rename."""
    tmp = directory / f"{_TMP_PREFIX}{filename}"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, directory / filename)


class SegmentWriter:
    """Stage arrays and JSON documents, then :meth:`commit` atomically.

    One writer produces one snapshot epoch.  Nothing touches the target
    directory until ``commit()``; a writer that is never committed
    leaves an existing snapshot exactly as it was.
    """

    def __init__(
        self,
        path: "str | Path",
        generation: int = 0,
        meta: "dict[str, Any] | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.path = Path(path)
        self.generation = int(generation)
        self.meta = dict(meta or {})
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._arrays: dict[str, np.ndarray] = {}
        self._documents: dict[str, bytes] = {}

    def add_array(self, name: str, array: np.ndarray) -> None:
        """Stage one numeric array segment."""
        _validate_name(name)
        if name in self._arrays or name in self._documents:
            raise StorageError(f"segment {name!r} staged twice")
        self._arrays[name] = _little_endian(np.asarray(array))

    def add_json(self, name: str, obj: Any) -> None:
        """Stage one JSON document (strings, ids, nested metadata)."""
        _validate_name(name)
        if name in self._arrays or name in self._documents:
            raise StorageError(f"segment {name!r} staged twice")
        self._documents[name] = json.dumps(obj, ensure_ascii=False).encode("utf-8")

    def _next_epoch(self) -> int:
        manifest_path = self.path / MANIFEST
        if not manifest_path.exists():
            return 0
        try:
            previous = json.loads(manifest_path.read_text(encoding="utf-8"))
            return int(previous.get("epoch", -1)) + 1
        except (OSError, ValueError):
            return 0

    def commit(self) -> Path:
        """Durably publish the staged payloads as the new snapshot.

        Payload files first (temp + fsync + rename, epoch-prefixed so
        nothing a reader may hold open is overwritten), the manifest
        last as the commit point, then older-epoch payloads are swept.
        Returns the snapshot directory.
        """
        with self.metrics.timer("storage.commit_ms"):
            self.path.mkdir(parents=True, exist_ok=True)
            epoch = self._next_epoch()
            prefix = f"{epoch:08d}."
            segments: dict[str, Any] = {}
            documents: dict[str, Any] = {}
            for name, array in self._arrays.items():
                filename = f"{prefix}{name}.seg"
                data = array.tobytes(order="C")
                _write_file(self.path, filename, data)
                segments[name] = {
                    "file": filename,
                    "dtype": array.dtype.str,
                    "shape": list(array.shape),
                    "nbytes": len(data),
                    "crc32": zlib.crc32(data),
                }
            for name, data in self._documents.items():
                filename = f"{prefix}{name}.json"
                _write_file(self.path, filename, data)
                documents[name] = {
                    "file": filename,
                    "nbytes": len(data),
                    "crc32": zlib.crc32(data),
                }
            manifest = {
                "format": FORMAT,
                "epoch": epoch,
                "generation": self.generation,
                "meta": self.meta,
                "segments": segments,
                "documents": documents,
            }
            _write_file(self.path, MANIFEST, json.dumps(manifest, indent=2).encode("utf-8"))
            _fsync_dir(self.path)
            self._sweep(prefix)
        self.metrics.gauge("storage.segments").set(float(len(segments) + len(documents)))
        return self.path

    def _sweep(self, keep_prefix: str) -> None:
        """Delete payload files of older epochs and stray temp files."""
        for entry in self.path.iterdir():
            if not entry.is_file():
                continue
            name = entry.name
            stale_epoch = _EPOCH_RE.match(name) and not name.startswith(keep_prefix)
            if stale_epoch or name.startswith(_TMP_PREFIX):
                try:
                    entry.unlink()
                except OSError:  # pragma: no cover - concurrent sweep
                    pass


class SegmentSnapshot:
    """A committed snapshot, opened for reading.

    :meth:`array` materializes a segment eagerly with full digest
    verification; :meth:`mapped` returns a refcounted
    :class:`~repro.storage.MappedBuffer` over the same file (size
    checked, lazily paged); :meth:`json` decodes a document.
    """

    def __init__(self, path: Path, manifest: dict[str, Any], metrics: MetricsRegistry) -> None:
        self.path = path
        self.metrics = metrics
        self.epoch = int(manifest["epoch"])
        self.generation = int(manifest["generation"])
        self.meta: dict[str, Any] = manifest.get("meta", {})
        self._segments: dict[str, Any] = manifest.get("segments", {})
        self._documents: dict[str, Any] = manifest.get("documents", {})

    def segment_names(self) -> list[str]:
        return sorted(self._segments)

    def document_names(self) -> list[str]:
        return sorted(self._documents)

    def _entry(self, table: dict[str, Any], name: str, what: str) -> dict[str, Any]:
        entry = table.get(name)
        if entry is None:
            raise StorageError(f"snapshot {self.path} has no {what} named {name!r}")
        return entry

    def _read_verified(self, entry: dict[str, Any], name: str) -> bytes:
        data = (self.path / entry["file"]).read_bytes()
        if len(data) != int(entry["nbytes"]):
            raise StorageError(
                f"segment {name!r} in {self.path} is {len(data)} bytes, "
                f"manifest says {entry['nbytes']} — torn write?"
            )
        if zlib.crc32(data) != int(entry["crc32"]):
            raise StorageError(
                f"segment {name!r} in {self.path} fails its crc32 digest — corruption"
            )
        return data

    def array(self, name: str) -> np.ndarray:
        """Eagerly read one array segment (size + digest verified).

        The returned array is read-only (it views the verified byte
        string); callers that mutate must copy.
        """
        entry = self._entry(self._segments, name, "array segment")
        with self.metrics.timer("storage.load_ms"):
            data = self._read_verified(entry, name)
            array = np.frombuffer(data, dtype=np.dtype(entry["dtype"]))
        return array.reshape(tuple(entry["shape"]))

    def mapped(self, name: str) -> MappedBuffer:
        """Map one array segment read-only (size verified, lazy pages).

        The caller owns the returned handle and must :meth:`close
        <repro.storage.MappedBuffer.close>` it.
        """
        entry = self._entry(self._segments, name, "array segment")
        with self.metrics.timer("storage.load_ms"):
            return MappedBuffer.from_file(
                self.path / entry["file"],
                np.dtype(entry["dtype"]),
                tuple(entry["shape"]),
            )

    def json(self, name: str) -> Any:
        """Decode one JSON document (size + digest verified)."""
        entry = self._entry(self._documents, name, "document")
        with self.metrics.timer("storage.load_ms"):
            data = self._read_verified(entry, name)
        return json.loads(data.decode("utf-8"))

    def _stat_check(self) -> None:
        """Cheap integrity pass: every payload's size matches the
        manifest.  Catches truncation without touching data pages."""
        for table, what in ((self._segments, "segment"), (self._documents, "document")):
            for name, entry in table.items():
                target = self.path / entry["file"]
                try:
                    actual = target.stat().st_size
                except OSError as exc:
                    raise StorageError(
                        f"{what} {name!r} of snapshot {self.path} is missing: {exc}"
                    ) from exc
                if actual != int(entry["nbytes"]):
                    raise StorageError(
                        f"{what} {name!r} of snapshot {self.path} is {actual} "
                        f"bytes, manifest says {entry['nbytes']} — torn write?"
                    )


def is_snapshot(path: "str | Path") -> bool:
    """Whether ``path`` is a committed segment-snapshot directory."""
    manifest_path = Path(path) / MANIFEST
    if not manifest_path.is_file():
        return False
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return False
    return isinstance(manifest, dict) and manifest.get("format") == FORMAT


def open_snapshot(
    path: "str | Path", metrics: "MetricsRegistry | None" = None
) -> SegmentSnapshot:
    """Open a snapshot directory, validating manifest and payload sizes."""
    path = Path(path)
    manifest_path = path / MANIFEST
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise StorageError(f"no snapshot at {path}: {exc}") from exc
    except ValueError as exc:
        raise StorageError(f"snapshot manifest {manifest_path} is malformed: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT:
        raise StorageError(
            f"snapshot manifest {manifest_path} has format "
            f"{manifest.get('format')!r}, expected {FORMAT!r}"
        )
    snapshot = SegmentSnapshot(
        path, manifest, metrics if metrics is not None else MetricsRegistry()
    )
    snapshot._stat_check()
    return snapshot
