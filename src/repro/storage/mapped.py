"""Memory-mapped segment buffers: millisecond cold starts, lazy page-in.

A :class:`MappedBuffer` is the ``mmap`` transport of the
:class:`~repro.linalg.ArrayBuffer` protocol: a read-only ``np.memmap``
over a committed segment file.  Opening one touches no data pages —
the kernel pages bytes in on first access — so ``load_index(...,
mmap=True)`` returns in milliseconds regardless of index size, and the
first scan pays the I/O exactly once, amortized over the rows it
actually reads.

Because the backing store is a *file*, :meth:`spec` names its path
(``BufferSpec(kind="mmap")``): a process-backend worker attaches by
mapping the same file, so publishing a mapped shard copies nothing —
no ``shared_memory`` allocation, no bytes through the command pipe,
and every process shares one page-cache copy.

The module keeps a registry of live mapped buffers so tests can assert
engine ``close()`` releases every mapping and the ``storage.
mapped_bytes`` gauge can report what is currently served off files.
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np

from repro.errors import StorageError
from repro.linalg.sharedbuf import BufferSpec

__all__ = ["MappedBuffer", "live_mapped_nbytes", "live_mapped_paths"]

_live_lock = threading.Lock()
#: Open mapped buffers by identity (leak + mapped_bytes accounting).
_live: dict[int, "MappedBuffer"] = {}


def live_mapped_paths() -> list[str]:
    """Paths of segment files with an open mapping (sorted, unique).

    An engine that served from mapped segments and then ``close()``-d
    must leave this empty — the leak tests assert exactly that.
    """
    with _live_lock:
        return sorted({str(buffer._path) for buffer in _live.values()})


def live_mapped_nbytes() -> int:
    """Total bytes addressable through open mapped buffers."""
    with _live_lock:
        return sum(buffer._nbytes for buffer in _live.values())


class MappedBuffer:
    """A read-only numpy view over a memory-mapped segment file.

    Construct via :meth:`from_file` (loader side) or :meth:`attach`
    (worker side, from a ``kind="mmap"`` :class:`BufferSpec`).  Handles
    are refcounted like :class:`~repro.linalg.SharedBuffer`: every
    :meth:`addref` needs its own :meth:`close`, and the last close
    drops the mapping.
    """

    def __init__(self, path: Path, array: np.ndarray, nbytes: int) -> None:
        self._path = path
        self._array: np.ndarray | None = array
        self._nbytes = nbytes
        self._refs = 1
        self._lock = threading.Lock()
        with _live_lock:
            _live[id(self)] = self

    @classmethod
    def from_file(
        cls, path: "str | Path", dtype: "str | np.dtype", shape: tuple[int, ...]
    ) -> "MappedBuffer":
        """Map ``path`` as a C-order array of ``dtype`` and ``shape``.

        The file's size must equal the array's byte size exactly — a
        torn write fails here, not as garbage rows mid-scan.  Zero-size
        arrays (an empty shard's matrix) are represented without a
        mapping: ``mmap`` cannot map an empty file.
        """
        path = Path(path)
        dt = np.dtype(dtype)
        expected = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        try:
            actual = path.stat().st_size
        except OSError as exc:
            raise StorageError(f"segment file {path} is unreadable: {exc}") from exc
        if actual != expected:
            raise StorageError(
                f"segment file {path} is {actual} bytes but manifest says "
                f"{expected} (dtype {dt.str}, shape {tuple(shape)}) — torn write?"
            )
        if expected == 0:
            array = np.empty(shape, dtype=dt)
            array.flags.writeable = False
        else:
            array = np.memmap(path, dtype=dt, mode="r", shape=tuple(shape), order="C")
        return cls(path, array, expected)

    @classmethod
    def attach(cls, spec: BufferSpec) -> "MappedBuffer":
        """Map the segment file a ``kind="mmap"`` spec names."""
        if spec.kind != "mmap":
            raise ValueError(f"MappedBuffer cannot attach a {spec.kind!r} spec")
        return cls.from_file(spec.name, spec.dtype, tuple(spec.shape))

    @property
    def path(self) -> Path:
        return self._path

    @property
    def array(self) -> np.ndarray:
        """The read-only view; invalid once the buffer is fully closed."""
        if self._array is None:
            raise ValueError("MappedBuffer used after close()")
        return self._array

    @property
    def nbytes(self) -> int:
        return self._nbytes

    @property
    def closed(self) -> bool:
        return self._array is None

    def spec(self) -> BufferSpec:
        """How another process maps the same file (always possible)."""
        return BufferSpec(
            name=str(self._path),
            shape=tuple(self.array.shape),
            dtype=str(self.array.dtype),
            kind="mmap",
        )

    def addref(self) -> "MappedBuffer":
        """Share this handle; every ``addref()`` needs its own
        :meth:`close`.  The mapping is dropped at refcount zero."""
        with self._lock:
            if self._array is None:
                raise ValueError("MappedBuffer used after close()")
            self._refs += 1
        return self

    def close(self) -> None:
        """Drop one reference; the last drop unmaps the file.  Views
        handed out via :attr:`array` keep the pages alive until they
        die — the registry entry goes now either way, which is what
        leak accounting measures."""
        with self._lock:
            if self._array is None:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._array = None
        with _live_lock:
            _live.pop(id(self), None)
        # Never mmap.close() here: numpy releases its Py_buffer export
        # right after construction, so close() would munmap under any
        # ndarray views still alive (instant segfault on next read).
        # Dropping our reference lets the mapping unwind through GC the
        # moment the last view dies.
