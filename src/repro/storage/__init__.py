"""One persistence layer for every snapshot the library writes.

``repro.storage`` is the single place bytes meet disk: an append-only,
checksummed, atomically-committed **segment snapshot** format
(:mod:`repro.storage.segment`), a memory-mapped read path
(:mod:`repro.storage.mapped`) that makes cold starts O(1) in index
size, and the quarantined legacy ``.npz`` adapter
(:mod:`repro.storage.npz`).  Federation embeddings, the vector
database and the engine's sharded index snapshots all persist through
this package — the RL006 lint rule bans raw ``np.save``/``np.load``/
``np.memmap`` everywhere else.
"""

from repro.storage.mapped import MappedBuffer, live_mapped_nbytes, live_mapped_paths
from repro.storage.segment import (
    FORMAT,
    MANIFEST,
    SegmentSnapshot,
    SegmentWriter,
    is_snapshot,
    open_snapshot,
)

__all__ = [
    "FORMAT",
    "MANIFEST",
    "MappedBuffer",
    "SegmentSnapshot",
    "SegmentWriter",
    "is_snapshot",
    "live_mapped_nbytes",
    "live_mapped_paths",
    "open_snapshot",
]
