"""The motivating COVID-19 federation from Figure 1 of the paper.

Three relations from three health organizations, each describing COVID
vaccinations with *different vocabulary*: WHO uses vaccine trade names
(Comirnaty, Vaxzevria...), CDC uses immunogen types (mRNA, vector
virus...), and only ECDC mentions the literal keyword "COVID-19".
Keyword search for "COVID" finds only ECDC; semantic matching should
surface all three.
"""

from __future__ import annotations

from repro.datamodel.relation import Federation, Relation

__all__ = ["covid_federation", "who_relation", "cdc_relation", "ecdc_relation"]


def who_relation() -> Relation:
    """WHO: vaccinations by region, vaccines named by trade name."""
    return Relation(
        "WHO",
        ["Region", "Date", "Vaccine", "Dosage"],
        [
            ["North America", "2021-01-01", "Comirnaty", "First"],
            ["Europe", "2021-02-01", "Vaxzevria", "Second"],
            ["Asia", "2021-03-01", "CoronaVac", "First"],
            ["Africa", "2021-04-01", "Covaxin", "Second"],
        ],
        caption="vaccination records by world region",
    )


def cdc_relation() -> Relation:
    """CDC: vaccinations by US state, vaccines named by immunogen."""
    return Relation(
        "CDC",
        ["State", "Date", "Immunogen", "Manufacturer"],
        [
            ["California", "2021-01-01", "mRNA", "Moderna"],
            ["Texas", "2021-02-01", "Vector Virus", "Janssen"],
            ["Florida", "2021-03-01", "mRNA", "Pfizer"],
            ["New York", "2021-04-01", "Protein Subunit", "Novavax"],
        ],
        caption="immunization by state and manufacturer",
    )


def ecdc_relation() -> Relation:
    """ECDC: vaccinations by EU country, with an explicit Disease column."""
    return Relation(
        "ECDC",
        ["Country", "Date", "Trade Name", "Disease"],
        [
            ["Germany", "2021-01-01", "Pfizer-BioNTech", "COVID-19"],
            ["France", "2021-02-01", "AstraZeneca", "COVID-19"],
            ["Spain", "2021-03-01", "Moderna", "COVID-19"],
            ["Italy", "2021-04-01", "Pfizer-BioNTech", "COVID-19"],
        ],
        caption="vaccination by eu country",
    )


def distractor_relations() -> list[Relation]:
    """Unrelated tables that a good method must rank below the trio."""
    return [
        Relation(
            "FootballResults",
            ["Team", "Year", "Trophy"],
            [["Ajax", "2021", "League"], ["PSV", "2020", "Cup"], ["Feyenoord", "2019", "Cup"]],
            caption="football league results netherlands",
        ),
        Relation(
            "GDPFigures",
            ["Country", "Year", "GDP"],
            [["Germany", "2020", "3.8"], ["France", "2020", "2.6"], ["Italy", "2020", "1.9"]],
            caption="gross domestic product by country",
        ),
        Relation(
            "MoonPhases",
            ["Date", "Phase", "Illumination"],
            [["2021-01-06", "Last Quarter", "50"], ["2021-01-13", "New Moon", "0"]],
            caption="phases of the moon calendar",
        ),
    ]


def covid_federation(include_distractors: bool = True) -> Federation:
    """The Figure 1 federation (optionally with distractor tables)."""
    relations = [who_relation(), cdc_relation(), ecdc_relation()]
    if include_distractors:
        relations.extend(distractor_relations())
    return Federation.from_relations(relations, name="covid")
