"""Latent topics grounding the synthetic corpora.

Each topic names the lexicon concepts that supply its content terms,
the entity concepts usable as facet values (regions), and caption
phrasing.  Tables, queries and relevance grades are all derived from
these topics, which is what makes the generated relevance judgments
principled rather than arbitrary: a query and a table are related
exactly when they were generated from related topics/facets.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Topic", "TOPICS", "REGION_CONCEPTS", "YEARS"]

#: Facet dimension 1: the geographic entity concepts in the lexicon.
REGION_CONCEPTS = ("europe", "north_america", "asia", "africa")

#: Facet dimension 2: the year range tables/queries may be about.
YEARS = tuple(range(2015, 2024))


@dataclass(frozen=True)
class Topic:
    """One latent topic.

    Attributes
    ----------
    name:
        Topic identifier.
    concepts:
        Lexicon concepts whose member terms fill the topic's content
        cells and query keywords.
    caption_nouns:
        Noun phrases used in captions and queries (kept distinct from
        concept surface forms so caption and body vocabulary differ).
    value_columns:
        Names of the numeric measure columns this topic's tables use.
    related:
        Topics considered *partially* relevant (grade 1) to this one.
    """

    name: str
    concepts: tuple[str, ...]
    caption_nouns: tuple[str, ...]
    value_columns: tuple[str, ...]
    related: tuple[str, ...] = ()


TOPICS: tuple[Topic, ...] = (
    Topic(
        name="covid_vaccination",
        concepts=("covid_vaccine", "vaccine", "immunogen"),
        caption_nouns=("vaccination campaign", "immunization rollout", "vaccine doses"),
        value_columns=("Doses", "Coverage"),
        related=("disease_surveillance",),
    ),
    Topic(
        name="disease_surveillance",
        concepts=("disease", "symptom", "hospital"),
        caption_nouns=("disease surveillance", "hospital admissions", "infection cases"),
        value_columns=("Cases", "Admissions"),
        related=("covid_vaccination",),
    ),
    Topic(
        name="football_leagues",
        concepts=("football",),
        caption_nouns=("football league results", "soccer standings", "league table"),
        value_columns=("Goals", "Points"),
        related=("olympic_games",),
    ),
    Topic(
        name="olympic_games",
        concepts=("olympics",),
        caption_nouns=("olympic medal count", "games results", "medal standings"),
        value_columns=("Gold", "Medals"),
        related=("football_leagues",),
    ),
    Topic(
        name="climate_indicators",
        concepts=("climate_change", "weather"),
        caption_nouns=("climate indicators", "warming trends", "temperature anomalies"),
        value_columns=("Temperature", "Emissions"),
        related=("energy_mix",),
    ),
    Topic(
        name="energy_mix",
        concepts=("energy",),
        caption_nouns=("energy production", "electricity mix", "power generation"),
        value_columns=("Output", "Share"),
        related=("climate_indicators",),
    ),
    Topic(
        name="gdp_growth",
        concepts=("economy", "finance"),
        caption_nouns=("economic output", "gdp figures", "growth statistics"),
        value_columns=("GDP", "Growth"),
        related=("trade_flows", "labour_market"),
    ),
    Topic(
        name="trade_flows",
        concepts=("trade",),
        caption_nouns=("trade balance", "export statistics", "import volumes"),
        value_columns=("Exports", "Imports"),
        related=("gdp_growth",),
    ),
    Topic(
        name="labour_market",
        concepts=("employment",),
        caption_nouns=("employment statistics", "labour market", "jobless rates"),
        value_columns=("Employed", "Rate"),
        related=("gdp_growth",),
    ),
    Topic(
        name="lunar_observation",
        concepts=("moon", "astronomy"),
        caption_nouns=("lunar phases", "moon observation", "night sky calendar"),
        value_columns=("Illumination", "Magnitude"),
    ),
    Topic(
        name="transport_traffic",
        concepts=("transport",),
        caption_nouns=("traffic volumes", "passenger transport", "transit ridership"),
        value_columns=("Passengers", "Volume"),
    ),
    Topic(
        name="crop_harvest",
        concepts=("agriculture", "food"),
        caption_nouns=("crop harvest", "agricultural yield", "farm production"),
        value_columns=("Yield", "Hectares"),
    ),
    Topic(
        name="tech_adoption",
        concepts=("technology", "telecom"),
        caption_nouns=("technology adoption", "broadband coverage", "internet usage"),
        value_columns=("Users", "Penetration"),
    ),
    Topic(
        name="elections_population",
        concepts=("politics", "population"),
        caption_nouns=("election turnout", "census figures", "population statistics"),
        value_columns=("Turnout", "Population"),
    ),
    Topic(
        name="school_enrollment",
        concepts=("education",),
        caption_nouns=("school enrollment", "education statistics", "student numbers"),
        value_columns=("Students", "Enrollment"),
    ),
    Topic(
        name="music_charts",
        concepts=("music", "film"),
        caption_nouns=("music charts", "album sales", "box office"),
        value_columns=("Sales", "Weeks"),
    ),
    Topic(
        name="historical_battles",
        concepts=("history",),
        caption_nouns=("historical battles", "military history", "war chronology"),
        value_columns=("Casualties", "Duration"),
    ),
)


def topic_by_name(name: str) -> Topic:
    """Look up a topic (raises KeyError for unknown names)."""
    for topic in TOPICS:
        if topic.name == name:
            return topic
    raise KeyError(name)
