"""Query specifications: QS-1/QS-2 styles, SQ/MQ/LQ length categories."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["QueryCategory", "QuerySource", "QuerySpec"]


class QueryCategory(str, enum.Enum):
    """The paper's query length taxonomy (Sec 5, Queries)."""

    SHORT = "SQ"  # <= 3 keywords
    MODERATE = "MQ"  # <= 30 keywords, typically a sentence
    LONG = "LQ"  # 30..300 keywords

    @property
    def max_keywords(self) -> int:
        return {"SQ": 3, "MQ": 30, "LQ": 300}[self.value]


class QuerySource(str, enum.Enum):
    """Which query-log style a query imitates.

    QS-1: Mechanical-Turk style topical phrases ("Beijing Olympics",
    "Phases of the Moon"); QS-2: Google-Squared attribute style
    ("Irish counties area", "EU countries year joined").
    """

    QS1 = "QS-1"
    QS2 = "QS-2"


@dataclass(frozen=True)
class QuerySpec:
    """A generated query plus the latent variables that produced it.

    The latent topic/facet fields exist so qrels can be derived
    consistently; retrieval methods only ever see ``text``.
    """

    text: str
    category: QueryCategory
    source: QuerySource
    topic: str
    region: str | None = None
    year: int | None = None

    @property
    def n_keywords(self) -> int:
        return len(self.text.split())

    def is_facet_specific(self) -> bool:
        """Whether the query pins a region or year facet."""
        return self.region is not None or self.year is not None
