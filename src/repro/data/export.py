"""Export generated corpora to plain files and re-import them.

Lets downstream users inspect the benchmark data (or swap in their own)
without going through the generator: one CSV per table, a queries TSV,
and the qrels JSON — plus a loader building a :class:`Corpus` back from
such a directory.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.data.corpus import Corpus
from repro.data.queries import QueryCategory, QuerySource, QuerySpec
from repro.datamodel.loaders import relation_from_csv
from repro.errors import DataGenerationError
from repro.eval.qrels import Qrels

__all__ = ["export_corpus", "load_corpus"]

_META = "corpus.json"


def export_corpus(corpus: Corpus, directory: str | Path) -> Path:
    """Write a corpus to ``directory`` (tables/, queries.tsv, qrels.json).

    Returns the directory path.  Captions, metadata and the latent
    facets (the generation ground truth) go into ``corpus.json``.
    """
    directory = Path(directory)
    tables_dir = directory / "tables"
    tables_dir.mkdir(parents=True, exist_ok=True)

    for relation in corpus.relations:
        with open(tables_dir / f"{relation.name}.csv", "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(relation.schema)
            for row in relation:
                writer.writerow(row.values)

    with open(directory / "queries.tsv", "w") as fh:
        fh.write("category\tsource\ttopic\tregion\tyear\ttext\n")
        for q in corpus.queries:
            fh.write(
                f"{q.category.value}\t{q.source.value}\t{q.topic}\t"
                f"{q.region or ''}\t{q.year or ''}\t{q.text}\n"
            )

    corpus.qrels.save(directory / "qrels.json")

    meta = {
        "name": corpus.name,
        "numeric_cell_fraction": corpus.numeric_cell_fraction,
        "captions": {r.name: r.caption for r in corpus.relations},
        "metadata": {r.name: r.metadata for r in corpus.relations},
        "facets": {rid: list(facet) for rid, facet in corpus.table_facets.items()},
    }
    with open(directory / _META, "w") as fh:
        json.dump(meta, fh, indent=1)
    return directory


def load_corpus(directory: str | Path) -> Corpus:
    """Rebuild a corpus from a directory written by :func:`export_corpus`."""
    directory = Path(directory)
    meta_path = directory / _META
    if not meta_path.exists():
        raise DataGenerationError(f"{directory} has no {_META}; not an exported corpus")
    with open(meta_path) as fh:
        meta = json.load(fh)

    relations = []
    for path in sorted((directory / "tables").glob("*.csv")):
        relation = relation_from_csv(path, caption=meta["captions"].get(path.stem, ""))
        relation.metadata.update(meta["metadata"].get(path.stem, {}))
        relations.append(relation)
    if not relations:
        raise DataGenerationError(f"{directory}/tables contains no CSV files")

    queries: list[QuerySpec] = []
    with open(directory / "queries.tsv") as fh:
        next(fh)  # header
        for line in fh:
            category, source, topic, region, year, text = line.rstrip("\n").split("\t", 5)
            queries.append(
                QuerySpec(
                    text=text,
                    category=QueryCategory(category),
                    source=QuerySource(source),
                    topic=topic,
                    region=region or None,
                    year=int(year) if year else None,
                )
            )

    return Corpus(
        name=meta["name"],
        relations=relations,
        table_facets={rid: tuple(facet) for rid, facet in meta["facets"].items()},
        queries=queries,
        qrels=Qrels.load(directory / "qrels.json"),
        numeric_cell_fraction=meta["numeric_cell_fraction"],
    )
