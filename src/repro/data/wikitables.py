"""The WikiTables-like corpus.

The real benchmark (Zhang & Balog, 2018) has 1.6M Wikipedia tables
with captions and 3,117 graded query-table pairs; 26.9% of cells are
numeric.  This generator reproduces the benchmark's *shape* at
laptop scale: captioned topic tables, the 3,117-pair judgment budget,
the 60-query QS-1/QS-2 mix, and the numeric-cell ratio (via one
numeric measure column plus the year column against three-ish text
columns).
"""

from __future__ import annotations

from repro.data.corpus import Corpus
from repro.data.synthesis import CorpusSynthesizer

__all__ = ["generate_wikitables_corpus"]


def generate_wikitables_corpus(
    n_tables: int = 600,
    n_queries: int = 60,
    pairs_target: int = 3117,
    seed: int = 0,
) -> Corpus:
    """Generate the WikiTables-like benchmark corpus.

    Defaults follow the paper's experimental protocol scaled down:
    60 queries, 3,117 judged pairs, ~27% numeric cells.
    """
    return CorpusSynthesizer(
        name="wikitables",
        n_tables=n_tables,
        n_queries=n_queries,
        pairs_target=pairs_target,
        n_value_columns=1,
        filler_probability=0.5,
        rows_range=(4, 9),
        date_style="date",
        extra_numeric_probability=0.55,
        seed=seed,
    ).build()
