"""The Corpus container: relations + queries + qrels + scale partitions."""

from __future__ import annotations

import enum
import math
from collections import defaultdict
from dataclasses import dataclass, field

from repro.data.queries import QueryCategory, QuerySpec
from repro.datamodel.relation import Dataset, Federation, Relation
from repro.errors import DataGenerationError
from repro.eval.qrels import Qrels

__all__ = ["Corpus", "DatasetScale"]


class DatasetScale(str, enum.Enum):
    """The paper's scalability partitions (Sec 5, Datasets)."""

    SMALL = "SD"  # 10% of the original data
    MODERATE = "MD"  # 50%
    LARGE = "LD"  # 100%

    @property
    def fraction(self) -> float:
        return {"SD": 0.10, "MD": 0.50, "LD": 1.00}[self.value]


@dataclass
class Corpus:
    """A generated benchmark: tables, their latent facets, queries, qrels.

    ``table_facets`` maps each qualified relation id to the
    ``(topic, region, year)`` that generated it — the ground truth the
    qrels were derived from, kept for analysis and tests.
    """

    name: str
    relations: list[Relation]
    table_facets: dict[str, tuple[str, str, int]]
    queries: list[QuerySpec]
    qrels: Qrels
    numeric_cell_fraction: float = 0.0
    _partition_cache: dict[DatasetScale, Federation] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if not self.relations:
            raise DataGenerationError("corpus has no relations")

    # -- ids ----------------------------------------------------------------

    def qualified_id(self, relation: Relation) -> str:
        return f"{self.name}/{relation.name}"

    def relation_ids(self) -> list[str]:
        return [self.qualified_id(r) for r in self.relations]

    # -- partitions ------------------------------------------------------------

    def partition_relations(self, scale: DatasetScale) -> list[Relation]:
        """The scale's relation subset, stratified by topic.

        Taking the first ``fraction`` of each topic's tables (in
        generation order) keeps every topic represented at every scale,
        so quality differences across scales measure corpus *size*, not
        corpus composition.
        """
        if scale is DatasetScale.LARGE:
            return list(self.relations)
        by_topic: dict[str, list[Relation]] = defaultdict(list)
        for relation in self.relations:
            topic, _, _ = self.table_facets[self.qualified_id(relation)]
            by_topic[topic].append(relation)
        kept: list[Relation] = []
        for topic in sorted(by_topic):
            members = by_topic[topic]
            kept.extend(members[: max(1, math.ceil(scale.fraction * len(members)))])
        # Preserve original generation order.
        order = {r.name: i for i, r in enumerate(self.relations)}
        kept.sort(key=lambda r: order[r.name])
        return kept

    def federation(self, scale: DatasetScale = DatasetScale.LARGE) -> Federation:
        """A federation over the scale's relations (cached per scale)."""
        if scale not in self._partition_cache:
            dataset = Dataset(self.name, self.partition_relations(scale))
            self._partition_cache[scale] = Federation(
                name=f"{self.name}-{scale.value}", datasets=[dataset]
            )
        return self._partition_cache[scale]

    def qrels_for(self, scale: DatasetScale = DatasetScale.LARGE) -> Qrels:
        """Qrels restricted to the scale's relations."""
        if scale is DatasetScale.LARGE:
            return self.qrels
        ids = {self.qualified_id(r) for r in self.partition_relations(scale)}
        return self.qrels.restrict_to(ids)

    # -- queries ------------------------------------------------------------------

    def queries_of(self, category: QueryCategory) -> list[QuerySpec]:
        return [q for q in self.queries if q.category is category]

    def query_texts(self, category: QueryCategory | None = None) -> list[str]:
        specs = self.queries if category is None else self.queries_of(category)
        return [q.text for q in specs]

    def qrels_of(
        self, category: QueryCategory, scale: DatasetScale = DatasetScale.LARGE
    ) -> Qrels:
        """Scale-restricted qrels for one query-length category."""
        texts = set(self.query_texts(category))
        scoped = self.qrels_for(scale)
        out = Qrels()
        for query, relation_id, grade in scoped.pairs():
            if query in texts:
                out.add(query, relation_id, grade)
        return out

    # -- summary --------------------------------------------------------------------

    def describe(self) -> str:
        """One-line corpus summary for logs and experiment headers."""
        cats = {c.value: len(self.queries_of(c)) for c in QueryCategory}
        return (
            f"{self.name}: {len(self.relations)} tables, "
            f"{len(self.queries)} queries {cats}, {self.qrels.n_pairs} judged pairs, "
            f"{self.numeric_cell_fraction:.1%} numeric cells"
        )
