"""The shared table / query / qrels generator.

Everything is driven by one latent model: a table is generated from a
``(topic, region, year)`` triple; a query from a topic plus optional
region/year facets; relevance grades follow from the latent variables
(same topic + compatible facets = 2; same topic, facet mismatch, or a
related topic = 1; otherwise 0).

Surface forms are sampled from the concept lexicon's synonym sets
independently for tables and queries, so a fully relevant pair often
shares *no* keywords — the regime in which syntactic baselines fail
and semantic matching is required (the paper's motivating example).
"""

from __future__ import annotations

import math
import string

import numpy as np

from repro.data.corpus import Corpus
from repro.data.queries import QueryCategory, QuerySource, QuerySpec
from repro.data.topics import REGION_CONCEPTS, TOPICS, YEARS, Topic
from repro.datamodel.relation import Relation
from repro.errors import DataGenerationError
from repro.eval.qrels import Qrels
from repro.text.lexicon import ConceptLexicon, default_lexicon
from repro.text.tokenize import Tokenizer, is_numeric_token

__all__ = ["CorpusSynthesizer"]

_ENTITY_COLUMN_NAMES = ("Region", "Country", "State", "Area", "Territory")
_CATEGORY_COLUMN_NAMES = ("Category", "Type", "Item", "Subject", "Name")
_FILLER_WORDS = (
    "report", "overview", "summary", "record", "entry", "series", "index",
    "figure", "listing", "note", "status", "detail", "reference", "update",
)


class CorpusSynthesizer:
    """Deterministic benchmark generator.

    Parameters
    ----------
    name:
        Corpus name ("wikitables", "edp", ...).
    n_tables:
        Total relations to generate (the LD scale).
    n_queries:
        Query count (the paper uses 60: 30 QS-1 + 30 QS-2).
    pairs_target:
        Total judged (query, table) pairs (the paper: 3,117).
    n_value_columns:
        Numeric measure columns per table; the main numeric-fraction
        control knob.
    filler_probability:
        Chance a table gets an extra free-text filler column — the
        generic content that dilutes ExS's all-attribute averaging.
    rows_range:
        Inclusive (min, max) rows per table.
    metadata_fields:
        Extra per-table metadata fields to synthesize (e.g. EDP-style
        ``publisher``/``license``).
    caption_noise:
        Fraction of tables whose caption is uninformative filler.
    seed:
        Master seed; every artifact is a pure function of it.
    """

    def __init__(
        self,
        name: str,
        n_tables: int = 600,
        n_queries: int = 60,
        pairs_target: int = 3117,
        n_value_columns: int = 1,
        filler_probability: float = 0.5,
        rows_range: tuple[int, int] = (4, 9),
        metadata_fields: tuple[str, ...] = (),
        date_style: str = "year",
        extra_numeric_probability: float = 0.0,
        caption_noise: float = 0.25,
        lexicon: ConceptLexicon | None = None,
        seed: int = 0,
    ) -> None:
        if date_style not in ("year", "date"):
            raise DataGenerationError("date_style must be 'year' or 'date'")
        if n_tables < len(TOPICS):
            raise DataGenerationError(
                f"n_tables must be >= {len(TOPICS)} so every topic appears"
            )
        if n_queries < 6:
            raise DataGenerationError("n_queries must be >= 6 (two per category)")
        self.name = name
        self.n_tables = n_tables
        self.n_queries = n_queries
        self.pairs_target = pairs_target
        self.n_value_columns = n_value_columns
        self.filler_probability = filler_probability
        self.rows_range = rows_range
        self.metadata_fields = metadata_fields
        self.date_style = date_style
        self.extra_numeric_probability = extra_numeric_probability
        if not 0.0 <= caption_noise <= 1.0:
            raise DataGenerationError("caption_noise must be in [0, 1]")
        self.caption_noise = caption_noise
        self.lexicon = lexicon if lexicon is not None else default_lexicon()
        self.seed = seed
        self._tokenizer = Tokenizer()

    # -- helpers ---------------------------------------------------------

    def _terms(self, concept: str, role: str = "any") -> list[str]:
        """Surface forms of a concept, restricted by role.

        Region concepts pool their descendant (country) terms, since a
        table about Europe lists European countries in its cells.
        Concepts with at least four surface forms are split: tables
        render the first half, queries the second half.  This is the
        paper's Figure 1 situation made systematic — a relevant
        query-table pair activates the same concept through
        *different* words, so lexical overlap is an unreliable
        relevance signal while semantic matching still works.
        """
        terms = sorted(self.lexicon.descendant_terms(concept))
        if not terms:
            raise DataGenerationError(f"lexicon has no terms for concept {concept!r}")
        if role == "any" or len(terms) < 4:
            return terms
        half = len(terms) // 2
        return terms[:half] if role == "table" else terms[half:]

    def _sample_term(
        self, concept: str, rng: np.random.Generator, role: str = "any"
    ) -> str:
        terms = self._terms(concept, role)
        return terms[int(rng.integers(len(terms)))]

    @staticmethod
    def _code(rng: np.random.Generator) -> str:
        letters = "".join(
            string.ascii_uppercase[int(i)] for i in rng.integers(0, 26, size=2)
        )
        return f"{letters}{int(rng.integers(100, 999))}"

    # -- tables ------------------------------------------------------------

    def _make_table(self, index: int, topic: Topic, region: str, year: int) -> Relation:
        rng = np.random.default_rng((self.seed, 1, index))
        n_rows = int(rng.integers(self.rows_range[0], self.rows_range[1] + 1))

        entity_col = _ENTITY_COLUMN_NAMES[int(rng.integers(len(_ENTITY_COLUMN_NAMES)))]
        category_col = _CATEGORY_COLUMN_NAMES[int(rng.integers(len(_CATEGORY_COLUMN_NAMES)))]
        value_cols = list(topic.value_columns[: self.n_value_columns])
        while len(value_cols) < self.n_value_columns:
            value_cols.append(f"Value{len(value_cols)}")
        if self.extra_numeric_probability and rng.random() < self.extra_numeric_probability:
            value_cols.append("Total")
        has_filler = bool(rng.random() < self.filler_probability)

        time_col = "Year" if self.date_style == "year" else "Date"
        schema = [entity_col, category_col, "Detail", time_col, *value_cols]
        if has_filler:
            schema.append("Code")

        rows = []
        region_terms = self._terms(region, role="table")
        for _ in range(n_rows):
            entity = region_terms[int(rng.integers(len(region_terms)))]
            concept = topic.concepts[int(rng.integers(len(topic.concepts)))]
            category = self._sample_term(concept, rng, role="table")
            detail_concept = topic.concepts[int(rng.integers(len(topic.concepts)))]
            detail = self._sample_term(detail_concept, rng, role="table")
            if self.date_style == "year":
                time_value = str(year)
            else:
                time_value = (
                    f"{year}-{int(rng.integers(1, 13)):02d}-{int(rng.integers(1, 29)):02d}"
                )
            row = [entity, category, detail, time_value]
            row.extend(str(int(rng.integers(10, 100000))) for _ in value_cols)
            if has_filler:
                row.append(self._code(rng))
            rows.append(row)

        # Tables caption with the FIRST noun variant only; queries use
        # the remaining variants, so captions are never quoted verbatim
        # (MQ/LQ queries otherwise hand lexical baselines the answer).
        # Captions also UNDERSPECIFY the facets — real captions rarely
        # state both region and period — so table-level rankers cannot
        # recover what the cell values carry (the paper's argument for
        # value-level matching).  A fraction of captions is entirely
        # uninformative ("status report 0423"), as is common for web
        # tables, which only content-level matching can survive.
        if rng.random() < self.caption_noise:
            caption = (
                f"{_FILLER_WORDS[int(rng.integers(len(_FILLER_WORDS)))]} "
                f"{self._code(rng).lower()}"
            )
        else:
            noun = topic.caption_nouns[0]
            caption_parts = [noun]
            if rng.random() < 0.5:
                caption_parts.append(region_terms[int(rng.integers(len(region_terms)))])
            if rng.random() < 0.35:
                caption_parts.append(str(year))
            caption_parts.append(_FILLER_WORDS[int(rng.integers(len(_FILLER_WORDS)))])
            caption = " ".join(caption_parts)

        metadata = {}
        for field_name in self.metadata_fields:
            metadata[field_name] = f"{field_name} {self._code(rng).lower()}"

        return Relation(
            name=f"table_{index:05d}",
            schema=schema,
            rows=rows,
            caption=caption,
            metadata=metadata,
        )

    def _assign_facets(self) -> list[tuple[Topic, str, int]]:
        """Latent (topic, region, year) per table, topics round-robin."""
        rng = np.random.default_rng((self.seed, 2))
        facets = []
        for index in range(self.n_tables):
            topic = TOPICS[index % len(TOPICS)]
            region = REGION_CONCEPTS[int(rng.integers(len(REGION_CONCEPTS)))]
            year = int(YEARS[int(rng.integers(len(YEARS)))])
            facets.append((topic, region, year))
        return facets

    # -- queries -------------------------------------------------------------

    def _query_text(
        self,
        category: QueryCategory,
        source: QuerySource,
        topic: Topic,
        region: str | None,
        year: int | None,
        rng: np.random.Generator,
    ) -> str:
        concept = topic.concepts[int(rng.integers(len(topic.concepts)))]
        term = self._sample_term(concept, rng, role="query")
        # Queries phrase the topic with the noun variants tables do NOT
        # use in captions (tables always caption with variant 0).
        query_nouns = topic.caption_nouns[1:] or topic.caption_nouns
        noun = query_nouns[int(rng.integers(len(query_nouns)))]
        region_term = self._sample_term(region, rng, role="query") if region else ""

        if category is QueryCategory.SHORT:
            # Every pinned facet appears in the text, so the grade-2 /
            # grade-1 distinction is decidable from the query alone.
            # QS-1 short queries are crisp topical noun phrases
            # ("Beijing Olympics", "Phases of the Moon"); QS-2 are
            # attribute-style ("Irish counties area").
            if source is QuerySource.QS1:
                words = [noun]
            else:
                words = [term, topic.value_columns[0].lower()]
            if region_term:
                words.append(region_term)
            if year:
                words.append(str(year))
            return " ".join(w for w in words if w)[:200]

        if category is QueryCategory.MODERATE:
            # Sentence-length queries carry some verbosity the topic
            # terms must be recovered from.
            parts = [f"we are looking for any tables or datasets about {noun}"]
            if region_term:
                parts.append(f"in {region_term}")
            if year:
                parts.append(f"during {year}")
            concept = topic.concepts[int(rng.integers(len(topic.concepts)))]
            parts.append(f"covering {self._sample_term(concept, rng, role='query')}")
            if source is QuerySource.QS2:
                parts.append("with supporting numeric figures")
            parts.append("that are reasonably complete and recent")
            return " ".join(parts)

        # LONG: a verbose 30..300-keyword paragraph.  Real full-text
        # queries bury the topical terms in narrative context and stray
        # mentions of OTHER subjects, which dilutes the query embedding
        # — that dilution is why the paper finds long queries hardest.
        all_terms: list[str] = []
        for c in topic.concepts:
            all_terms.extend(self._terms(c, role="query"))
        rng.shuffle(all_terms)
        take = min(len(all_terms), int(rng.integers(2, 5)))
        sentences = [
            f"our analysis project requires a comprehensive review of {noun}",
            "we would appreciate tables mentioning " + " or ".join(all_terms[:take]),
        ]
        if region:
            members = sorted(self._terms(region, role="query"))
            pick = members[: min(4, len(members))]
            sentences.append("the geographic scope of interest is " + " ".join(pick))
        if year:
            sentences.append(f"restricted to the period around {year}")
        sentences.append(
            "the tables should ideally report the relevant quantitative "
            "measures with complete records and documented sources"
        )
        # Narrative noise: stray mentions of other subjects, regions
        # and periods, as verbose human requests contain — the exact
        # confounders (wrong topic / wrong region / wrong year) of the
        # paper's Sec 5.3 case study.
        distractor_topics = [t for t in TOPICS if t.name != topic.name]
        n_distractors = int(rng.integers(4, 9))
        stray: list[str] = []
        for _ in range(n_distractors):
            other = distractor_topics[int(rng.integers(len(distractor_topics)))]
            other_concept = other.concepts[int(rng.integers(len(other.concepts)))]
            stray.append(self._sample_term(other_concept, rng, role="query"))
        stray_region = REGION_CONCEPTS[int(rng.integers(len(REGION_CONCEPTS)))]
        stray.append(self._sample_term(stray_region, rng, role="query"))
        stray_year = int(YEARS[int(rng.integers(len(YEARS)))])
        sentences.append(
            "unlike our previous studies which dealt with "
            + " and ".join(dict.fromkeys(stray))
            + f" back in {stray_year}"
            + " this request is strictly about the subject above"
        )
        sentences.append(
            "formats such as csv or excel are acceptable and metadata about "
            "collection methodology licensing and update frequency would help"
        )
        text = " ".join(sentences)
        # Enforce the LQ floor of >30 keywords by appending topical terms.
        while len(text.split()) <= 30:
            text += " " + " ".join(all_terms[:10])
        return " ".join(text.split()[:300])

    def _make_queries(self) -> list[QuerySpec]:
        rng = np.random.default_rng((self.seed, 3))
        per_category = self.n_queries // 3
        categories = (
            [QueryCategory.SHORT] * per_category
            + [QueryCategory.MODERATE] * per_category
            + [QueryCategory.LONG] * (self.n_queries - 2 * per_category)
        )
        specs: list[QuerySpec] = []
        seen_texts: set[str] = set()
        for i, category in enumerate(categories):
            source = QuerySource.QS1 if i % 2 == 0 else QuerySource.QS2
            topic = TOPICS[i % len(TOPICS)]
            # Most queries pin a region and about half pin a year, so
            # the grade-2 / grade-1 distinction (facet match) is
            # exercised by nearly every query.
            region = (
                REGION_CONCEPTS[int(rng.integers(len(REGION_CONCEPTS)))]
                if rng.random() < 0.85
                else None
            )
            year = int(YEARS[int(rng.integers(len(YEARS)))]) if rng.random() < 0.3 else None
            text = self._query_text(category, source, topic, region, year, rng)
            # Guarantee query-text uniqueness (qrels are keyed by text).
            attempt = 0
            while text in seen_texts:
                attempt += 1
                text = self._query_text(category, source, topic, region, year, rng)
                if attempt > 20:
                    text = f"{text} {i}"
            seen_texts.add(text)
            specs.append(
                QuerySpec(
                    text=text,
                    category=category,
                    source=source,
                    topic=topic.name,
                    region=region,
                    year=year,
                )
            )
        return specs

    # -- qrels -------------------------------------------------------------------

    @staticmethod
    def grade(
        query: QuerySpec, table_topic: str, table_region: str, table_year: int
    ) -> int:
        """The latent relevance rule shared by all generated corpora.

        Fully relevant (2): same topic and every facet the query pins
        (region, year) matches.  Partially relevant (1): same topic but
        a facet mismatch — the table is about the right subject but the
        wrong region or period, the exact confounder structure of the
        paper's Sec 5.3 case study ("Climate Change Effects Europe
        2020" vs global or differently-dated climate tables).  Tables
        of *related* topics are judged irrelevant but are deliberately
        over-sampled into the judgment pool as hard negatives.
        """
        if query.topic == table_topic:
            region_ok = query.region is None or query.region == table_region
            year_ok = query.year is None or query.year == table_year
            return 2 if (region_ok and year_ok) else 1
        return 0

    def _make_qrels(
        self,
        queries: list[QuerySpec],
        facets: dict[str, tuple[str, str, int]],
    ) -> Qrels:
        rng = np.random.default_rng((self.seed, 4))
        relation_ids = sorted(facets)
        per_query = max(4, math.ceil(self.pairs_target / len(queries)))
        qrels = Qrels()
        total = 0
        from repro.data.topics import topic_by_name

        for query in queries:
            judged: list[str] = []
            related = set(topic_by_name(query.topic).related)
            # All same-topic tables (graded 1/2) and related-topic
            # tables (hard negatives, graded 0)...
            for relation_id in relation_ids:
                topic, _, _ = facets[relation_id]
                if topic == query.topic or topic in related:
                    judged.append(relation_id)
            # ... plus random irrelevant tables to fill the budget.
            remaining = [rid for rid in relation_ids if rid not in set(judged)]
            need = max(0, per_query - len(judged))
            if need and remaining:
                extra = rng.choice(len(remaining), size=min(need, len(remaining)), replace=False)
                judged.extend(remaining[int(i)] for i in extra)
            for relation_id in judged[:per_query]:
                if total >= self.pairs_target:
                    break
                topic, region, year = facets[relation_id]
                qrels.add(query.text, relation_id, self.grade(query, topic, region, year))
                total += 1
        return qrels

    # -- assembly ---------------------------------------------------------------------

    def build(self) -> Corpus:
        """Generate the full corpus deterministically."""
        facet_triples = self._assign_facets()
        relations = [
            self._make_table(i, topic, region, year)
            for i, (topic, region, year) in enumerate(facet_triples)
        ]
        facets = {
            f"{self.name}/{relation.name}": (topic.name, region, year)
            for relation, (topic, region, year) in zip(relations, facet_triples)
        }
        queries = self._make_queries()
        qrels = self._make_qrels(queries, facets)
        numeric_fraction = self._numeric_fraction(relations)
        return Corpus(
            name=self.name,
            relations=relations,
            table_facets=facets,
            queries=queries,
            qrels=qrels,
            numeric_cell_fraction=numeric_fraction,
        )

    def _numeric_fraction(self, relations: list[Relation]) -> float:
        numeric = 0
        total = 0
        for relation in relations:
            for value in relation.values():
                total += 1
                tokens = self._tokenizer.tokenize(value)
                if tokens and all(is_numeric_token(t) for t in tokens):
                    numeric += 1
        return numeric / total if total else 0.0
