"""Synthetic benchmark data standing in for WikiTables and the EDP corpus.

Tables, queries and graded relevance judgments are generated from a
shared latent topic model grounded in the concept lexicon: a table
about a topic renders the topic's concepts with randomly chosen
surface forms (synonyms), and queries about the same topic use their
own surface forms — so lexical overlap between a relevant query-table
pair is unreliable, exactly the condition the paper's semantic
matching targets (Figure 1).

* :mod:`repro.data.topics` — the latent topics and their facets.
* :mod:`repro.data.synthesis` — the shared table/query/qrels generator.
* :mod:`repro.data.wikitables` — the WikiTables-like corpus (26.9%
  numeric cells, captioned tables, 3,117 judged pairs).
* :mod:`repro.data.edp` — the EDP-like open-data corpus (55.3% numeric,
  richer metadata).
* :mod:`repro.data.queries` — QS-1/QS-2-style query sets categorized
  SQ/MQ/LQ.
* :mod:`repro.data.covid` — the exact Figure 1 federation.
"""

from repro.data.corpus import Corpus, DatasetScale
from repro.data.covid import covid_federation
from repro.data.edp import generate_edp_corpus
from repro.data.export import export_corpus, load_corpus
from repro.data.queries import QueryCategory, QuerySpec
from repro.data.topics import TOPICS, Topic
from repro.data.wikitables import generate_wikitables_corpus

__all__ = [
    "Corpus",
    "DatasetScale",
    "QueryCategory",
    "QuerySpec",
    "TOPICS",
    "Topic",
    "covid_federation",
    "export_corpus",
    "generate_edp_corpus",
    "generate_wikitables_corpus",
    "load_corpus",
]
