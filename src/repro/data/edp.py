"""The European-Data-Portal-like corpus.

The real EDP corpus (~60K datasets; Bernhauer et al., 2022) carries
open-data metadata (publisher, license, descriptions) and is much more
numeric than WikiTables: the paper measures 55.3% numeric cells in a
random sample.  The generator reproduces that shape: smaller corpus,
publisher/license metadata fields, and three numeric columns per table
(two measures + year) against two-ish text columns.
"""

from __future__ import annotations

from repro.data.corpus import Corpus
from repro.data.synthesis import CorpusSynthesizer

__all__ = ["generate_edp_corpus"]


def generate_edp_corpus(
    n_tables: int = 240,
    n_queries: int = 60,
    pairs_target: int = 3117,
    seed: int = 7,
) -> Corpus:
    """Generate the EDP-like open-data benchmark corpus."""
    return CorpusSynthesizer(
        name="edp",
        n_tables=n_tables,
        n_queries=n_queries,
        pairs_target=pairs_target,
        n_value_columns=2,
        extra_numeric_probability=0.9,
        filler_probability=0.3,
        rows_range=(5, 12),
        metadata_fields=("publisher", "license"),
        seed=seed,
    ).build()
