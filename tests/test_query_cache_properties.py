"""Property suite: the query cache is invisible except for speed.

Two load-bearing invariants, each driven by Hypothesis over arbitrary
add/update/remove delta sequences, shard counts {1, 2, 5} and execution
backends (engine default — which honours ``REPRO_EXECUTOR``, so the CI
process shard exercises the process backend here — plus explicit
inline/thread):

1. **Transparency.**  At any fixed generation, a cached answer (exact
   hit) is bitwise-identical to the uncached answer the method computes
   under the same read lock — same relation ids, same float scores.
2. **Freshness.**  After a delta, no lookup — exact *or* near-duplicate
   probe — ever serves a pre-delta ranking.  Every post-delta answer
   equals the post-delta locked computation.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DiscoveryEngine
from repro.datamodel.relation import Federation, Relation

TOPICS = [
    ["vaccine", "dose", "immunity", "booster", "trial"],
    ["league", "striker", "goal", "stadium", "referee"],
    ["gdp", "inflation", "export", "tariff", "budget"],
    ["galaxy", "nebula", "quasar", "orbit", "comet"],
    ["sonata", "violin", "tempo", "chord", "opera"],
    ["glacier", "monsoon", "drought", "humidity", "frost"],
    ["enzyme", "protein", "genome", "ribosome", "cell"],
    ["harbor", "cargo", "freight", "vessel", "anchor"],
]

QUERIES = ["vaccine booster trial", "league stadium", "gdp export", "quasar orbit"]

METHODS = ("exs", "anns")
K = 10


def make_relation(slot: int, version: int = 0) -> Relation:
    words = TOPICS[slot % len(TOPICS)]
    tag = f"v{version}"
    return Relation(
        f"rel{slot}",
        ["Topic", "Measure", "Year"],
        [
            [f"{words[r % len(words)]} {tag}", str(100 * slot + r), str(2018 + version)]
            for r in range(3 + slot % 2)
        ],
        caption=f"{words[0]} {words[1]} table {tag}",
    )


def qualified(slot: int) -> str:
    return f"rel{slot}/rel{slot}"


def make_engine(shards: int, backend: str | None) -> DiscoveryEngine:
    return DiscoveryEngine(
        dim=48,
        shards=shards,
        executor=backend,
        method_params={
            # Exact index + exhaustive candidates: ANNS answers are a
            # pure function of the store state, so cached-vs-uncached
            # comparisons are meaningful bit for bit.
            "anns": {"index_kind": "exact", "n_candidates": 10_000},
        },
        query_cache=True,
    )


def near_variant(query: str) -> str:
    """Doubling the text keeps the mean-pooled embedding's direction —
    a guaranteed near-duplicate for the cosine probe."""
    return f"{query} {query}"


def apply_step(engine, current, versions, op, slot):
    """Normalize an arbitrary (op, slot) draw into a valid delta."""
    if op == "add" and slot in current:
        op = "update"
    elif op in ("update", "remove") and slot not in current:
        op = "add"
    if op == "remove" and len(current) == 1:
        op = "update"

    if op == "add":
        versions[slot] = versions.get(slot, -1) + 1
        current[slot] = make_relation(slot, versions[slot])
        engine.add_relations({qualified(slot): current[slot]})
    elif op == "update":
        versions[slot] += 1
        current[slot] = make_relation(slot, versions[slot])
        engine.update_relations({qualified(slot): current[slot]})
    else:
        del current[slot]
        engine.remove_relations([qualified(slot)])


def locked_answer(engine, query, method):
    with engine.read_lock():
        result = engine.method(method).search(query, k=K, h=-1.0)
    return [(m.relation_id, m.score) for m in result.matches]


def served_answer(engine, query, method):
    result = engine.search(query, method=method, k=K, h=-1.0)
    return [(m.relation_id, m.score) for m in result.matches]


op_steps = st.lists(
    st.tuples(st.sampled_from(["add", "update", "remove"]), st.integers(0, 7)),
    min_size=1,
    max_size=5,
)

backends = st.sampled_from([None, "inline", "thread"])


@settings(max_examples=10, deadline=None)
@given(steps=op_steps, shards=st.sampled_from([1, 2, 5]), backend=backends)
def test_cached_answers_are_bitwise_uncached(steps, shards, backend):
    """Exact hits replay the very objects the method computed: at every
    generation along a delta sequence, hit == locked recompute, bit for
    bit, for every method and every shard layout."""
    current = {i: make_relation(i) for i in range(4)}
    versions = {i: 0 for i in range(4)}
    engine = make_engine(shards, backend)
    engine.index(Federation.from_relations([current[i] for i in sorted(current)]))
    for method in METHODS:
        engine.method(method)
    try:
        for step_no, (op, slot) in enumerate([(None, None), *steps]):
            if op is not None:
                apply_step(engine, current, versions, op, slot)
            for method in METHODS:
                for query in QUERIES:
                    first = served_answer(engine, query, method)  # warm (miss)
                    second = served_answer(engine, query, method)  # exact hit
                    want = locked_answer(engine, query, method)
                    assert second == want, (
                        f"step {step_no}: cached {method} answer for {query!r} "
                        "diverged from the locked recompute"
                    )
                    assert first == want
    finally:
        engine.close()


@settings(max_examples=10, deadline=None)
@given(steps=op_steps, shards=st.sampled_from([1, 2, 5]), backend=backends)
def test_post_delta_lookup_never_serves_pre_delta(steps, shards, backend):
    """After every delta, both the exact path and the near-duplicate
    probe answer from the NEW generation — a warm pre-delta cache is
    never allowed to leak a stale ranking through either door."""
    current = {i: make_relation(i) for i in range(4)}
    versions = {i: 0 for i in range(4)}
    engine = make_engine(shards, backend)
    engine.index(Federation.from_relations([current[i] for i in sorted(current)]))
    for method in METHODS:
        engine.method(method)
    try:
        for op, slot in steps:
            # Warm every exact query AND its near-duplicate variant, so
            # the store is full of tempting pre-delta entries.
            for method in METHODS:
                for query in QUERIES:
                    served_answer(engine, query, method)
                    served_answer(engine, near_variant(query), method)

            apply_step(engine, current, versions, op, slot)

            for method in METHODS:
                for query in QUERIES:
                    # Exact path: the warm entry is stale, must recompute.
                    assert served_answer(engine, query, method) == locked_answer(
                        engine, query, method
                    )
                    # Near path: the probe sees only stale candidates and
                    # must fall through to a fresh computation too.
                    doubled = near_variant(query)
                    assert served_answer(engine, doubled, method) == locked_answer(
                        engine, doubled, method
                    )
    finally:
        engine.close()


@settings(max_examples=6, deadline=None)
@given(shards=st.sampled_from([1, 2, 5]), backend=backends)
def test_near_probe_fires_at_stable_generation(shards, backend):
    """Sanity for the invariant above: when NO delta intervenes, the
    near-duplicate variant genuinely rides the probe (it serves the
    original's match objects and counts a near hit) — proving the
    freshness property exercises the probe, not a disabled path."""
    current = {i: make_relation(i) for i in range(4)}
    engine = make_engine(shards, backend)
    engine.index(Federation.from_relations([current[i] for i in sorted(current)]))
    engine.method("exs")
    try:
        want = served_answer(engine, QUERIES[0], "exs")
        near = served_answer(engine, near_variant(QUERIES[0]), "exs")
        assert [rid for rid, _ in near] == [rid for rid, _ in want]
        counters = engine.metrics.snapshot()["counters"]
        assert counters["cache.near_hits"] == 1
    finally:
        engine.close()
