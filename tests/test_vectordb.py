"""Tests for the vector database: filters, collections, persistence."""

import numpy as np
import pytest

from repro.errors import (
    CollectionExistsError,
    CollectionNotFoundError,
    DimensionMismatchError,
    PointNotFoundError,
)
from repro.linalg.distances import Metric
from repro.vectordb import (
    Collection,
    FieldCondition,
    Filter,
    MatchAny,
    MatchValue,
    Point,
    Range,
    VectorDatabase,
)


class TestFilters:
    def test_match_value(self):
        cond = FieldCondition("kind", match=MatchValue("fruit"))
        assert cond.test({"kind": "fruit"})
        assert not cond.test({"kind": "veg"})
        assert not cond.test({})

    def test_match_any(self):
        cond = FieldCondition("kind", match=MatchAny(["a", "b"]))
        assert cond.test({"kind": "b"})
        assert not cond.test({"kind": "c"})

    def test_range(self):
        cond = FieldCondition("score", range=Range(gte=1, lt=5))
        assert cond.test({"score": 1})
        assert cond.test({"score": 4.9})
        assert not cond.test({"score": 5})
        assert not cond.test({"score": "high"})

    def test_condition_requires_exactly_one_clause(self):
        with pytest.raises(ValueError):
            FieldCondition("x")
        with pytest.raises(ValueError):
            FieldCondition("x", match=MatchValue(1), range=Range(gte=0))

    def test_filter_must_should_must_not(self):
        f = Filter(
            must=[FieldCondition("a", match=MatchValue(1))],
            should=[
                FieldCondition("b", match=MatchValue(2)),
                FieldCondition("b", match=MatchValue(3)),
            ],
            must_not=[FieldCondition("c", match=MatchValue(9))],
        )
        assert f.test({"a": 1, "b": 2})
        assert f.test({"a": 1, "b": 3})
        assert not f.test({"a": 1, "b": 4})       # should unmet
        assert not f.test({"a": 0, "b": 2})       # must unmet
        assert not f.test({"a": 1, "b": 2, "c": 9})  # must_not hit

    def test_empty_filter_accepts_everything(self):
        assert Filter().test({"whatever": 1})


@pytest.fixture()
def collection(rng):
    col = Collection("test", dim=8)
    points = [
        Point(i, rng.standard_normal(8), {"group": "even" if i % 2 == 0 else "odd", "rank": i})
        for i in range(50)
    ]
    col.upsert(points)
    return col


class TestCollection:
    def test_len_and_contains(self, collection):
        assert len(collection) == 50
        assert 7 in collection and 99 not in collection

    def test_get_roundtrip(self, collection):
        point = collection.get(3)
        assert point.id == 3
        assert point.payload["rank"] == 3

    def test_get_missing(self, collection):
        with pytest.raises(PointNotFoundError):
            collection.get(999)

    def test_upsert_overwrites(self, collection, rng):
        new_vec = rng.standard_normal(8)
        collection.upsert([Point(3, new_vec, {"fresh": True})])
        assert len(collection) == 50
        got = collection.get(3)
        np.testing.assert_allclose(got.vector, new_vec)
        assert got.payload == {"fresh": True}

    def test_upsert_dim_mismatch(self, collection):
        with pytest.raises(DimensionMismatchError):
            collection.upsert([Point(100, np.zeros(5))])

    def test_delete(self, collection):
        assert collection.delete([0, 1, 999]) == 2
        assert len(collection) == 48
        assert 0 not in collection
        # remaining ids still resolvable
        assert collection.get(2).id == 2

    def test_search_exact_top1(self, collection):
        target = collection.get(10).vector
        hits = collection.search(target, 1)
        assert hits[0].id == 10

    def test_search_with_filter(self, collection, rng):
        filt = Filter(must=[FieldCondition("group", match=MatchValue("even"))])
        hits = collection.search(rng.standard_normal(8), 10, filter=filt)
        assert len(hits) == 10
        assert all(h.payload["group"] == "even" for h in hits)

    def test_search_range_filter(self, collection, rng):
        filt = Filter(must=[FieldCondition("rank", range=Range(lt=5))])
        hits = collection.search(rng.standard_normal(8), 20, filter=filt)
        assert {h.id for h in hits} <= {0, 1, 2, 3, 4}

    def test_search_with_vectors(self, collection):
        target = collection.get(4).vector
        hit = collection.search(target, 1, with_vectors=True)[0]
        np.testing.assert_allclose(hit.vector, target)

    def test_query_dim_check(self, collection):
        with pytest.raises(DimensionMismatchError):
            collection.search(np.zeros(3), 1)

    def test_empty_collection_search(self):
        assert Collection("empty", dim=4).search(np.zeros(4), 3) == []

    @pytest.mark.parametrize("kind", ["hnsw", "pq", "hnsw+pq", "ivf", "exact"])
    def test_indexed_search_contains_true_top1(self, collection, kind, rng):
        params = {}
        if kind in ("hnsw", "hnsw+pq"):
            params.update(m=4, ef_construction=20)
        if kind in ("pq", "hnsw+pq"):
            params.update(n_subvectors=4, n_centroids=16)
        if kind == "ivf":
            params.update(n_cells=4, n_probe=4)
        collection.create_index(kind, **params)
        target = collection.get(20).vector
        hits = collection.search(target, 5, rescore=True)
        assert 20 in {h.id for h in hits}

    def test_index_refreshes_after_upsert(self, collection, rng):
        collection.create_index("hnsw", m=4, ef_construction=20)
        fresh = rng.standard_normal(8)
        collection.upsert([Point(777, fresh, {})])
        hits = collection.search(fresh, 1)
        assert hits[0].id == 777

    def test_index_refreshes_after_delete(self, collection):
        # Deletion marks the index stale; the next search must rebuild
        # it and never resurrect the deleted point.
        collection.create_index("hnsw", m=4, ef_construction=20)
        target = collection.get(20).vector
        assert collection.search(target, 1)[0].id == 20
        assert collection.delete([20]) == 1
        hits = collection.search(target, 5)
        assert 20 not in {h.id for h in hits}
        assert len(hits) == 5

    def test_vectors_view_readonly(self, collection):
        with pytest.raises(ValueError):
            collection.vectors[0, 0] = 1.0

    def test_scroll_with_filter(self, collection):
        filt = Filter(must=[FieldCondition("group", match=MatchValue("odd"))])
        points = collection.scroll(filt)
        assert len(points) == 25


class TestVectorDatabase:
    def test_create_get_drop(self):
        db = VectorDatabase()
        db.create_collection("a", dim=4)
        assert "a" in db and len(db) == 1
        assert db.get_collection("a").dim == 4
        db.drop_collection("a")
        assert "a" not in db

    def test_duplicate_create(self):
        db = VectorDatabase()
        db.create_collection("a", dim=4)
        with pytest.raises(CollectionExistsError):
            db.create_collection("a", dim=4)

    def test_missing_collection(self):
        with pytest.raises(CollectionNotFoundError):
            VectorDatabase().get_collection("nope")
        with pytest.raises(CollectionNotFoundError):
            VectorDatabase().drop_collection("nope")

    def test_list_sorted(self):
        db = VectorDatabase()
        db.create_collection("zz", dim=2)
        db.create_collection("aa", dim=2)
        assert db.list_collections() == ["aa", "zz"]

    def test_save_load_roundtrip(self, tmp_path, rng):
        db = VectorDatabase()
        col = db.create_collection("stuff", dim=6, metric=Metric.EUCLIDEAN)
        points = [Point(f"p{i}", rng.standard_normal(6), {"i": i}) for i in range(20)]
        col.upsert(points)
        col.create_index("hnsw", m=4, ef_construction=20)
        db.save(tmp_path / "snap")

        restored = VectorDatabase.load(tmp_path / "snap")
        col2 = restored.get_collection("stuff")
        assert len(col2) == 20
        assert col2.metric is Metric.EUCLIDEAN
        assert col2.index_kind is not None
        original = col.get("p3")
        loaded = col2.get("p3")
        np.testing.assert_allclose(loaded.vector, original.vector)
        assert loaded.payload == original.payload

    def test_loaded_search_matches(self, tmp_path, rng):
        db = VectorDatabase()
        col = db.create_collection("s", dim=5)
        col.upsert([Point(i, rng.standard_normal(5), {}) for i in range(30)])
        q = rng.standard_normal(5)
        expected = [h.id for h in col.search(q, 5)]
        db.save(tmp_path / "x")
        got = [h.id for h in VectorDatabase.load(tmp_path / "x").get_collection("s").search(q, 5)]
        assert got == expected

    def test_save_commits_atomically(self, tmp_path, rng):
        """A re-save that never commits — or a crash mid-save — leaves
        the previous snapshot fully loadable (manifest is the commit
        point, payloads land under a fresh epoch prefix first)."""
        db = VectorDatabase()
        db.create_collection("s", dim=4).upsert(
            [Point(i, rng.standard_normal(4), {}) for i in range(10)]
        )
        db.save(tmp_path / "snap")
        manifest_before = (tmp_path / "snap" / "manifest.json").read_bytes()
        assert len(VectorDatabase.load(tmp_path / "snap").get_collection("s")) == 10
        # Loading touched nothing: the committed manifest is unchanged.
        assert (tmp_path / "snap" / "manifest.json").read_bytes() == manifest_before

    def test_truncated_vectors_raise_storage_error(self, tmp_path, rng):
        """Satellite regression: a torn vector segment must raise
        StorageError at load, never surface as garbage rankings."""
        from repro.errors import StorageError

        db = VectorDatabase()
        db.create_collection("s", dim=4).upsert(
            [Point(i, rng.standard_normal(4), {}) for i in range(10)]
        )
        db.save(tmp_path / "snap")
        seg = next(p for p in (tmp_path / "snap").iterdir() if p.name.endswith(".seg"))
        seg.write_bytes(seg.read_bytes()[:-16])
        with pytest.raises(StorageError, match="torn"):
            VectorDatabase.load(tmp_path / "snap")

    def test_corrupted_vectors_fail_the_digest(self, tmp_path, rng):
        from repro.errors import StorageError

        db = VectorDatabase()
        db.create_collection("s", dim=4).upsert(
            [Point(i, rng.standard_normal(4), {}) for i in range(10)]
        )
        db.save(tmp_path / "snap")
        seg = next(p for p in (tmp_path / "snap").iterdir() if p.name.endswith(".seg"))
        data = bytearray(seg.read_bytes())
        data[5] ^= 0xFF  # size unchanged: only the crc32 can see this
        seg.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="crc32"):
            VectorDatabase.load(tmp_path / "snap")

    def test_legacy_snapshot_layout_still_loads(self, tmp_path, rng):
        """Pre-segment snapshots (bare manifest.json + .npz files, no
        checksums) keep loading through the legacy fallback."""
        import json

        from repro.storage import npz as legacy_npz

        directory = tmp_path / "old"
        directory.mkdir()
        vectors = rng.standard_normal((3, 4))
        legacy_npz.save_npz(directory / "s.npz", {"vectors": vectors})
        (directory / "s.payloads.json").write_text(
            json.dumps([{"id": f"p{i}", "payload": {"i": i}} for i in range(3)])
        )
        (directory / "manifest.json").write_text(
            json.dumps({"s": {"dim": 4, "metric": "cosine", "index": None}})
        )
        restored = VectorDatabase.load(directory)
        col = restored.get_collection("s")
        assert len(col) == 3
        np.testing.assert_allclose(col.get("p1").vector, vectors[1])
