"""Tests for semantic representations (semImg) of relations and federations."""

import numpy as np
import pytest

from repro.core.semimg import (
    build_federation_embeddings,
    build_relation_embedding,
)
from repro.datamodel import Federation, Relation
from repro.errors import ConfigurationError


class TestRelationEmbedding:
    def test_deduplication_with_counts(self, encoder64):
        rel = Relation("r", ["a", "b"], [["x", "y"], ["x", "y"], ["x", "z"]])
        emb = build_relation_embedding("d/r", rel, encoder64)
        # unique (name, value): (a,x), (b,y), (b,z) + __schema__
        assert emb.n_unique == 4
        assert emb.n_cells == 7  # 6 cells + schema pseudo-value
        pair = dict(zip(zip(emb.attr_names, emb.values), emb.counts))
        assert pair[("a", "x")] == 3
        assert pair[("b", "y")] == 2

    def test_caption_pseudo_attribute(self, encoder64):
        rel = Relation("r", ["a"], [["x"]], caption="hello world")
        emb = build_relation_embedding("d/r", rel, encoder64)
        assert "__caption__" in emb.attr_names
        assert "__schema__" in emb.attr_names

    def test_vectors_unit_norm(self, encoder64, tiny_relations):
        emb = build_relation_embedding("d/r", tiny_relations[0], encoder64)
        norms = np.linalg.norm(emb.vectors, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-5)

    def test_empty_relation_rejected(self, encoder64):
        rel = Relation("r", [])
        with pytest.raises(ConfigurationError):
            build_relation_embedding("d/r", rel, encoder64)

    def test_float32_storage(self, encoder64, tiny_relations):
        emb = build_relation_embedding("d/r", tiny_relations[0], encoder64)
        assert emb.vectors.dtype == np.float32


class TestFederationEmbeddings:
    def test_build(self, encoder64, tiny_federation):
        embs = build_federation_embeddings(tiny_federation, encoder64)
        assert embs.n_relations == 3
        assert embs.dim == 64
        assert embs.total_vectors == sum(r.n_unique for r in embs.relations)
        assert embs.build_seconds >= 0

    def test_relation_ids_order(self, encoder64, tiny_federation):
        embs = build_federation_embeddings(tiny_federation, encoder64)
        assert embs.relation_ids() == [rid for rid, _ in tiny_federation.relations()]

    def test_encode_query_unit(self, encoder64, tiny_federation):
        embs = build_federation_embeddings(tiny_federation, encoder64)
        q = embs.encode_query("covid vaccines")
        assert np.linalg.norm(q) == pytest.approx(1.0)

    def test_stacked_alignment(self, encoder64, tiny_federation):
        embs = build_federation_embeddings(tiny_federation, encoder64)
        matrix, owner = embs.stacked()
        assert matrix.shape[0] == owner.shape[0] == embs.total_vectors
        # owners are contiguous blocks in relation order
        start = 0
        for i, rel in enumerate(embs.relations):
            np.testing.assert_array_equal(owner[start : start + rel.n_unique], i)
            np.testing.assert_allclose(
                matrix[start : start + rel.n_unique], rel.vectors
            )
            start += rel.n_unique

    def test_empty_federation_rejected(self, encoder64):
        with pytest.raises(ConfigurationError):
            build_federation_embeddings(Federation("empty"), encoder64)
