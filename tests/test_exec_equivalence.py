"""Property tests: every execution backend ranks identically.

The execution layer's contract is that *where* work runs is invisible
in the results: ExS and exact-index ANNS rankings (and scores, to the
PR-4 dtype tolerance) must agree across the inline, thread and process
backends, at any shard count, for fresh indexes and after arbitrary
add/update/remove delta sequences — the deltas being what exercises the
process backend's publish/drop replay over the worker command pipe.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DiscoveryEngine
from repro.datamodel.relation import Federation, Relation
from repro.exec import ProcessBackend
from repro.linalg import live_segment_names, shared_memory_available
from repro.storage import live_mapped_paths

from tests.test_sharding import (
    QUERIES,
    SCORE_TOL,
    assert_same_rankings,
    make_relation,
    qualified,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this platform"
)

BACKENDS = ["inline", "thread", "process"]


def make_engine(executor: str, shards: int = 1) -> DiscoveryEngine:
    return DiscoveryEngine(
        dim=48,
        method_params={
            # Exact index + exhaustive budget make ANNS deterministic,
            # so backend equivalence is testable to float tolerance.
            "anns": {"index_kind": "exact", "n_candidates": 10_000},
        },
        shards=shards,
        executor=executor,
    )


def federation(slots) -> Federation:
    return Federation.from_relations([make_relation(s) for s in slots])


def assert_same_batches(
    baseline: DiscoveryEngine, engine: DiscoveryEngine, method: str
) -> None:
    want = baseline.search_batch(QUERIES, method=method, k=100, h=-1.0, workers=4)
    got = engine.search_batch(QUERIES, method=method, k=100, h=-1.0, workers=4)
    for w, g in zip(want, got):
        assert [m.relation_id for m in w.matches] == [m.relation_id for m in g.matches]
        for mw, mg in zip(w.matches, g.matches):
            assert mg.score == pytest.approx(mw.score, abs=SCORE_TOL)


@pytest.mark.parametrize("method", ["exs", "anns"])
@pytest.mark.parametrize("shards", [1, 2, 5])
@pytest.mark.parametrize("backend", BACKENDS)
def test_fresh_index_identical_across_backends(backend, shards, method):
    fed = federation(range(6))
    with make_engine("inline").index(fed) as baseline:
        with make_engine(backend, shards=shards).index(fed) as engine:
            if backend == "process":
                assert isinstance(engine.executor, ProcessBackend)
            assert_same_rankings(baseline, engine, method)
            assert_same_batches(baseline, engine, method)


@pytest.mark.parametrize("method", ["exs", "anns"])
@pytest.mark.parametrize("shards", [1, 2, 5])
@pytest.mark.parametrize("backend", BACKENDS)
def test_mapped_load_identical_across_backends(tmp_path, backend, shards, method):
    """A snapshot loaded with ``mmap=True`` ranks identically to the
    cold inline build on every backend.  On the process backend the
    published scan spec names the segment *file* — workers map the same
    bytes the parent serves, so serving allocates zero shared memory."""
    fed = federation(range(6))
    with make_engine("inline").index(fed) as baseline:
        # Save under the layout the loader will use: matching
        # (shards, seed) lets the loader adopt the per-shard mapped
        # stores as-is instead of repartitioning (which would re-stack).
        with make_engine("inline", shards=shards).index(fed) as saver:
            saver.save_index(tmp_path / "snap")
        loaded = make_engine(backend, shards=shards).load_index(
            tmp_path / "snap", mmap=True
        )
        with loaded as engine:
            assert_same_rankings(baseline, engine, method)
            assert_same_batches(baseline, engine, method)
            if backend == "process" and method == "exs":
                # The tentpole contract: mapped segments ARE the scan
                # state; publishing them copies nothing into /dev/shm.
                assert not [n for n in live_segment_names()]
                assert live_mapped_paths()
    assert not live_mapped_paths()
    assert not [n for n in live_segment_names()]


op_steps = st.lists(
    st.tuples(st.sampled_from(["add", "update", "remove"]), st.integers(0, 7)),
    min_size=1,
    max_size=6,
)


@settings(max_examples=6, deadline=None)
@given(
    steps=op_steps,
    shards=st.sampled_from([1, 2, 5]),
    backend=st.sampled_from(BACKENDS),
)
def test_delta_sequences_identical_across_backends(steps, shards, backend):
    """Deltas replayed through a live engine — on the process backend,
    each one re-publishes the touched shards' scan state over the
    worker command pipe — leave every backend ranking like inline."""
    current: dict[int, Relation] = {i: make_relation(i) for i in range(4)}
    versions: dict[int, int] = {i: 0 for i in range(4)}
    fed = Federation.from_relations([current[i] for i in sorted(current)])
    baseline = make_engine("inline").index(fed)
    engine = make_engine(backend, shards=shards).index(fed)
    try:
        for eng in (baseline, engine):
            eng.method("exs")
            eng.method("anns")

        for op, slot in steps:
            # Normalize invalid draws instead of discarding the example.
            if op == "add" and slot in current:
                op = "update"
            elif op in ("update", "remove") and slot not in current:
                op = "add"
            if op == "remove" and len(current) == 1:
                op = "update"

            if op == "add":
                versions[slot] = versions.get(slot, -1) + 1
                current[slot] = make_relation(slot, versions[slot])
                for eng in (baseline, engine):
                    eng.add_relations({qualified(slot): current[slot]})
            elif op == "update":
                versions[slot] += 1
                current[slot] = make_relation(slot, versions[slot])
                for eng in (baseline, engine):
                    eng.update_relations({qualified(slot): current[slot]})
            else:
                del current[slot]
                for eng in (baseline, engine):
                    eng.remove_relations([qualified(slot)])

        assert_same_rankings(baseline, engine, "exs")
        assert_same_rankings(baseline, engine, "anns")
        assert_same_batches(baseline, engine, "exs")
        assert_same_batches(baseline, engine, "anns")
    finally:
        engine.close()
        baseline.close()
    # A process engine's shared scan buffers must not outlive close().
    assert not [n for n in live_segment_names()]
