"""Tests for ranking metrics, qrels, splits and the evaluation runner."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.eval import (
    Qrels,
    average_precision,
    mean_average_precision,
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
    train_test_split_pairs,
)


GRADES = {"a": 2, "b": 1, "c": 0}


class TestMetrics:
    def test_perfect_ranking_ap(self):
        assert average_precision(["a", "b", "c"], GRADES) == pytest.approx(1.0)

    def test_worst_ranking_ap(self):
        ap = average_precision(["c", "x", "a", "b"], GRADES)
        assert ap == pytest.approx((1 / 3 + 2 / 4) / 2)

    def test_ap_no_relevant(self):
        assert average_precision(["x"], {"x": 0}) == 0.0

    def test_reciprocal_rank(self):
        assert reciprocal_rank(["c", "a"], GRADES) == pytest.approx(0.5)
        assert reciprocal_rank(["c"], GRADES) == 0.0

    def test_precision_recall_at_k(self):
        ranking = ["a", "c", "b"]
        assert precision_at_k(ranking, GRADES, 2) == pytest.approx(0.5)
        assert recall_at_k(ranking, GRADES, 2) == pytest.approx(0.5)
        assert recall_at_k(ranking, GRADES, 3) == pytest.approx(1.0)

    def test_ndcg_ideal_is_one(self):
        assert ndcg_at_k(["a", "b"], GRADES, 5) == pytest.approx(1.0)

    def test_ndcg_graded_order_matters(self):
        good = ndcg_at_k(["a", "b"], GRADES, 5)   # grade 2 before 1
        bad = ndcg_at_k(["b", "a"], GRADES, 5)
        assert good > bad

    def test_ndcg_exponential_gain(self):
        # single result of grade 2 vs grade 1 at rank 1
        two = ndcg_at_k(["a"], {"a": 2}, 5)
        one = ndcg_at_k(["a"], {"a": 1}, 5)
        assert two == pytest.approx(1.0) and one == pytest.approx(1.0)
        mixed = ndcg_at_k(["x", "a"], {"a": 2, "x": 0}, 5)
        assert mixed == pytest.approx((3 / math.log2(3)) / 3)

    def test_invalid_k(self):
        with pytest.raises(EvaluationError):
            ndcg_at_k([], GRADES, 0)
        with pytest.raises(EvaluationError):
            precision_at_k([], GRADES, 0)

    def test_mean_metrics(self):
        rankings = {"q1": ["a"], "q2": ["c", "a"]}
        qrels = {"q1": {"a": 1}, "q2": {"a": 2, "c": 0}}
        assert mean_average_precision(rankings, qrels) == pytest.approx((1.0 + 0.5) / 2)
        assert mean_reciprocal_rank(rankings, qrels) == pytest.approx((1.0 + 0.5) / 2)

    @given(
        st.lists(st.sampled_from("abcdef"), unique=True, max_size=6),
        st.dictionaries(st.sampled_from("abcdef"), st.integers(0, 2), max_size=6),
    )
    @settings(max_examples=50)
    def test_metric_bounds(self, ranking, grades):
        for value in (
            average_precision(ranking, grades),
            reciprocal_rank(ranking, grades),
            ndcg_at_k(ranking, grades, 5),
            precision_at_k(ranking, grades, 5),
            recall_at_k(ranking, grades, 5),
        ):
            assert 0.0 <= value <= 1.0 + 1e-9


class TestQrels:
    def test_add_and_lookup(self):
        qrels = Qrels()
        qrels.add("q", "r1", 2)
        qrels.add("q", "r2", 0)
        judgments = qrels.judgments("q")
        assert judgments.grade("r1") == 2
        assert judgments.grade("missing") == 0
        assert judgments.n_relevant == 1
        assert judgments.relevant_ids() == {"r1"}

    def test_invalid_grade(self):
        with pytest.raises(EvaluationError):
            Qrels().add("q", "r", 5)

    def test_missing_query(self):
        with pytest.raises(EvaluationError):
            Qrels().judgments("nope")

    def test_pairs_roundtrip(self):
        pairs = [("q1", "a", 2), ("q1", "b", 0), ("q2", "a", 1)]
        qrels = Qrels.from_pairs(pairs)
        assert qrels.n_pairs == 3
        assert sorted(qrels.pairs()) == sorted(pairs)

    def test_restrict_to(self):
        qrels = Qrels.from_pairs([("q", "a", 2), ("q", "b", 1)])
        restricted = qrels.restrict_to({"a"})
        assert restricted.n_pairs == 1

    def test_save_load(self, tmp_path):
        qrels = Qrels.from_pairs([("q", "a", 2), ("q2", "b", 1)])
        path = tmp_path / "qrels.json"
        qrels.save(path)
        loaded = Qrels.load(path)
        assert loaded.pairs() == qrels.pairs()


class TestSplits:
    def _qrels(self, n_queries=20, per_query=5):
        pairs = [
            (f"query {q}", f"rel {i}", (q + i) % 3)
            for q in range(n_queries)
            for i in range(per_query)
        ]
        return Qrels.from_pairs(pairs)

    def test_split_fractions(self):
        qrels = self._qrels()
        train, test = train_test_split_pairs(qrels, train_fraction=0.6, seed=0)
        assert train.n_pairs + test.n_pairs == qrels.n_pairs
        assert 0.4 < train.n_pairs / qrels.n_pairs < 0.8

    def test_no_query_overlap(self):
        train, test = train_test_split_pairs(self._qrels(), seed=1)
        assert not (set(train.queries()) & set(test.queries()))

    def test_deterministic(self):
        a = train_test_split_pairs(self._qrels(), seed=2)
        b = train_test_split_pairs(self._qrels(), seed=2)
        assert a[0].pairs() == b[0].pairs()

    def test_tiny_qrels_still_has_test_side(self):
        qrels = Qrels.from_pairs([("q1", "a", 1), ("q2", "b", 2)])
        train, test = train_test_split_pairs(qrels, train_fraction=0.99, seed=0)
        assert len(test) >= 1

    def test_invalid_fraction(self):
        with pytest.raises(EvaluationError):
            train_test_split_pairs(self._qrels(), train_fraction=1.5)

    def test_too_few_queries(self):
        with pytest.raises(EvaluationError):
            train_test_split_pairs(Qrels.from_pairs([("q", "a", 1)]))


class TestRunner:
    def test_evaluate_method_on_engine(self, indexed_engine):
        from repro.eval import evaluate_method

        qrels = Qrels.from_pairs(
            [
                ("COVID", "WHO/WHO", 2),
                ("COVID", "CDC/CDC", 2),
                ("COVID", "ECDC/ECDC", 2),
                ("COVID", "FootballResults/FootballResults", 0),
                ("football trophy", "FootballResults/FootballResults", 2),
                ("football trophy", "WHO/WHO", 0),
            ]
        )
        report = evaluate_method(indexed_engine.method("exs"), qrels, k=6, h=-1.0)
        assert report.n_queries == 2
        assert report.map > 0.8
        assert set(report.ndcg) == {5, 10, 15, 20}
        assert len(report.row()) == 6

    def test_timing_harness(self, indexed_engine):
        from repro.eval import time_queries

        report = time_queries(indexed_engine.method("exs"), ["COVID"], k=3, repeats=2)
        assert report.n_queries == 1
        assert report.min_ms <= report.median_ms <= report.max_ms

    def test_timing_requires_queries(self, indexed_engine):
        from repro.eval import time_queries

        with pytest.raises(ValueError):
            time_queries(indexed_engine.method("exs"), [])
